#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/serialize.h"
#include "core/snapshot.h"
#include "geom/mbr.h"
#include "rtree/rtree.h"

namespace stardust {

namespace {

std::atomic<std::uint64_t> g_next_engine_id{1};

/// Producer registration cache: which slot this thread holds on which
/// engine (keyed by a process-unique engine id, so a recycled engine
/// address can never alias a stale entry). A thread rarely talks to more
/// than a couple of engines, so a flat vector beats a hash map.
struct TlsProducerEntry {
  std::uint64_t engine_id = 0;
  std::uint32_t slot = 0;
};
thread_local std::vector<TlsProducerEntry> tls_producer_slots;

}  // namespace

Result<std::unique_ptr<IngestEngine>> IngestEngine::Create(
    const StardustConfig& config, std::vector<WindowThreshold> thresholds,
    std::size_t num_streams, const EngineConfig& engine_config,
    const std::string& restore_dir) {
  SD_RETURN_NOT_OK(engine_config.Validate());
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  const std::size_t num_shards =
      std::min(engine_config.num_shards, num_streams);

  CheckpointManifest manifest;
  const bool restoring = !restore_dir.empty();
  if (restoring) {
    Result<CheckpointManifest> found = FindLatestValidCheckpoint(restore_dir);
    if (!found.ok()) return found.status();
    manifest = std::move(found).value();
    if (manifest.num_streams != num_streams) {
      return Status::InvalidArgument(
          "checkpoint has " + std::to_string(manifest.num_streams) +
          " streams, engine was asked for " + std::to_string(num_streams));
    }
    if (manifest.num_shards != num_shards) {
      return Status::InvalidArgument(
          "checkpoint has " + std::to_string(manifest.num_shards) +
          " shards, engine would run " + std::to_string(num_shards) +
          "; stream placement would not line up");
    }
  }

  // Feature-store ring capacity: explicit override, or derived from the
  // cache geometry so one shard's hot store set (every local stream at
  // every monitored correlation level) fits in roughly half the L2. When
  // shards outnumber cores they share an L2, so the budget shrinks by the
  // sharing factor. Unknown cache or no correlation core falls back to
  // the pipeline's fixed default inside DeriveStoreCapacity.
  std::size_t store_capacity = engine_config.store_capacity;
  if (store_capacity == 0 && engine_config.query.enable_correlation) {
    const StardustConfig& corr = engine_config.query.correlation;
    std::size_t entry_bytes = 0;
    for (std::size_t j = 0; j < corr.num_levels; ++j) {
      entry_bytes +=
          FeatureStoreEntryBytes(corr.base_window << j, corr.coefficients);
    }
    const std::size_t max_local_streams =
        (num_streams + num_shards - 1) / num_shards;
    const std::size_t cores = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
    const std::size_t sharing = (num_shards + cores - 1) / cores;
    std::size_t cache_bytes = engine_config.cache_bytes != 0
                                  ? engine_config.cache_bytes
                                  : ProbedL2CacheBytes();
    cache_bytes /= std::max<std::size_t>(1, sharing);
    store_capacity =
        DeriveStoreCapacity(max_local_streams, entry_bytes, cache_bytes);
  } else if (store_capacity == 0) {
    store_capacity = FeaturePipeline::kDefaultStoreCapacity;
  }

  std::unique_ptr<IngestEngine> engine(
      new IngestEngine(engine_config, num_streams));
  engine->core_config_ = config;
  engine->registry_ =
      std::make_unique<QueryRegistry>(config, engine_config.query);
  engine->alert_bus_ = std::make_unique<AlertBus>(
      engine_config.query.alert_capacity, engine_config.query.alert_overflow);
  if (restoring && !manifest.queries_file.empty()) {
    const std::filesystem::path queries_path =
        std::filesystem::path(restore_dir) / manifest.queries_file;
    Result<std::string> bytes = ReadFileToString(queries_path.string());
    if (!bytes.ok()) return bytes.status();
    SD_RETURN_NOT_OK(engine->registry_->Restore(bytes.value()));
  }
  engine->shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    // Streams s, s + N, s + 2N, ... live on shard s.
    const std::size_t local_streams =
        (num_streams - s + num_shards - 1) / num_shards;
    std::unique_ptr<FleetAggregateMonitor> fleet;
    if (restoring) {
      const std::filesystem::path shard_path =
          std::filesystem::path(restore_dir) / manifest.shards[s].file;
      Result<std::unique_ptr<FleetAggregateMonitor>> restored =
          LoadFleetSnapshot(shard_path.string());
      if (!restored.ok()) return restored.status();
      fleet = std::move(restored).value();
      if (fleet->num_streams() != local_streams) {
        return Status::InvalidArgument(
            "checkpoint shard " + std::to_string(s) +
            " stream count disagrees with placement");
      }
      if (fleet->num_windows() != thresholds.size()) {
        return Status::InvalidArgument(
            "checkpoint window count disagrees with requested thresholds");
      }
      for (std::size_t w = 0; w < thresholds.size(); ++w) {
        if (fleet->threshold(w).window != thresholds[w].window ||
            fleet->threshold(w).threshold != thresholds[w].threshold) {
          return Status::InvalidArgument(
              "checkpoint thresholds disagree with requested thresholds");
        }
      }
    } else {
      Result<std::unique_ptr<FleetAggregateMonitor>> created =
          FleetAggregateMonitor::Create(config, thresholds, local_streams);
      if (!created.ok()) return created.status();
      fleet = std::move(created).value();
    }
    // The query cores are per-shard Stardust instances over the same
    // local streams, owned by the shard's feature pipeline together with
    // the shared feature store.
    std::unique_ptr<Stardust> pattern_core;
    if (engine_config.query.enable_patterns) {
      Result<std::unique_ptr<Stardust>> core =
          Stardust::Create(engine_config.query.pattern);
      if (!core.ok()) return core.status();
      pattern_core = std::move(core).value();
      for (std::size_t i = 0; i < local_streams; ++i) {
        pattern_core->AddStream();
      }
    }
    std::unique_ptr<Stardust> corr_core;
    if (engine_config.query.enable_correlation) {
      Result<std::unique_ptr<Stardust>> core =
          Stardust::Create(engine_config.query.correlation);
      if (!core.ok()) return core.status();
      corr_core = std::move(core).value();
      for (std::size_t i = 0; i < local_streams; ++i) {
        corr_core->AddStream();
      }
    }
    auto pipeline = std::make_unique<FeaturePipeline>(
        std::move(pattern_core), std::move(corr_core), local_streams,
        store_capacity);
    ShardOptions shard_options;
    if (engine_config.pin_shards) {
      const std::size_t cores = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
      shard_options.pin = true;
      shard_options.pin_core = s % cores;
      shard_options.pin_hook = engine_config.pin_hook;
    }
    engine->shards_.push_back(std::make_unique<Shard>(
        s, num_shards, engine_config.max_producers,
        engine_config.queue_capacity, engine_config.overload,
        engine_config.max_batch, std::move(fleet), std::move(pipeline),
        engine->registry_.get(), engine->alert_bus_.get(),
        engine->metrics_.get(), std::move(shard_options)));
    if (restoring) {
      engine->shards_.back()->RestoreProgress(manifest.shards[s].epoch,
                                              manifest.shards[s].appended);
      // Manifest v3 carries the feature pipelines (query cores + feature
      // store); pre-v3 checkpoints leave them empty and they warm up as
      // tuples flow (the pre-v3 behavior).
      if (!manifest.features.empty()) {
        const std::filesystem::path features_path =
            std::filesystem::path(restore_dir) / manifest.features[s].file;
        Result<std::string> feature_bytes =
            ReadFileToString(features_path.string());
        if (!feature_bytes.ok()) return feature_bytes.status();
        SD_RETURN_NOT_OK(
            engine->shards_.back()->RestoreFeatures(feature_bytes.value()));
      }
    }
  }
  SD_CHECK(!engine->shards_.empty());
  if (restoring) {
    // Continue the checkpoint lineage instead of restarting at 1, so the
    // next checkpoint never collides with (or sorts below) the one just
    // restored.
    engine->next_checkpoint_seq_ = manifest.seq + 1;
    engine->last_checkpoint_seq_.store(manifest.seq,
                                       std::memory_order_release);
    if (!manifest.net_file.empty()) {
      const std::filesystem::path net_path =
          std::filesystem::path(restore_dir) / manifest.net_file;
      Result<std::string> net_bytes = ReadFileToString(net_path.string());
      if (!net_bytes.ok()) return net_bytes.status();
      engine->restored_net_state_ = std::move(net_bytes).value();
    }
  }
  if (engine_config.query.enable_correlation) {
    // Correlator-side state, sized before any thread can observe it: the
    // per-level eval counters and the probe pool (0 workers on a
    // single-core host — Run stays inline).
    const std::size_t levels = engine_config.query.correlation.num_levels;
    engine->metrics_->correlator_level_evals =
        std::make_unique<std::atomic<std::uint64_t>[]>(levels);
    engine->metrics_->correlator_num_levels = levels;
    engine->probe_pool_ = std::make_unique<ProbePool>(
        ProbePool::ResolveWorkers(
            engine_config.query.correlator_probe_workers));
  }
  engine->alert_bus_->Start();
  for (auto& shard : engine->shards_) {
    if (engine_config.start_paused) shard->set_paused(true);
    shard->Start();
  }
  engine->StartCheckpointThread();
  engine->StartCorrelatorThread();
  return engine;
}

IngestEngine::IngestEngine(const EngineConfig& config,
                           std::size_t num_streams)
    : engine_id_(g_next_engine_id.fetch_add(1, std::memory_order_relaxed)),
      config_(config),
      num_streams_(num_streams),
      metrics_(std::make_unique<EngineMetrics>()) {}

IngestEngine::~IngestEngine() { Stop(); }

Result<std::size_t> IngestEngine::ProducerSlot() {
  for (const TlsProducerEntry& entry : tls_producer_slots) {
    if (entry.engine_id == engine_id_) return std::size_t{entry.slot};
  }
  const std::uint32_t slot =
      next_producer_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= config_.max_producers) {
    return Status::FailedPrecondition(
        "too many producer threads; raise EngineConfig::max_producers");
  }
  tls_producer_slots.push_back({engine_id_, slot});
  return std::size_t{slot};
}

Status IngestEngine::Post(StreamId stream, double value) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  return shards_[ShardOf(stream)]->Push(slot.value(), LocalOf(stream),
                                        value);
}

Result<PostOutcome> IngestEngine::TryPost(StreamId stream, double value) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  return shards_[ShardOf(stream)]->TryPush(slot.value(), LocalOf(stream),
                                           value);
}

Status IngestEngine::PostBatch(std::span<const StreamValue> tuples) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  for (const StreamValue& tuple : tuples) {
    if (tuple.stream >= num_streams_) {
      return Status::InvalidArgument("unknown stream");
    }
    SD_RETURN_NOT_OK(shards_[ShardOf(tuple.stream)]->Push(
        slot.value(), LocalOf(tuple.stream), tuple.value));
  }
  return Status::OK();
}

Status IngestEngine::Flush() {
  std::vector<std::uint64_t> targets;
  targets.reserve(shards_.size());
  for (const auto& shard : shards_) targets.push_back(shard->enqueued());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (shards_[s]->retired() < targets[s]) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // Alerts for a batch are published after the apply counters move; wait
  // until every shard's publication watermark catches up with what it has
  // applied, then drain the bus so the sinks have seen everything.
  for (const auto& shard : shards_) {
    const std::uint64_t applied = shard->applied();
    while (shard->alert_progress() < applied) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  if (!stopped_.load(std::memory_order_acquire)) {
    SD_RETURN_NOT_OK(alert_bus_->WaitDrained());
  }
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

Status IngestEngine::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    return Status::OK();
  }
  StopCheckpointThread();
  StopCorrelatorThread();
  accepting_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->set_paused(false);  // a paused worker must wake up to drain
    shard->RequestStop();
  }
  for (auto& shard : shards_) shard->Join();
  // Workers are quiet; drain every queued alert to the sinks and flush
  // them so file sinks are durable when Stop returns.
  alert_bus_->Stop();
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

void IngestEngine::Pause() {
  for (auto& shard : shards_) shard->set_paused(true);
}

void IngestEngine::Resume() {
  for (auto& shard : shards_) shard->set_paused(false);
}

AlarmStats IngestEngine::StreamTotal(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  return shards_[ShardOf(stream)]->StreamTotal(LocalOf(stream), nullptr);
}

AlarmStats IngestEngine::FleetTotal(
    std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  AlarmStats total;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    const AlarmStats s = shard->ShardTotal(&stamp);
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  return total;
}

Result<std::vector<StreamId>> IngestEngine::CurrentlyAlarming(
    std::size_t window_index, std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  std::vector<StreamId> alarming;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    Result<std::vector<StreamId>> local =
        shard->CurrentlyAlarming(window_index, &stamp);
    if (!local.ok()) return local.status();
    for (const StreamId local_id : local.value()) {
      // Inverse of the placement map: global = local * N + shard.
      alarming.push_back(static_cast<StreamId>(
          local_id * shards_.size() + shard->index()));
    }
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  std::sort(alarming.begin(), alarming.end());
  return alarming;
}

std::uint64_t IngestEngine::StreamAppendCount(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  return shards_[ShardOf(stream)]->StreamAppendCount(LocalOf(stream));
}

std::vector<ShardMetricsSnapshot> IngestEngine::ShardMetrics() const {
  std::vector<ShardMetricsSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->MetricsSnapshot());
  return out;
}

std::string IngestEngine::MetricsJson() const {
  return EngineMetricsJson(*metrics_, ShardMetrics(), registry_->Metrics());
}

Status IngestEngine::Checkpoint(const std::string& dir) {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("cannot create checkpoint directory " + dir +
                            ": " + ec.message());
  }

  const std::uint64_t seq = next_checkpoint_seq_;
  CheckpointManifest manifest;
  manifest.seq = seq;
  manifest.num_streams = num_streams_;
  manifest.num_shards = shards_.size();
  manifest.queue_capacity = config_.queue_capacity;
  manifest.max_producers = config_.max_producers;
  manifest.max_batch = config_.max_batch;
  manifest.overload = static_cast<std::uint8_t>(config_.overload);
  manifest.shards.reserve(shards_.size());

  // Serialize and persist shard by shard. Each SerializeState holds only
  // that shard's state mutex, so ingestion keeps flowing on every other
  // shard (and on this one, into its rings) while the checkpoint runs.
  // The feature pipeline bytes come out of the same mutex hold as the
  // fleet bytes, so the two files describe one point in the apply
  // sequence.
  manifest.features.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    std::string feature_bytes;
    const std::string bytes = shard->SerializeState(&stamp, &feature_bytes);
    CheckpointShardEntry entry;
    entry.file = CheckpointShardFileName(shard->index(), seq);
    entry.epoch = stamp.epoch;
    entry.appended = stamp.appended;
    entry.checksum = Fnv1a(bytes);
    const std::filesystem::path path = std::filesystem::path(dir) / entry.file;
    const Status written = AtomicWriteFile(path.string(), bytes);
    if (!written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return written;
    }
    manifest.shards.push_back(std::move(entry));

    CheckpointFeatureEntry feature_entry;
    feature_entry.file = CheckpointFeaturesFileName(shard->index(), seq);
    feature_entry.checksum = Fnv1a(feature_bytes);
    const std::filesystem::path feature_path =
        std::filesystem::path(dir) / feature_entry.file;
    const Status feature_written =
        AtomicWriteFile(feature_path.string(), feature_bytes);
    if (!feature_written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return feature_written;
    }
    manifest.features.push_back(std::move(feature_entry));
  }

  // The query registry rides every checkpoint (even when empty, so the
  // id allocator's lineage survives a restore and ids are never reused).
  {
    const std::string bytes = registry_->Serialize();
    manifest.queries_file = CheckpointQueriesFileName(seq);
    manifest.queries_checksum = Fnv1a(bytes);
    const std::filesystem::path path =
        std::filesystem::path(dir) / manifest.queries_file;
    const Status written = AtomicWriteFile(path.string(), bytes);
    if (!written.ok()) {
      metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
      return written;
    }
  }

  // The network tier's state (alert sequence allocator, subscriber
  // cursors, replay ring) rides along when a provider is attached
  // (manifest v4). Taken after the shard snapshots: the hub state may be
  // slightly fresher than the shards, which errs toward retaining — a
  // replayed alert is deduplicated by its sequence number downstream.
  if (net_state_provider_) {
    const std::string bytes = net_state_provider_();
    if (!bytes.empty()) {
      manifest.net_file = CheckpointNetFileName(seq);
      manifest.net_checksum = Fnv1a(bytes);
      const std::filesystem::path path =
          std::filesystem::path(dir) / manifest.net_file;
      const Status written = AtomicWriteFile(path.string(), bytes);
      if (!written.ok()) {
        metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
        return written;
      }
    }
  }

  // The manifest is the commit point: until this rename lands, recovery
  // still resolves to the previous checkpoint.
  const std::filesystem::path manifest_path =
      std::filesystem::path(dir) / CheckpointManifestFileName(seq);
  const Status committed =
      AtomicWriteFile(manifest_path.string(), SerializeManifest(manifest));
  if (!committed.ok()) {
    metrics_->checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    return committed;
  }

  const std::uint64_t prev =
      last_checkpoint_seq_.load(std::memory_order_relaxed);
  next_checkpoint_seq_ = seq + 1;
  last_checkpoint_seq_.store(seq, std::memory_order_release);
  metrics_->checkpoints.fetch_add(1, std::memory_order_relaxed);
  // Keep the new checkpoint plus the previous one as a fallback; drop
  // anything older and any .tmp leftovers of interrupted attempts.
  GarbageCollectCheckpoints(dir, prev != 0 ? prev : seq);
  return Status::OK();
}

void IngestEngine::SetNetStateProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  net_state_provider_ = std::move(provider);
}

void IngestEngine::StartCheckpointThread() {
  if (config_.checkpoint_period_ms == 0) return;
  checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
}

void IngestEngine::StopCheckpointThread() {
  if (!checkpoint_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(checkpoint_cv_mu_);
    checkpoint_stop_ = true;
  }
  checkpoint_cv_.notify_all();
  checkpoint_thread_.join();
}

void IngestEngine::CheckpointLoop() {
  const auto period = std::chrono::milliseconds(config_.checkpoint_period_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(checkpoint_cv_mu_);
      if (checkpoint_cv_.wait_for(lock, period,
                                  [this] { return checkpoint_stop_; })) {
        return;
      }
    }
    // Failures are counted in metrics (checkpoint_failures) and retried
    // at the next period; the background thread never takes the engine
    // down over a transient filesystem error.
    (void)Checkpoint(config_.checkpoint_dir);
  }
}

void IngestEngine::StartCorrelatorThread() {
  if (!config_.query.enable_correlation) return;
  correlator_thread_ = std::thread([this] { CorrelatorLoop(); });
}

void IngestEngine::StopCorrelatorThread() {
  if (!correlator_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(correlator_cv_mu_);
    correlator_stop_ = true;
  }
  correlator_cv_.notify_all();
  correlator_thread_.join();
}

void IngestEngine::CorrelatorLoop() {
  const auto period =
      std::chrono::milliseconds(config_.query.correlator_period_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(correlator_cv_mu_);
      if (correlator_cv_.wait_for(lock, period,
                                  [this] { return correlator_stop_; })) {
        return;
      }
    }
    RunCorrelatorRound();
  }
}

void IngestEngine::TriggerCorrelatorRound() { RunCorrelatorRound(); }

void IngestEngine::RunCorrelatorRound() {
  std::lock_guard<std::mutex> round_lock(correlator_round_mu_);
  // The correlator consumes the same compiled-plan form as the shard
  // workers: correlation queries grouped by resolved level, recompiled
  // only when the registry version moves.
  const std::uint64_t version = registry_->version();
  if (corr_plan_ == nullptr || version != corr_plan_version_) {
    const std::shared_ptr<const QueryRegistry::Snapshot> snapshot =
        registry_->snapshot();
    PlanContext ctx;
    ctx.fleet = &core_config_;
    ctx.pattern = config_.query.enable_patterns ? &config_.query.pattern
                                                : nullptr;
    ctx.correlation = config_.query.enable_correlation
                          ? &config_.query.correlation
                          : nullptr;
    corr_plan_ = CompileEvalPlan(*snapshot, version, ctx);
    corr_plan_version_ = version;
    // Drop rising-edge state of queries that left the registry, so the
    // map cannot grow without bound under register/unregister churn.
    for (auto it = corr_active_pairs_.begin();
         it != corr_active_pairs_.end();) {
      bool live = false;
      for (const EvalPlan::CorrelationGroup& group :
           corr_plan_->correlation) {
        for (const auto& q : group.queries) {
          if (q->id == it->first) {
            live = true;
            break;
          }
        }
        if (live) break;
      }
      it = live ? std::next(it) : corr_active_pairs_.erase(it);
    }
    // Prune the persistent per-level indexes of levels the new plan no
    // longer monitors, so state cannot grow without bound as queries on
    // exotic levels come and go.
    for (auto it = corr_levels_.begin(); it != corr_levels_.end();) {
      bool monitored = false;
      for (const EvalPlan::CorrelationGroup& group :
           corr_plan_->correlation) {
        if (group.level == it->first) {
          monitored = true;
          break;
        }
      }
      it = monitored ? std::next(it) : corr_levels_.erase(it);
    }
  }
  if (corr_plan_->correlation.empty()) return;

  bool round_counted = false;
  std::uint64_t round = 0;
  for (const EvalPlan::CorrelationGroup& group : corr_plan_->correlation) {
    if (!RunCorrelatorGroup(group, &round_counted, &round)) {
      // A failed gather evaluates nothing and commits nothing for this
      // level: the same round retries at the next firing, and the
      // remaining level groups still evaluate. (The pre-index correlator
      // stamped corr_last_time_ before gathering and returned on the
      // first failure, silently skipping that round's alerts for this
      // level and abandoning every later group.)
      metrics_->correlator_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool IngestEngine::RunCorrelatorGroup(
    const EvalPlan::CorrelationGroup& group, bool* round_counted,
    std::uint64_t* round) {
  using Clock = std::chrono::steady_clock;
  const std::size_t level = group.level;
  CorrLevelState& state = corr_levels_[level];
  if (state.clock_epochs.size() != shards_.size()) {
    state.clock_epochs.assign(shards_.size(), 0);
    state.clocks.assign(shards_.size(), Shard::ClockSummary{});
    state.gathers.resize(shards_.size());
  }

  // Phase 1: the round time is the slowest started stream's latest
  // feature time at this level — the most recent time every started
  // stream can still serve. Streams whose window has not filled yet do
  // not hold the round back; they simply contribute nothing. Per-shard
  // summaries are cached and refreshed only when the shard's feature
  // store saw a put since the last look (dirty epochs), so idle rounds
  // cost one flag read per shard instead of a full clock scan.
  std::uint64_t t_round = 0;
  bool any = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    if (!shard.has_correlation_core()) continue;
    Shard::ClockSummary summary;
    if (shard.CorrelationClockMinSince(level, state.clock_epochs[i],
                                       &summary)) {
      state.clocks[i] = summary;
      state.clock_epochs[i] = summary.store_epoch;
    }
    const Shard::ClockSummary& cached = state.clocks[i];
    if (!cached.any) continue;
    t_round = any ? std::min(t_round, cached.min_time) : cached.min_time;
    any = true;
  }
  if (!any) return true;
  const auto last = corr_last_time_.find(level);
  if (last != corr_last_time_.end() && last->second == t_round) {
    return true;  // nothing new to evaluate at this level
  }

  if (config_.correlator_fault_hook != nullptr &&
      config_.correlator_fault_hook(level)) {
    return false;
  }

  // Phase 2: gather every shard's feature points and exact z-normed
  // windows at the aligned time into flat reusable buffers. Per-shard
  // mutex-coherent; streams whose data already expired at t_round are
  // skipped.
  const StardustConfig& cfg = config_.query.correlation;
  const std::size_t dims = cfg.coefficients;
  const std::size_t window = group.window;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard::CorrelationGather& gather = state.gathers[i];
    if (!shards_[i]->has_correlation_core()) {
      gather.streams.clear();
      continue;
    }
    if (!shards_[i]->CorrelationGatherAt(level, t_round, &gather).ok()) {
      return false;
    }
    if (!gather.streams.empty() &&
        (gather.dims != dims || gather.window != window)) {
      return false;  // core/plan shape mismatch; retry next round
    }
  }

  // Phase 3: sync the persistent candidate index to this round's feature
  // set — upsert what is present (a no-op for points that did not move),
  // erase what expired. The index survives to the next round; the
  // rebuild-from-scratch tree this replaces cost O(n log n) per round
  // even when nothing moved.
  double cell = config_.query.correlation_grid_cell;
  if (cell <= 0.0) {
    cell = group.max_radius > 0.0 ? group.max_radius : 1.0;
  }
  if (state.index == nullptr || state.cell != cell) {
    state.index = CorrelationIndex::Create(
        config_.query.correlation_index_kind, dims, cell);
    state.cell = cell;
    state.slot_of.clear();
    state.stream_of.clear();
    state.live.clear();
    state.seen_round.clear();
    state.free_slots.clear();
    state.features.clear();
    state.znormed.clear();
  }
  ++state.round_serial;
  state.present.clear();
  Point point(dims);
  for (const Shard::CorrelationGather& gather : state.gathers) {
    for (std::size_t k = 0; k < gather.streams.size(); ++k) {
      const StreamId global = gather.streams[k];
      std::size_t slot;
      const auto it = state.slot_of.find(global);
      if (it != state.slot_of.end()) {
        slot = it->second;
      } else {
        if (!state.free_slots.empty()) {
          slot = state.free_slots.back();
          state.free_slots.pop_back();
        } else {
          slot = state.stream_of.size();
          state.stream_of.push_back(0);
          state.live.push_back(0);
          state.seen_round.push_back(0);
          state.features.resize((slot + 1) * dims);
          state.znormed.resize((slot + 1) * window);
        }
        state.stream_of[slot] = global;
        state.slot_of.emplace(global, slot);
      }
      const double* feature = &gather.features[k * dims];
      std::copy(feature, feature + dims, point.begin());
      state.index->Upsert(slot, point);
      std::copy(feature, feature + dims,
                state.features.begin() + slot * dims);
      const double* znormed = &gather.znormed[k * window];
      std::copy(znormed, znormed + window,
                state.znormed.begin() + slot * window);
      state.live[slot] = 1;
      state.seen_round[slot] = state.round_serial;
      state.present.push_back(slot);
    }
  }
  for (std::size_t slot = 0; slot < state.stream_of.size(); ++slot) {
    if (!state.live[slot] || state.seen_round[slot] == state.round_serial) {
      continue;
    }
    state.index->Erase(slot);
    state.live[slot] = 0;
    state.slot_of.erase(state.stream_of[slot]);
    state.free_slots.push_back(slot);
  }
  // Canonical probe order (ascending global id) so the merged pair sets
  // and alert order are identical however the probe tasks interleave.
  std::sort(state.present.begin(), state.present.end(),
            [&state](std::size_t a, std::size_t b) {
              return state.stream_of[a] < state.stream_of[b];
            });

  // This level produced an evaluable round: account it. Rounds count
  // once per RunCorrelatorRound invocation however many levels evaluate
  // (the per-group skew previously leaked into alert.epoch); per-level
  // counts live in correlator_level_evals.
  if (!*round_counted) {
    *round =
        metrics_->correlator_rounds.fetch_add(1, std::memory_order_relaxed) +
        1;
    *round_counted = true;
  }
  if (level < metrics_->correlator_num_levels) {
    metrics_->correlator_level_evals[level].fetch_add(
        1, std::memory_order_relaxed);
  }
  corr_plan_->correlation_evals.fetch_add(1, std::memory_order_relaxed);

  // Phase 4: probe every present slot against the index, partitioned
  // across the probe pool (the pool is read-only over the synced index).
  // One probe at the group's widest radius serves every query; the exact
  // window distance is computed once per candidate pair and re-filtered
  // per query below. Each unordered pair is emitted by exactly one task
  // (the smaller global id probes, the larger is the candidate), so the
  // per-task outputs are disjoint and their concatenation deterministic.
  struct PairHit {
    StreamId a = 0;
    StreamId b = 0;
    double d2 = 0.0;
  };
  std::vector<std::vector<PairHit>> task_hits(state.present.size());
  const double max_r = group.max_radius;
  const double max_r2 = max_r * max_r;
  const auto probe = [&](std::size_t task) {
    const std::size_t slot = state.present[task];
    const StreamId g_i = state.stream_of[slot];
    const Point q(state.features.begin() + slot * dims,
                  state.features.begin() + (slot + 1) * dims);
    std::vector<std::size_t> candidates;
    state.index->Candidates(q, max_r, &candidates);
    std::vector<PairHit>& out = task_hits[task];
    const double* zi = &state.znormed[slot * window];
    for (const std::size_t cand : candidates) {
      const StreamId g_j = state.stream_of[cand];
      if (g_j <= g_i) continue;  // count each pair once
      const double* zj = &state.znormed[cand * window];
      double d2 = 0.0;
      for (std::size_t x = 0; x < window; ++x) {
        const double d = zi[x] - zj[x];
        d2 += d * d;
      }
      if (d2 > max_r2) continue;
      out.push_back({g_i, g_j, d2});
    }
  };
  if (probe_pool_ != nullptr) {
    probe_pool_->Run(state.present.size(), probe);
  } else {
    for (std::size_t task = 0; task < state.present.size(); ++task) {
      probe(task);
    }
  }

  // Phase 5: serial per-query merge and rising-edge publication, in
  // sorted pair order. Every query of the group re-filters the verified
  // pairs by its own radius. Rounds with fewer than two present features
  // run through here with zero hits on purpose: the query's active set
  // is replaced (emptied) either way, so a pair whose features expired
  // re-alerts when it correlates again. (The pre-index correlator
  // `continue`d before this step, leaving the stale active set pinned
  // and suppressing the re-alert forever.)
  std::vector<PairHit> query_hits;
  for (const auto& q : group.queries) {
    const Clock::time_point start = Clock::now();
    std::set<std::pair<StreamId, StreamId>>& active =
        corr_active_pairs_[q->id];
    const double r2 = q->spec.radius * q->spec.radius;
    query_hits.clear();
    for (const std::vector<PairHit>& hits : task_hits) {
      for (const PairHit& hit : hits) {
        if (hit.d2 <= r2) query_hits.push_back(hit);
      }
    }
    std::sort(query_hits.begin(), query_hits.end(),
              [](const PairHit& x, const PairHit& y) {
                return std::make_pair(x.a, x.b) < std::make_pair(y.a, y.b);
              });
    std::set<std::pair<StreamId, StreamId>> current;
    for (const PairHit& hit : query_hits) {
      current.emplace(hit.a, hit.b);
      if (active.count({hit.a, hit.b}) != 0) continue;  // still correlated
      Alert alert;
      alert.query = q->id;
      alert.kind = QueryKind::kCorrelation;
      alert.stream = hit.a;
      alert.stream_b = hit.b;
      alert.window = window;
      alert.end_time = t_round;
      alert.epoch = *round;
      alert.value = std::sqrt(hit.d2);
      alert.threshold = q->spec.radius;
      q->hits.fetch_add(1, std::memory_order_relaxed);
      // The pair still entered the current set above, so a suppressed
      // alert is not re-raised when the token bucket refills.
      if (!q->AllowAlert()) continue;
      if (alert_bus_->Publish(alert).ok()) {
        metrics_->alerts_published.fetch_add(1, std::memory_order_relaxed);
      }
    }
    active = std::move(current);
    q->evals.fetch_add(1, std::memory_order_relaxed);
    q->eval_nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count()),
        std::memory_order_relaxed);
  }

  // Commit the round time only now that the level fully evaluated; any
  // failure above left it unstamped so the next firing retries.
  corr_last_time_[level] = t_round;
  return true;
}

}  // namespace stardust
