#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"

namespace stardust {

namespace {

std::atomic<std::uint64_t> g_next_engine_id{1};

/// Producer registration cache: which slot this thread holds on which
/// engine (keyed by a process-unique engine id, so a recycled engine
/// address can never alias a stale entry). A thread rarely talks to more
/// than a couple of engines, so a flat vector beats a hash map.
struct TlsProducerEntry {
  std::uint64_t engine_id = 0;
  std::uint32_t slot = 0;
};
thread_local std::vector<TlsProducerEntry> tls_producer_slots;

}  // namespace

Result<std::unique_ptr<IngestEngine>> IngestEngine::Create(
    const StardustConfig& config, std::vector<WindowThreshold> thresholds,
    std::size_t num_streams, const EngineConfig& engine_config) {
  SD_RETURN_NOT_OK(engine_config.Validate());
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  const std::size_t num_shards =
      std::min(engine_config.num_shards, num_streams);
  std::unique_ptr<IngestEngine> engine(
      new IngestEngine(engine_config, num_streams));
  engine->shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    // Streams s, s + N, s + 2N, ... live on shard s.
    const std::size_t local_streams =
        (num_streams - s + num_shards - 1) / num_shards;
    Result<std::unique_ptr<FleetAggregateMonitor>> fleet =
        FleetAggregateMonitor::Create(config, thresholds, local_streams);
    if (!fleet.ok()) return fleet.status();
    engine->shards_.push_back(std::make_unique<Shard>(
        s, engine_config.max_producers, engine_config.queue_capacity,
        engine_config.overload, engine_config.max_batch,
        std::move(fleet).value(), engine->metrics_.get()));
  }
  for (auto& shard : engine->shards_) {
    if (engine_config.start_paused) shard->set_paused(true);
    shard->Start();
  }
  return engine;
}

IngestEngine::IngestEngine(const EngineConfig& config,
                           std::size_t num_streams)
    : engine_id_(g_next_engine_id.fetch_add(1, std::memory_order_relaxed)),
      config_(config),
      num_streams_(num_streams),
      metrics_(std::make_unique<EngineMetrics>()) {}

IngestEngine::~IngestEngine() { Stop(); }

Result<std::size_t> IngestEngine::ProducerSlot() {
  for (const TlsProducerEntry& entry : tls_producer_slots) {
    if (entry.engine_id == engine_id_) return std::size_t{entry.slot};
  }
  const std::uint32_t slot =
      next_producer_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= config_.max_producers) {
    return Status::FailedPrecondition(
        "too many producer threads; raise EngineConfig::max_producers");
  }
  tls_producer_slots.push_back({engine_id_, slot});
  return std::size_t{slot};
}

Status IngestEngine::Post(StreamId stream, double value) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  return shards_[ShardOf(stream)]->Push(slot.value(), LocalOf(stream),
                                        value);
}

Status IngestEngine::PostBatch(std::span<const StreamValue> tuples) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  Result<std::size_t> slot = ProducerSlot();
  if (!slot.ok()) return slot.status();
  for (const StreamValue& tuple : tuples) {
    if (tuple.stream >= num_streams_) {
      return Status::InvalidArgument("unknown stream");
    }
    SD_RETURN_NOT_OK(shards_[ShardOf(tuple.stream)]->Push(
        slot.value(), LocalOf(tuple.stream), tuple.value));
  }
  return Status::OK();
}

Status IngestEngine::Flush() {
  std::vector<std::uint64_t> targets;
  targets.reserve(shards_.size());
  for (const auto& shard : shards_) targets.push_back(shard->enqueued());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (shards_[s]->retired() < targets[s]) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

Status IngestEngine::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    return Status::OK();
  }
  accepting_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->set_paused(false);  // a paused worker must wake up to drain
    shard->RequestStop();
  }
  for (auto& shard : shards_) shard->Join();
  for (const auto& shard : shards_) {
    SD_RETURN_NOT_OK(shard->worker_status());
  }
  return Status::OK();
}

void IngestEngine::Pause() {
  for (auto& shard : shards_) shard->set_paused(true);
}

void IngestEngine::Resume() {
  for (auto& shard : shards_) shard->set_paused(false);
}

AlarmStats IngestEngine::StreamTotal(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  return shards_[ShardOf(stream)]->StreamTotal(LocalOf(stream), nullptr);
}

AlarmStats IngestEngine::FleetTotal(
    std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  AlarmStats total;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    const AlarmStats s = shard->ShardTotal(&stamp);
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  return total;
}

Result<std::vector<StreamId>> IngestEngine::CurrentlyAlarming(
    std::size_t window_index, std::vector<ShardStamp>* stamps) const {
  if (stamps != nullptr) {
    stamps->clear();
    stamps->reserve(shards_.size());
  }
  std::vector<StreamId> alarming;
  for (const auto& shard : shards_) {
    ShardStamp stamp;
    Result<std::vector<StreamId>> local =
        shard->CurrentlyAlarming(window_index, &stamp);
    if (!local.ok()) return local.status();
    for (const StreamId local_id : local.value()) {
      // Inverse of the placement map: global = local * N + shard.
      alarming.push_back(static_cast<StreamId>(
          local_id * shards_.size() + shard->index()));
    }
    if (stamps != nullptr) stamps->push_back(stamp);
  }
  std::sort(alarming.begin(), alarming.end());
  return alarming;
}

std::uint64_t IngestEngine::StreamAppendCount(StreamId stream) const {
  SD_CHECK(stream < num_streams_);
  return shards_[ShardOf(stream)]->StreamAppendCount(LocalOf(stream));
}

std::vector<ShardMetricsSnapshot> IngestEngine::ShardMetrics() const {
  std::vector<ShardMetricsSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->MetricsSnapshot());
  return out;
}

std::string IngestEngine::MetricsJson() const {
  return EngineMetricsJson(*metrics_, ShardMetrics());
}

}  // namespace stardust
