#include "engine/shard.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "core/snapshot.h"

namespace stardust {

namespace {

// Producer-side and idle-worker wait: spin briefly, then yield, then nap.
// Keeps latency low when the peer is active without burning a core when
// it is not.
void Backoff(std::size_t* spins) {
  ++*spins;
  if (*spins < 64) return;
  if (*spins < 256) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(100));
}

void UpdateMax(std::atomic<std::uint64_t>* target, std::uint64_t value) {
  std::uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void UpdateMaxSize(std::atomic<std::size_t>* target, std::size_t value) {
  std::size_t cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Shard::Shard(std::size_t index, std::size_t num_producers,
             std::size_t queue_capacity, OverloadPolicy policy,
             std::size_t max_batch,
             std::unique_ptr<FleetAggregateMonitor> fleet,
             EngineMetrics* metrics)
    : index_(index),
      policy_(policy),
      max_batch_(max_batch),
      metrics_(metrics),
      fleet_(std::move(fleet)) {
  SD_CHECK(fleet_ != nullptr);
  SD_CHECK(num_producers > 0);
  rings_.reserve(num_producers);
  for (std::size_t i = 0; i < num_producers; ++i) {
    rings_.push_back(std::make_unique<SpscRing<StreamValue>>(queue_capacity));
  }
}

Shard::~Shard() {
  RequestStop();
  Join();
}

void Shard::Start() {
  SD_CHECK(!worker_.joinable());
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Shard::RequestStop() { stop_.store(true, std::memory_order_release); }

void Shard::Join() {
  if (worker_.joinable()) worker_.join();
}

void Shard::set_paused(bool paused) {
  paused_.store(paused, std::memory_order_release);
}

Status Shard::Push(std::size_t producer, StreamId local_stream,
                   double value) {
  SD_DCHECK(producer < rings_.size());
  SpscRing<StreamValue>& ring = *rings_[producer];
  const StreamValue tuple{local_stream, value};
  if (!ring.TryPush(tuple)) {
    switch (policy_) {
      case OverloadPolicy::kDropNewest:
        metrics_->dropped_newest.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      case OverloadPolicy::kDropOldest: {
        StreamValue victim;
        while (!ring.TryPush(tuple)) {
          if (ring.TryPop(&victim)) {
            stolen_.fetch_add(1, std::memory_order_relaxed);
            metrics_->dropped_oldest.fetch_add(1, std::memory_order_relaxed);
          }
        }
        break;
      }
      case OverloadPolicy::kBlock: {
        metrics_->block_waits.fetch_add(1, std::memory_order_relaxed);
        std::size_t spins = 0;
        while (!ring.TryPush(tuple)) {
          // A paused or stopping worker never frees a slot, so an
          // unconditional spin here would never return (a producer stuck
          // against a stopped engine). Bail out instead of deadlocking;
          // the tuple is not enqueued.
          if (stop_.load(std::memory_order_acquire)) {
            return Status::Aborted("shard is stopping; post rejected");
          }
          Backoff(&spins);
        }
        break;
      }
    }
  }
  enqueued_.fetch_add(1, std::memory_order_release);
  metrics_->posted.fetch_add(1, std::memory_order_relaxed);
  UpdateMaxSize(&queue_high_water_, ring.ApproxSize());
  return Status::OK();
}

void Shard::WorkerLoop() {
  std::vector<StreamValue> batch;
  batch.reserve(max_batch_);
  std::size_t idle_spins = 0;
  for (;;) {
    if (paused_.load(std::memory_order_acquire) &&
        !stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    batch.clear();
    for (auto& ring : rings_) {
      StreamValue tuple;
      while (batch.size() < max_batch_ && ring->TryPop(&tuple)) {
        batch.push_back(tuple);
      }
      if (batch.size() >= max_batch_) break;
    }
    if (batch.empty()) {
      if (stop_.load(std::memory_order_acquire)) {
        // Producers are quiesced before RequestStop, so one final empty
        // sweep over every ring means the shard is fully drained.
        bool drained = true;
        for (auto& ring : rings_) drained = drained && ring->ApproxEmpty();
        if (drained) return;
      }
      Backoff(&idle_spins);
      continue;
    }
    idle_spins = 0;
    ApplyBatch(batch);
  }
}

void Shard::ApplyBatch(const std::vector<StreamValue>& batch) {
  using Clock = std::chrono::steady_clock;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const StreamValue& tuple : batch) {
      const Clock::time_point start = Clock::now();
      const Status status = fleet_->Append(tuple.stream, tuple.value);
      const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - start)
                             .count();
      metrics_->append_latency.Record(static_cast<std::uint64_t>(nanos));
      if (status.ok()) {
        metrics_->appended.fetch_add(1, std::memory_order_relaxed);
      } else {
        metrics_->append_errors.fetch_add(1, std::memory_order_relaxed);
        if (worker_status_.ok()) worker_status_ = status;
      }
    }
    // Publish inside the lock so a reader's stamp always matches the
    // monitor state it observed.
    applied_.fetch_add(batch.size(), std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  UpdateMax(&batch_max_, batch.size());
}

ShardStamp Shard::StampLocked() const {
  ShardStamp stamp;
  stamp.shard = index_;
  stamp.epoch = epoch_.load(std::memory_order_relaxed);
  stamp.appended = applied_.load(std::memory_order_relaxed);
  return stamp;
}

AlarmStats Shard::StreamTotal(StreamId local_stream,
                              ShardStamp* stamp) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stamp != nullptr) *stamp = StampLocked();
  return fleet_->StreamTotal(local_stream);
}

AlarmStats Shard::ShardTotal(ShardStamp* stamp) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stamp != nullptr) *stamp = StampLocked();
  return fleet_->FleetTotal();
}

Result<std::vector<StreamId>> Shard::CurrentlyAlarming(
    std::size_t window_index, ShardStamp* stamp) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stamp != nullptr) *stamp = StampLocked();
  return fleet_->CurrentlyAlarming(window_index);
}

std::uint64_t Shard::StreamAppendCount(StreamId local_stream) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return fleet_->AppendCount(local_stream);
}

std::string Shard::SerializeState(ShardStamp* stamp) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stamp != nullptr) *stamp = StampLocked();
  return SerializeFleetSnapshot(*fleet_);
}

void Shard::RestoreProgress(std::uint64_t epoch, std::uint64_t appended) {
  SD_CHECK(!worker_.joinable());
  epoch_.store(epoch, std::memory_order_release);
  applied_.store(appended, std::memory_order_release);
  enqueued_.store(appended, std::memory_order_release);
}

Status Shard::worker_status() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return worker_status_;
}

ShardMetricsSnapshot Shard::MetricsSnapshot() const {
  ShardMetricsSnapshot snapshot;
  snapshot.shard = index_;
  snapshot.epoch = epoch_.load(std::memory_order_acquire);
  snapshot.appended = applied_.load(std::memory_order_acquire);
  snapshot.batches = batches_.load(std::memory_order_relaxed);
  snapshot.max_batch = batch_max_.load(std::memory_order_relaxed);
  snapshot.queue_high_water =
      queue_high_water_.load(std::memory_order_relaxed);
  snapshot.num_streams = fleet_->num_streams();
  return snapshot;
}

}  // namespace stardust
