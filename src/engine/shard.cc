#include "engine/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.h"
#include "common/serialize.h"
#include "core/pattern_query.h"
#include "core/snapshot.h"

namespace stardust {

namespace {

// Best-effort worker pinning. Returns whether the affinity call
// succeeded; platforms without thread affinity report failure and the
// worker simply runs unpinned.
bool PinThreadToCore(std::size_t core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % CPU_SETSIZE), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(cpu_set_t), &set) ==
         0;
#else
  (void)core;
  return false;
#endif
}

// Producer-side and idle-worker wait: spin briefly, then yield, then nap.
// Keeps latency low when the peer is active without burning a core when
// it is not.
void Backoff(std::size_t* spins) {
  ++*spins;
  if (*spins < 64) return;
  if (*spins < 256) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(100));
}

void UpdateMax(std::atomic<std::uint64_t>* target, std::uint64_t value) {
  std::uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void UpdateMaxSize(std::atomic<std::size_t>* target, std::size_t value) {
  std::size_t cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t ElapsedNanos(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// One stream's slice of an edge-state map, serialized sorted by query id
// so the bytes are deterministic (unordered_map iteration order is not).
// Absent queries and vectors shorter than the slot read as the default
// value — exactly what a fresh evaluation would start from.
template <typename T>
void SaveEdgeSlice(
    const std::unordered_map<QueryId, std::vector<T>>& map, StreamId local,
    Writer* writer) {
  std::vector<std::pair<QueryId, std::uint64_t>> entries;
  entries.reserve(map.size());
  for (const auto& [id, values] : map) {
    const T value = local < values.size() ? values[local] : T{};
    entries.emplace_back(id, static_cast<std::uint64_t>(value));
  }
  std::sort(entries.begin(), entries.end());
  writer->U64(entries.size());
  for (const auto& [id, value] : entries) {
    writer->U64(id);
    if constexpr (sizeof(T) == 1) {
      writer->U8(static_cast<std::uint8_t>(value));
    } else {
      writer->U64(value);
    }
  }
}

template <typename T>
Status LoadEdgeSlice(std::unordered_map<QueryId, std::vector<T>>* map,
                     StreamId local, std::size_t num_streams,
                     Reader* reader) {
  std::uint64_t count = 0;
  SD_RETURN_NOT_OK(reader->U64(&count));
  constexpr std::size_t kEntryBytes = 8 + sizeof(T);
  if (count > reader->remaining() / kEntryBytes) {
    return Status::InvalidArgument("stream slice edge section truncated");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    SD_RETURN_NOT_OK(reader->U64(&id));
    std::uint64_t value = 0;
    if constexpr (sizeof(T) == 1) {
      std::uint8_t v8 = 0;
      SD_RETURN_NOT_OK(reader->U8(&v8));
      value = v8;
    } else {
      SD_RETURN_NOT_OK(reader->U64(&value));
    }
    std::vector<T>& values = (*map)[id];
    if (values.size() < num_streams) values.resize(num_streams, T{});
    values[local] = static_cast<T>(value);
  }
  return Status::OK();
}

// A whole edge-state map (every query, every slot), serialized sorted by
// query id for deterministic bytes. The full-map form rides checkpoints;
// the per-stream slice form above rides migration blobs.
template <typename T>
void SaveEdgeMap(const std::unordered_map<QueryId, std::vector<T>>& map,
                 Writer* writer) {
  std::vector<QueryId> ids;
  ids.reserve(map.size());
  for (const auto& [id, values] : map) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  writer->U64(ids.size());
  for (const QueryId id : ids) {
    const std::vector<T>& values = map.at(id);
    writer->U64(id);
    writer->U64(values.size());
    for (const T value : values) {
      if constexpr (sizeof(T) == 1) {
        writer->U8(static_cast<std::uint8_t>(value));
      } else {
        writer->U64(static_cast<std::uint64_t>(value));
      }
    }
  }
}

template <typename T>
Status LoadEdgeMap(std::unordered_map<QueryId, std::vector<T>>* map,
                   std::size_t num_streams, Reader* reader) {
  std::uint64_t count = 0;
  SD_RETURN_NOT_OK(reader->U64(&count));
  if (count > reader->remaining() / 16) {
    return Status::InvalidArgument("edge map section truncated");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    SD_RETURN_NOT_OK(reader->U64(&id));
    std::uint64_t len = 0;
    SD_RETURN_NOT_OK(reader->U64(&len));
    if (len > reader->remaining() / sizeof(T)) {
      return Status::InvalidArgument("edge map entry truncated");
    }
    std::vector<T> values(num_streams, T{});
    for (std::uint64_t v = 0; v < len; ++v) {
      std::uint64_t value = 0;
      if constexpr (sizeof(T) == 1) {
        std::uint8_t v8 = 0;
        SD_RETURN_NOT_OK(reader->U8(&v8));
        value = v8;
      } else {
        SD_RETURN_NOT_OK(reader->U64(&value));
      }
      // Slots past the current fleet size (a layout the checkpoint
      // validation would have rejected anyway) are dropped, not UB.
      if (v < num_streams) values[v] = static_cast<T>(value);
    }
    (*map)[id] = std::move(values);
  }
  return Status::OK();
}

}  // namespace

Shard::Shard(std::size_t index, std::size_t num_shards,
             std::size_t num_producers, std::size_t queue_capacity,
             OverloadPolicy policy, std::size_t max_batch,
             std::unique_ptr<FleetAggregateMonitor> fleet,
             std::unique_ptr<FeaturePipeline> pipeline,
             QueryRegistry* registry, AlertBus* alerts,
             EngineMetrics* metrics, ShardOptions options)
    : index_(index),
      num_shards_(num_shards),
      policy_(policy),
      max_batch_(max_batch),
      metrics_(metrics),
      registry_(registry),
      alerts_(alerts),
      options_(std::move(options)) {
  fleet_ = std::move(fleet);
  pipeline_ = std::move(pipeline);
  SD_CHECK(fleet_ != nullptr);
  SD_CHECK(pipeline_ != nullptr);
  SD_CHECK(pipeline_->num_streams() == fleet_->num_streams());
  SD_CHECK(num_producers > 0);
  SD_CHECK(num_shards_ > 0 && index_ < num_shards_);
  SD_CHECK((registry_ != nullptr) == (alerts_ != nullptr));
  if (pipeline_->pattern_core() != nullptr) {
    SD_CHECK(registry_ != nullptr);
  }
  // Default slot table: the engine's historical modulo layout, local
  // slot l holding global l * num_shards + index. SetStreamMapping
  // replaces it when a checkpoint restores a post-migration layout.
  const std::size_t locals = fleet_->num_streams();
  global_of_.resize(locals);
  for (StreamId local = 0; local < locals; ++local) {
    global_of_[local] =
        static_cast<StreamId>(local * num_shards_ + index_);
  }
  if (locals > 0) {
    local_of_.assign(static_cast<std::size_t>(global_of_.back()) + 1,
                     kNoStream);
    for (StreamId local = 0; local < locals; ++local) {
      local_of_[global_of_[local]] = local;
    }
  }
  RebuildSortedLocalsLocked();
  touched_.assign(locals, 0);
  run_count_.assign(locals, 0);
  run_cursor_.assign(locals, 0);
  run_values_.reserve(max_batch_);
  run_begin_.reserve(locals);
  local_scratch_.reserve(max_batch_);
  rings_.reserve(num_producers);
  for (std::size_t i = 0; i < num_producers; ++i) {
    rings_.push_back(std::make_unique<SpscRing<StreamValue>>(queue_capacity));
  }
  ring_enqueued_.reset(new std::atomic<std::uint64_t>[num_producers]());
  ring_retired_.reset(new std::atomic<std::uint64_t>[num_producers]());
}

Shard::~Shard() {
  RequestStop();
  Join();
}

void Shard::Start() {
  SD_CHECK(!worker_.joinable());
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Shard::RequestStop() { stop_.store(true, std::memory_order_release); }

void Shard::Join() {
  if (worker_.joinable()) worker_.join();
}

void Shard::set_paused(bool paused) {
  paused_.store(paused, std::memory_order_release);
}

Status Shard::Push(std::size_t producer, StreamId stream, double value) {
  SD_DCHECK(producer < rings_.size());
  SpscRing<StreamValue>& ring = *rings_[producer];
  const StreamValue tuple{stream, value};
  if (!ring.TryPush(tuple)) {
    switch (policy_) {
      case OverloadPolicy::kDropNewest:
        metrics_->dropped_newest.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      case OverloadPolicy::kDropOldest: {
        StreamValue victim;
        while (!ring.TryPush(tuple)) {
          if (ring.TryPop(&victim)) {
            stolen_.fetch_add(1, std::memory_order_relaxed);
            ring_retired_[producer].fetch_add(1, std::memory_order_release);
            metrics_->dropped_oldest.fetch_add(1, std::memory_order_relaxed);
          }
        }
        break;
      }
      case OverloadPolicy::kBlock: {
        metrics_->block_waits.fetch_add(1, std::memory_order_relaxed);
        std::size_t spins = 0;
        while (!ring.TryPush(tuple)) {
          // A paused or stopping worker never frees a slot, so an
          // unconditional spin here would never return (a producer stuck
          // against a stopped engine). Bail out instead of deadlocking;
          // the tuple is not enqueued.
          if (stop_.load(std::memory_order_acquire)) {
            return Status::Aborted("shard is stopping; post rejected");
          }
          Backoff(&spins);
        }
        break;
      }
    }
  }
  enqueued_.fetch_add(1, std::memory_order_release);
  ring_enqueued_[producer].fetch_add(1, std::memory_order_release);
  metrics_->posted.fetch_add(1, std::memory_order_relaxed);
  UpdateMaxSize(&queue_high_water_, ring.ApproxSize());
  return Status::OK();
}

PostOutcome Shard::TryPush(std::size_t producer, StreamId stream,
                           double value) {
  SD_DCHECK(producer < rings_.size());
  SpscRing<StreamValue>& ring = *rings_[producer];
  const StreamValue tuple{stream, value};
  if (!ring.TryPush(tuple)) {
    switch (policy_) {
      case OverloadPolicy::kDropNewest:
        metrics_->dropped_newest.fetch_add(1, std::memory_order_relaxed);
        return PostOutcome::kDroppedNewest;
      case OverloadPolicy::kDropOldest: {
        StreamValue victim;
        while (!ring.TryPush(tuple)) {
          if (ring.TryPop(&victim)) {
            stolen_.fetch_add(1, std::memory_order_relaxed);
            ring_retired_[producer].fetch_add(1, std::memory_order_release);
            metrics_->dropped_oldest.fetch_add(1, std::memory_order_relaxed);
          }
        }
        break;
      }
      case OverloadPolicy::kBlock:
        // Unlike Push, a full ring is the caller's backpressure signal:
        // nothing is enqueued or accounted, and the caller retries after
        // the worker drains (block_waits stays a Push-only counter).
        return PostOutcome::kWouldBlock;
    }
  }
  enqueued_.fetch_add(1, std::memory_order_release);
  ring_enqueued_[producer].fetch_add(1, std::memory_order_release);
  metrics_->posted.fetch_add(1, std::memory_order_relaxed);
  UpdateMaxSize(&queue_high_water_, ring.ApproxSize());
  return PostOutcome::kEnqueued;
}

std::vector<std::uint64_t> Shard::RingEnqueueCursors() const {
  std::vector<std::uint64_t> cursors(rings_.size());
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    cursors[r] = ring_enqueued_[r].load(std::memory_order_acquire);
  }
  return cursors;
}

bool Shard::RingsDrainedPast(
    const std::vector<std::uint64_t>& targets) const {
  SD_DCHECK(targets.size() == rings_.size());
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    if (ring_retired_[r].load(std::memory_order_acquire) < targets[r]) {
      return false;
    }
  }
  return true;
}

void Shard::WorkerLoop() {
  if (options_.pin) {
    // Best-effort: a failed pin is surfaced once in the metrics and the
    // worker keeps running unpinned — never abort ingestion over
    // placement.
    const bool ok = options_.pin_hook
                        ? options_.pin_hook(options_.pin_core)
                        : PinThreadToCore(options_.pin_core);
    pinned_.store(ok, std::memory_order_release);
    if (!ok) {
      metrics_->pin_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::vector<StreamValue> batch;
  batch.reserve(max_batch_);
  // Pops per ring in the current sweep; committed to ring_retired_ only
  // after ApplyBatch returns, so a passed drain barrier means applied
  // (or parked), never merely popped into an in-flight batch.
  std::vector<std::uint32_t> pop_counts(rings_.size(), 0);
  std::size_t idle_spins = 0;
  std::size_t drain_start = 0;
  for (;;) {
    if (paused_.load(std::memory_order_acquire) &&
        !stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    batch.clear();
    // Rotate the ring the sweep starts at: a fixed starting ring would
    // let producer 0 fill every batch while later producers' full queues
    // starve under sustained overload (kBlock producers stuck forever).
    const std::size_t num_rings = rings_.size();
    for (std::size_t k = 0; k < num_rings; ++k) {
      const std::size_t r = (drain_start + k) % num_rings;
      SpscRing<StreamValue>& ring = *rings_[r];
      StreamValue tuple;
      while (batch.size() < max_batch_ && ring.TryPop(&tuple)) {
        batch.push_back(tuple);
        ++pop_counts[r];
      }
      if (batch.size() >= max_batch_) break;
    }
    drain_start = (drain_start + 1) % num_rings;
    if (batch.empty()) {
      if (park_pending_.load(std::memory_order_acquire)) {
        // An installed migration released parked tuples while the rings
        // were idle; apply them without waiting for fresh traffic.
        ApplyBatch(batch);
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) {
        // Producers are quiesced before RequestStop, so one final empty
        // sweep over every ring means the shard is fully drained.
        bool drained = true;
        for (auto& ring : rings_) drained = drained && ring->ApproxEmpty();
        if (drained) return;
      }
      Backoff(&idle_spins);
      continue;
    }
    idle_spins = 0;
    ApplyBatch(batch);
    for (std::size_t r = 0; r < num_rings; ++r) {
      if (pop_counts[r] != 0) {
        ring_retired_[r].fetch_add(pop_counts[r],
                                   std::memory_order_release);
        pop_counts[r] = 0;
      }
    }
  }
}

void Shard::RefreshQuerySnapshot() {
  const std::uint64_t version = registry_->version();
  if (query_snapshot_ != nullptr && version == query_version_) return;
  query_snapshot_ = registry_->snapshot();
  query_version_ = version;
  // Compile outside the state mutex (compilation only reads immutable
  // configs); the next ApplyBatch commits it, prunes stale evaluation
  // state, and re-points the pipeline.
  PlanContext ctx;
  ctx.fleet = &fleet_->config();
  ctx.pattern = pipeline_->pattern_core() != nullptr
                    ? &pipeline_->pattern_core()->config()
                    : nullptr;
  ctx.correlation = pipeline_->corr_core() != nullptr
                        ? &pipeline_->corr_core()->config()
                        : nullptr;
  pending_plan_ = CompileEvalPlan(*query_snapshot_, version, ctx);
}

void Shard::PruneQueryStateLocked() {
  // Prune evaluation state of queries that left the registry so the maps
  // cannot grow without bound under register/unregister churn. Runs at
  // plan commit with state_mu_ held: migrations serialize and install
  // edge-state slices under the same mutex.
  for (auto it = agg_alarming_.begin(); it != agg_alarming_.end();) {
    bool live = false;
    for (const auto& q : query_snapshot_->aggregate) {
      if (q->id == it->first) {
        live = true;
        break;
      }
    }
    it = live ? std::next(it) : agg_alarming_.erase(it);
  }
  for (auto it = sketch_alarming_.begin(); it != sketch_alarming_.end();) {
    bool live = false;
    for (const auto& q : query_snapshot_->sketch) {
      if (q->id == it->first) {
        live = true;
        break;
      }
    }
    it = live ? std::next(it) : sketch_alarming_.erase(it);
  }
  for (auto it = pattern_watermark_.begin();
       it != pattern_watermark_.end();) {
    bool live = false;
    for (const auto& q : query_snapshot_->pattern) {
      if (q->id == it->first) {
        live = true;
        break;
      }
    }
    it = live ? std::next(it) : pattern_watermark_.erase(it);
  }
  for (auto it = pattern_eval_floor_.begin();
       it != pattern_eval_floor_.end();) {
    bool live = false;
    for (const auto& q : query_snapshot_->pattern) {
      if (q->id == it->first) {
        live = true;
        break;
      }
    }
    it = live ? std::next(it) : pattern_eval_floor_.erase(it);
  }
}

void Shard::GroupRuns(const std::vector<StreamValue>& batch) {
  touched_list_.clear();
  run_begin_.clear();
  invalid_.clear();
  local_scratch_.clear();
  newly_parked_ = 0;
  // An unknown global surfaces through the scalar path as an
  // out-of-range local append, so append_errors accounting matches the
  // pre-placement engine's handling of an unmapped stream id.
  const StreamId unknown_local =
      static_cast<StreamId>(fleet_->num_streams());
  // Pass 1: translate to local slots and count tuples per stream (first
  // touch resets the stale count from the previous batch, so no
  // O(num_streams) clear is needed).
  for (const StreamValue& tuple : batch) {
    const StreamId local = LocalOfLocked(tuple.stream);
    if (local == kNoStream) {
      if (tuple.stream == parked_stream_) {
        park_.push_back(tuple);
        ++newly_parked_;
      } else {
        invalid_.push_back(StreamValue{unknown_local, tuple.value});
      }
      local_scratch_.push_back(kNoStream);
      continue;
    }
    local_scratch_.push_back(local);
    if (!touched_[local]) {
      touched_[local] = 1;
      touched_list_.push_back(local);
      run_count_[local] = 0;
    }
    ++run_count_[local];
  }
  // Prefix offsets: one contiguous run per touched stream, packed in
  // first-touch order.
  std::size_t offset = 0;
  for (StreamId s : touched_list_) {
    run_begin_.push_back(offset);
    run_cursor_[s] = static_cast<std::uint32_t>(offset);
    offset += run_count_[s];
  }
  run_values_.resize(offset);
  // Pass 2: stable scatter — per-stream value order is batch order, so a
  // run replays exactly the subsequence the scalar path would append.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const StreamId local = local_scratch_[i];
    if (local == kNoStream) continue;
    run_values_[run_cursor_[local]++] = batch[i].value;
  }
  for (StreamId s : touched_list_) touched_[s] = 0;
}

void Shard::ApplyTupleLocked(StreamId stream, double value) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  Status status = fleet_->Append(stream, value);
  // The pipeline sees the same tuples in the same order as the fleet;
  // its failures surface like fleet append failures.
  if (status.ok()) status = pipeline_->Append(stream, value);
  const std::uint64_t nanos = ElapsedNanos(start);
  maintain_ns_ += nanos;
  metrics_->append_latency.Record(nanos);
  if (status.ok()) {
    metrics_->appended.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_->append_errors.fetch_add(1, std::memory_order_relaxed);
    if (worker_status_.ok()) worker_status_ = status;
  }
}

void Shard::ApplyRunLocked(StreamId stream, const double* values,
                           std::size_t count) {
  using Clock = std::chrono::steady_clock;
  // One cutoff decision per run, not per segment: the backend-calibrated
  // crossover is loaded from atomics and cannot change mid-run.
  const std::size_t cutoff = Stardust::ScalarRunCutoff();
  std::size_t i = 0;
  while (i < count) {
    // Non-finite values are rejected per tuple by the scalar path (fleet
    // append fails, pipeline skipped). Split the run around them so the
    // batched path rejects the exact same tuples with the same status.
    if (!std::isfinite(values[i])) {
      ApplyTupleLocked(stream, values[i]);
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < count && std::isfinite(values[j])) ++j;
    const std::size_t len = j - i;
    // Short runs gain nothing from the run machinery (its fixed setup
    // cost per level only amortizes across multiple values); take the
    // scalar path so sparse batches never regress. The cutoff matches
    // the dispatch inside Stardust::AppendRun (ScalarRunCutoff).
    if (len <= cutoff) {
      for (std::size_t k = i; k < j; ++k) {
        ApplyTupleLocked(stream, values[k]);
      }
      i = j;
      continue;
    }
    const Clock::time_point start = Clock::now();
    Status status = fleet_->AppendRun(stream, values + i, len);
    if (status.ok()) {
      status = pipeline_->AppendRun(stream, values + i, len);
    }
    const std::uint64_t nanos = ElapsedNanos(start);
    maintain_ns_ += nanos;
    // Charge the run's amortized per-value cost; one atomic round-trip
    // per run instead of per tuple.
    metrics_->append_latency.RecordN(nanos / len, len);
    if (status.ok()) {
      metrics_->appended.fetch_add(len, std::memory_order_relaxed);
    } else {
      // A finite run can only fail on internal errors (streams are
      // validated, values are finite); surface it once like the scalar
      // path surfaces its first failure.
      metrics_->append_errors.fetch_add(1, std::memory_order_relaxed);
      if (worker_status_.ok()) worker_status_ = status;
    }
    i = j;
  }
}

void Shard::EvaluateQueriesLocked(std::vector<Alert>* out) {
  using Clock = std::chrono::steady_clock;
  const EvalPlan& plan = *plan_;
  if (plan.aggregate.empty() && plan.pattern.empty() &&
      plan.sketch.empty()) {
    return;
  }

  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed) + 1;
  const std::size_t num_streams = fleet_->num_streams();

  // Aggregate stage: every query sharing a window reads the one tracker
  // the pipeline maintains for that window — the Algorithm-2 check costs
  // one tracker read per (group, touched stream) instead of one
  // filter/verify walk per (query, touched stream). Alerts stay
  // edge-triggered on the false -> true alarm transition so a window
  // staying above its threshold emits once, not once per batch.
  if (!plan.aggregate.empty()) {
    plan.aggregate_evals.fetch_add(1, std::memory_order_relaxed);
    for (const EvalPlan::AggregateGroup& group : plan.aggregate) {
      const Clock::time_point start = Clock::now();
      if (group.evaluable) {
        edge_scratch_.clear();
        for (const auto& q : group.queries) {
          std::vector<char>& edge = agg_alarming_[q->id];
          // Prefix-preserving growth: a migration installing a fresh
          // slot must not wipe the other streams' edge state (a wipe
          // re-alerts every currently-alarming stream).
          if (edge.size() < num_streams) edge.resize(num_streams, 0);
          edge_scratch_.push_back(&edge);
        }
        for (StreamId s : touched_list_) {
          // Ready mirrors the seed path's availability exactly: the
          // tracker has a full window iff the retained raw history does.
          if (!pipeline_->TrackerReady(s, group.tracker_index)) continue;
          const double exact =
              pipeline_->TrackerValue(s, group.tracker_index);
          const std::uint64_t end_time = fleet_->AppendCount(s) - 1;
          for (std::size_t qi = 0; qi < group.queries.size(); ++qi) {
            const auto& q = group.queries[qi];
            std::vector<char>& edge = *edge_scratch_[qi];
            // Alarm == the exact aggregate left the query's assess
            // range. Specs built via Aggregate() carry the legacy
            // [-inf, threshold) range, making this bit-identical to the
            // old `exact >= threshold` check.
            const bool alarm = !q->spec.assess.Contains(exact);
            if (alarm && !edge[s]) {
              q->hits.fetch_add(1, std::memory_order_relaxed);
              // Edge state flips either way: a rate-limited alert is
              // suppressed, not re-raised when the bucket refills.
              if (q->AllowAlert()) {
                Alert alert;
                alert.query = q->id;
                alert.kind = QueryKind::kAggregate;
                alert.stream = global_of_[s];
                alert.window = group.window;
                alert.end_time = end_time;
                alert.epoch = epoch;
                alert.value = exact;
                alert.threshold = q->spec.assess.ViolatedBound(exact);
                out->push_back(alert);
              }
            }
            edge[s] = alarm ? 1 : 0;
          }
        }
      }
      // Per-query accounting: the group ran once; attribute the shared
      // cost evenly. Non-evaluable groups (window beyond the retained
      // history) record the evaluation without alarming, exactly like
      // the seed path's silent OutOfRange skip.
      const std::uint64_t shared =
          ElapsedNanos(start) / group.queries.size();
      for (const auto& q : group.queries) {
        q->evals.fetch_add(1, std::memory_order_relaxed);
        q->eval_nanos.fetch_add(shared, std::memory_order_relaxed);
      }
    }
  }

  // Sketch stage: every query sharing a config reads the one windowed
  // measure the pipeline maintains in that slot — one Estimate per
  // (group, touched stream), with per-query assess ranges checked
  // against the shared estimate. Edge-triggered like the aggregate
  // stage: an estimate staying outside its range emits once.
  if (!plan.sketch.empty()) {
    plan.sketch_evals.fetch_add(1, std::memory_order_relaxed);
    for (const EvalPlan::SketchGroup& group : plan.sketch) {
      const Clock::time_point start = Clock::now();
      edge_scratch_.clear();
      for (const auto& q : group.queries) {
        std::vector<char>& edge = sketch_alarming_[q->id];
        if (edge.size() < num_streams) edge.resize(num_streams, 0);
        edge_scratch_.push_back(&edge);
      }
      for (StreamId s : touched_list_) {
        // A measure created mid-stream warms up for one full window
        // before it evaluates (sketch state cannot be backfilled).
        if (!pipeline_->SketchReady(s, group.slot)) continue;
        const double estimate = pipeline_->SketchEstimate(s, group.slot);
        const std::uint64_t end_time = fleet_->AppendCount(s) - 1;
        for (std::size_t qi = 0; qi < group.queries.size(); ++qi) {
          const auto& q = group.queries[qi];
          std::vector<char>& edge = *edge_scratch_[qi];
          const bool alarm = !q->spec.assess.Contains(estimate);
          if (alarm && !edge[s]) {
            q->hits.fetch_add(1, std::memory_order_relaxed);
            // Edge state flips either way: a rate-limited alert is
            // suppressed, not re-raised when the bucket refills.
            if (q->AllowAlert()) {
              Alert alert;
              alert.query = q->id;
              alert.kind = QueryKind::kSketch;
              alert.stream = global_of_[s];
              alert.window = static_cast<std::size_t>(group.config.window);
              alert.end_time = end_time;
              alert.epoch = epoch;
              alert.value = estimate;
              alert.threshold = q->spec.assess.ViolatedBound(estimate);
              out->push_back(alert);
            }
          }
          edge[s] = alarm ? 1 : 0;
        }
      }
      const std::uint64_t shared =
          ElapsedNanos(start) / group.queries.size();
      for (const auto& q : group.queries) {
        q->evals.fetch_add(1, std::memory_order_relaxed);
        q->eval_nanos.fetch_add(shared, std::memory_order_relaxed);
      }
    }
  }

  // Pattern stage: Algorithm 3 over the pipeline's online core with the
  // plan's precompiled query state (pieces, normalized query, budget),
  // and a per-stream delivery watermark so a match position is alerted
  // exactly once even though consecutive evaluations keep finding it
  // until it slides out of the history buffer.
  if (!plan.pattern.empty() && pipeline_->pattern_core() != nullptr) {
    plan.pattern_evals.fetch_add(1, std::memory_order_relaxed);
    const PatternQueryEngine engine(*pipeline_->pattern_core());
    for (const EvalPlan::PatternEntry& entry : plan.pattern) {
      const auto& q = entry.query;
      const Clock::time_point start = Clock::now();
      std::vector<std::uint64_t>& wm = pattern_watermark_[q->id];
      if (wm.size() < num_streams) wm.resize(num_streams, 0);
      std::vector<std::uint64_t>& ef = pattern_eval_floor_[q->id];
      if (ef.size() < num_streams) ef.resize(num_streams, 0);
      if (!entry.ok) {
        // Compilation failed for this core's configuration: surfaced the
        // same way the uncompiled path surfaced a per-eval query error.
        q->errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Standing queries evaluate incrementally: only positions past
        // the per-stream cursor — O(new tuples), not a range search over
        // the whole level index per batch. The watermark below keeps the
        // delivered-once guarantee across evaluation-state resets.
        const Result<PatternResult> result =
            engine.QueryCompiledIncremental(entry.compiled, ef.data());
        if (!result.ok()) {
          q->errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          for (const PatternMatch& match : result.value().matches) {
            if (match.end_time + 1 <= wm[match.stream]) continue;
            wm[match.stream] = match.end_time + 1;
            q->hits.fetch_add(1, std::memory_order_relaxed);
            // The watermark advances either way: a rate-limited match is
            // suppressed, not re-raised when the bucket refills.
            if (!q->AllowAlert()) continue;
            Alert alert;
            alert.query = q->id;
            alert.kind = QueryKind::kPattern;
            alert.stream = global_of_[match.stream];
            alert.window = q->spec.pattern.size();
            alert.end_time = match.end_time;
            alert.epoch = epoch;
            alert.value = match.distance;
            alert.threshold = q->spec.radius;
            out->push_back(alert);
          }
        }
      }
      q->evals.fetch_add(1, std::memory_order_relaxed);
      q->eval_nanos.fetch_add(ElapsedNanos(start),
                              std::memory_order_relaxed);
    }
  }
}

void Shard::ApplyBatch(const std::vector<StreamValue>& batch) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point batch_start = Clock::now();
  if (registry_ != nullptr) RefreshQuerySnapshot();
  std::vector<Alert> alerts;
  std::size_t work_size = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (pending_plan_ != nullptr) {
      plan_ = std::move(pending_plan_);
      pending_plan_ = nullptr;
      PruneQueryStateLocked();
      pipeline_->AdoptPlan(*plan_, *fleet_);
    }
    // A completed migration released its parked tuples: apply them
    // first, in arrival order, ahead of this batch — exactly the order
    // the ring would have delivered had the stream been resident.
    const std::vector<StreamValue>* work = &batch;
    if (!park_.empty() && parked_stream_ == kNoStream) {
      merged_.clear();
      merged_.swap(park_);
      parked_.fetch_sub(merged_.size(), std::memory_order_release);
      park_pending_.store(false, std::memory_order_release);
      merged_.insert(merged_.end(), batch.begin(), batch.end());
      work = &merged_;
    }
    work_size = work->size();
    // Batched columnar maintenance: regroup the batch into one
    // contiguous run per stream and append each run through the fleet
    // and pipeline run entry points (one state load/store per level per
    // run instead of per value). Streams are independent, so reordering
    // across streams — while keeping each stream's values in batch
    // order — leaves every per-stream monitor, tracker, and summarizer
    // byte-identical to the scalar per-tuple path.
    GroupRuns(*work);
    if (newly_parked_ > 0) {
      parked_.fetch_add(newly_parked_, std::memory_order_release);
    }
    for (std::size_t i = 0; i < touched_list_.size(); ++i) {
      const StreamId stream = touched_list_[i];
      ApplyRunLocked(stream, run_values_.data() + run_begin_[i],
                     run_count_[stream]);
    }
    // Tuples naming an unknown stream cannot be grouped; push them
    // through the scalar path so their errors are accounted identically.
    for (const StreamValue& tuple : invalid_) {
      ApplyTupleLocked(tuple.stream, tuple.value);
    }
    // Close the batch exactly once: features are derived here and only
    // read (never recomputed) by the query stages below and by
    // correlator rounds.
    const Clock::time_point finish_start = Clock::now();
    pipeline_->FinishBatch(touched_list_);
    maintain_ns_ += ElapsedNanos(finish_start);
    if (registry_ != nullptr && plan_ != nullptr) {
      EvaluateQueriesLocked(&alerts);
    }
    // Publish inside the lock so a reader's stamp always matches the
    // monitor state it observed. Parked tuples are not applied yet;
    // they count when the post-install drain actually applies them.
    applied_.fetch_add(work_size - newly_parked_,
                       std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  // Alerts are published after the state lock is released: a kBlock bus
  // waiting on a slow sink must stall only this worker, not every reader
  // snapshotting the shard.
  for (const Alert& alert : alerts) {
    const Status status = alerts_->Publish(alert);
    if (status.ok()) {
      metrics_->alerts_published.fetch_add(1, std::memory_order_relaxed);
    }
  }
  alert_progress_.store(applied_.load(std::memory_order_relaxed),
                        std::memory_order_release);
  batches_.fetch_add(1, std::memory_order_relaxed);
  UpdateMax(&batch_max_, work_size);
  apply_batch_latency_.Record(ElapsedNanos(batch_start));
}

ShardStamp Shard::StampLocked() const {
  ShardStamp stamp;
  stamp.shard = index_;
  stamp.epoch = epoch_.load(std::memory_order_relaxed);
  stamp.appended = applied_.load(std::memory_order_relaxed);
  return stamp;
}

void Shard::RebuildSortedLocalsLocked() {
  sorted_locals_.clear();
  for (StreamId local = 0; local < global_of_.size(); ++local) {
    if (global_of_[local] != kNoStream) sorted_locals_.push_back(local);
  }
  std::sort(sorted_locals_.begin(), sorted_locals_.end(),
            [this](StreamId a, StreamId b) {
              return global_of_[a] < global_of_[b];
            });
}

bool Shard::FindStreamTotal(StreamId global_stream, AlarmStats* out,
                            ShardStamp* stamp) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  const StreamId local = LocalOfLocked(global_stream);
  if (local == kNoStream) return false;
  if (stamp != nullptr) *stamp = StampLocked();
  *out = fleet_->StreamTotal(local);
  return true;
}

AlarmStats Shard::ShardTotal(ShardStamp* stamp) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stamp != nullptr) *stamp = StampLocked();
  return fleet_->FleetTotal();
}

Result<std::vector<StreamId>> Shard::CurrentlyAlarming(
    std::size_t window_index, ShardStamp* stamp) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stamp != nullptr) *stamp = StampLocked();
  Result<std::vector<StreamId>> locals =
      fleet_->CurrentlyAlarming(window_index);
  if (!locals.ok()) return locals.status();
  std::vector<StreamId> globals;
  globals.reserve(locals.value().size());
  for (StreamId local : locals.value()) {
    const StreamId global = global_of_[local];
    // A tombstoned slot holds a freshly reset monitor and cannot alarm;
    // the skip is a correctness net, not a steady-state path.
    if (global != kNoStream) globals.push_back(global);
  }
  std::sort(globals.begin(), globals.end());
  return globals;
}

bool Shard::FindStreamAppendCount(StreamId global_stream,
                                  std::uint64_t* out) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  const StreamId local = LocalOfLocked(global_stream);
  if (local == kNoStream) return false;
  *out = fleet_->AppendCount(local);
  return true;
}

std::vector<std::pair<StreamId, std::uint64_t>> Shard::StreamAppendCounts()
    const {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<std::pair<StreamId, std::uint64_t>> counts;
  counts.reserve(sorted_locals_.size());
  for (StreamId local : sorted_locals_) {
    counts.emplace_back(global_of_[local], fleet_->AppendCount(local));
  }
  return counts;
}

std::string Shard::SerializeState(ShardStamp* stamp, std::string* features,
                                  std::vector<StreamId>* mapping,
                                  std::string* edges) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stamp != nullptr) *stamp = StampLocked();
  if (features != nullptr) *features = pipeline_->Serialize();
  if (mapping != nullptr) *mapping = global_of_;
  if (edges != nullptr) {
    Writer writer;
    SaveEdgeMap(agg_alarming_, &writer);
    SaveEdgeMap(sketch_alarming_, &writer);
    SaveEdgeMap(pattern_watermark_, &writer);
    SaveEdgeMap(pattern_eval_floor_, &writer);
    *edges = writer.TakeBuffer();
  }
  return SerializeFleetSnapshot(*fleet_);
}

Status Shard::RestoreFeatures(const std::string& bytes) {
  SD_CHECK(!worker_.joinable());
  std::lock_guard<std::mutex> lock(state_mu_);
  return pipeline_->Restore(bytes);
}

Status Shard::RestoreEdges(const std::string& bytes) {
  SD_CHECK(!worker_.joinable());
  std::lock_guard<std::mutex> lock(state_mu_);
  const std::size_t num_streams = fleet_->num_streams();
  Reader reader(bytes);
  SD_RETURN_NOT_OK(LoadEdgeMap(&agg_alarming_, num_streams, &reader));
  SD_RETURN_NOT_OK(LoadEdgeMap(&sketch_alarming_, num_streams, &reader));
  SD_RETURN_NOT_OK(LoadEdgeMap(&pattern_watermark_, num_streams, &reader));
  SD_RETURN_NOT_OK(
      LoadEdgeMap(&pattern_eval_floor_, num_streams, &reader));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("edge snapshot has trailing bytes");
  }
  return Status::OK();
}

Status Shard::SetStreamMapping(const std::vector<StreamId>& globals) {
  SD_CHECK(!worker_.joinable());
  std::lock_guard<std::mutex> lock(state_mu_);
  if (globals.size() != fleet_->num_streams()) {
    return Status::InvalidArgument(
        "stream mapping size does not match the shard's slot count");
  }
  StreamId max_global = 0;
  bool any = false;
  for (StreamId global : globals) {
    if (global == kNoStream) continue;
    max_global = std::max(max_global, global);
    any = true;
  }
  std::vector<StreamId> local_of(
      any ? static_cast<std::size_t>(max_global) + 1 : 0, kNoStream);
  std::vector<StreamId> free_slots;
  for (StreamId local = 0; local < globals.size(); ++local) {
    const StreamId global = globals[local];
    if (global == kNoStream) {
      free_slots.push_back(local);
      continue;
    }
    if (local_of[global] != kNoStream) {
      return Status::InvalidArgument(
          "stream mapping assigns one global id to two slots");
    }
    local_of[global] = local;
  }
  global_of_ = globals;
  local_of_ = std::move(local_of);
  free_slots_ = std::move(free_slots);
  RebuildSortedLocalsLocked();
  return Status::OK();
}

void Shard::RestoreProgress(std::uint64_t epoch, std::uint64_t appended) {
  SD_CHECK(!worker_.joinable());
  epoch_.store(epoch, std::memory_order_release);
  applied_.store(appended, std::memory_order_release);
  alert_progress_.store(appended, std::memory_order_release);
  enqueued_.store(appended, std::memory_order_release);
}

Status Shard::worker_status() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return worker_status_;
}

// --- Live migration ----------------------------------------------------

Status Shard::PrepareReceive(StreamId global_stream) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (parked_stream_ != kNoStream) {
    return Status::FailedPrecondition(
        "another migration is already in flight to this shard");
  }
  if (LocalOfLocked(global_stream) != kNoStream) {
    return Status::FailedPrecondition(
        "stream is already resident on the target shard");
  }
  SD_CHECK(park_.empty());
  parked_stream_ = global_stream;
  return Status::OK();
}

Status Shard::SaveStreamLocked(StreamId local, Writer* writer) const {
  SD_RETURN_NOT_OK(fleet_->SaveStreamTo(local, writer));
  SD_RETURN_NOT_OK(pipeline_->SaveStreamTo(local, writer));
  SaveEdgeSlice(agg_alarming_, local, writer);
  SaveEdgeSlice(sketch_alarming_, local, writer);
  SaveEdgeSlice(pattern_watermark_, local, writer);
  SaveEdgeSlice(pattern_eval_floor_, local, writer);
  return Status::OK();
}

Status Shard::ExtractStream(StreamId global_stream, std::string* blob) {
  std::lock_guard<std::mutex> lock(state_mu_);
  const StreamId local = LocalOfLocked(global_stream);
  if (local == kNoStream) {
    return Status::NotFound("stream is not resident on this shard");
  }
  Writer writer;
  SD_RETURN_NOT_OK(SaveStreamLocked(local, &writer));
  *blob = writer.TakeBuffer();
  // Tombstone the slot: reset every per-stream structure to empty and
  // mark the local id reusable. The caller already re-routed the stream
  // and drained this shard's rings, so no tuple can reach the slot.
  SD_RETURN_NOT_OK(fleet_->ResetStream(local));
  SD_RETURN_NOT_OK(pipeline_->ResetStream(local, *fleet_));
  for (auto& [id, edge] : agg_alarming_) {
    if (local < edge.size()) edge[local] = 0;
  }
  for (auto& [id, edge] : sketch_alarming_) {
    if (local < edge.size()) edge[local] = 0;
  }
  for (auto& [id, wm] : pattern_watermark_) {
    if (local < wm.size()) wm[local] = 0;
  }
  for (auto& [id, ef] : pattern_eval_floor_) {
    if (local < ef.size()) ef[local] = 0;
  }
  global_of_[local] = kNoStream;
  local_of_[global_stream] = kNoStream;
  free_slots_.push_back(local);
  RebuildSortedLocalsLocked();
  return Status::OK();
}

Status Shard::InstallStream(StreamId global_stream,
                            const std::string& blob) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (parked_stream_ != global_stream) {
    return Status::FailedPrecondition(
        "InstallStream without a matching PrepareReceive");
  }
  StreamId local = kNoStream;
  if (!free_slots_.empty()) {
    local = free_slots_.back();
    free_slots_.pop_back();
  } else {
    Result<StreamId> grown = fleet_->AddStream();
    if (!grown.ok()) return grown.status();
    local = grown.value();
    const StreamId pipeline_local = pipeline_->GrowStream(*fleet_);
    SD_CHECK(pipeline_local == local);
    const std::size_t num_streams = fleet_->num_streams();
    touched_.resize(num_streams, 0);
    run_count_.resize(num_streams, 0);
    run_cursor_.resize(num_streams, 0);
    global_of_.resize(num_streams, kNoStream);
  }
  Reader reader(blob);
  SD_RETURN_NOT_OK(fleet_->RestoreStreamFrom(local, &reader));
  SD_RETURN_NOT_OK(pipeline_->RestoreStreamFrom(local, &reader, *fleet_));
  const std::size_t num_streams = fleet_->num_streams();
  SD_RETURN_NOT_OK(
      LoadEdgeSlice(&agg_alarming_, local, num_streams, &reader));
  SD_RETURN_NOT_OK(
      LoadEdgeSlice(&sketch_alarming_, local, num_streams, &reader));
  SD_RETURN_NOT_OK(
      LoadEdgeSlice(&pattern_watermark_, local, num_streams, &reader));
  SD_RETURN_NOT_OK(
      LoadEdgeSlice(&pattern_eval_floor_, local, num_streams, &reader));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("stream slice has trailing bytes");
  }
  global_of_[local] = global_stream;
  if (local_of_.size() <= global_stream) {
    local_of_.resize(static_cast<std::size_t>(global_stream) + 1,
                     kNoStream);
  }
  local_of_[global_stream] = local;
  RebuildSortedLocalsLocked();
  parked_stream_ = kNoStream;
  if (!park_.empty()) {
    park_pending_.store(true, std::memory_order_release);
  }
  return Status::OK();
}

Status Shard::SerializeStream(StreamId global_stream,
                              std::string* blob) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  const StreamId local = LocalOfLocked(global_stream);
  if (local == kNoStream) {
    return Status::NotFound("stream is not resident on this shard");
  }
  Writer writer;
  SD_RETURN_NOT_OK(SaveStreamLocked(local, &writer));
  *blob = writer.TakeBuffer();
  return Status::OK();
}

bool Shard::ParkDrained() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return parked_stream_ == kNoStream && park_.empty();
}

ShardMetricsSnapshot Shard::MetricsSnapshot() const {
  ShardMetricsSnapshot snapshot;
  snapshot.shard = index_;
  snapshot.epoch = epoch_.load(std::memory_order_acquire);
  snapshot.appended = applied_.load(std::memory_order_acquire);
  snapshot.batches = batches_.load(std::memory_order_relaxed);
  snapshot.max_batch = batch_max_.load(std::memory_order_relaxed);
  snapshot.queue_high_water =
      queue_high_water_.load(std::memory_order_relaxed);
  snapshot.pinned = pinned_.load(std::memory_order_acquire);
  snapshot.apply_batch_count = apply_batch_latency_.Count();
  snapshot.apply_batch_mean_ns = apply_batch_latency_.MeanNanos();
  snapshot.apply_batch_p50_ns = apply_batch_latency_.PercentileNanos(0.5);
  snapshot.apply_batch_p99_ns = apply_batch_latency_.PercentileNanos(0.99);
  {
    // Pipeline counters and the committed plan are guarded by the state
    // mutex (metrics scraping is a cold path).
    std::lock_guard<std::mutex> lock(state_mu_);
    snapshot.num_streams = sorted_locals_.size();
    snapshot.maintain_ns = maintain_ns_;
    snapshot.stream_appends.reserve(sorted_locals_.size());
    for (StreamId local : sorted_locals_) {
      snapshot.stream_appends.emplace_back(global_of_[local],
                                           fleet_->AppendCount(local));
    }
    const FeaturePipeline::Counters counters = pipeline_->counters();
    snapshot.pipeline_batches = counters.batches;
    snapshot.pipeline_appends = counters.appends;
    snapshot.znorm_computes = counters.znorm_computes;
    snapshot.tracker_rebuilds = counters.tracker_rebuilds;
    snapshot.store_puts = counters.store_puts;
    snapshot.store_hits = counters.store_hits;
    snapshot.store_misses = counters.store_misses;
    snapshot.sketch_appends = counters.sketch_appends;
    snapshot.sketch_merges = counters.sketch_merges;
    snapshot.sketch_estimates = counters.sketch_estimates;
    snapshot.sketch_serialized_bytes = counters.sketch_serialized_bytes;
    snapshot.sketch_slots = pipeline_->num_sketch_slots();
    if (plan_ != nullptr) {
      snapshot.plan_version = plan_->version;
      snapshot.plan_aggregate_evals =
          plan_->aggregate_evals.load(std::memory_order_relaxed);
      snapshot.plan_pattern_evals =
          plan_->pattern_evals.load(std::memory_order_relaxed);
      snapshot.plan_correlation_evals =
          plan_->correlation_evals.load(std::memory_order_relaxed);
      snapshot.plan_sketch_evals =
          plan_->sketch_evals.load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

std::vector<Shard::FeatureClock> Shard::CorrelationClocks(
    std::size_t level) const {
  const Stardust* corr_core = pipeline_->corr_core();
  SD_CHECK(corr_core != nullptr);
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<FeatureClock> clocks(corr_core->num_streams());
  for (StreamId s = 0; s < corr_core->num_streams(); ++s) {
    const LevelThread& thread = corr_core->summarizer(s).thread(level);
    if (!thread.empty()) {
      clocks[s].has = true;
      clocks[s].time = thread.last_time();
    }
  }
  return clocks;
}

bool Shard::CorrelationClockMinSince(std::size_t level,
                                     std::uint64_t since_epoch,
                                     ClockSummary* out) const {
  const Stardust* corr_core = pipeline_->corr_core();
  SD_CHECK(corr_core != nullptr);
  std::lock_guard<std::mutex> lock(state_mu_);
  const FeatureStore& store = pipeline_->store();
  // Dirty short-circuit: a monitored level with no put since the caller's
  // recorded epoch cannot have moved any stream's clock — every clock
  // advance of a store-monitored level writes an entry in the same batch
  // (FeaturePipeline::FinishBatch), and migrations installing or
  // clearing a stream stamp it dirty (FeatureStore::TouchStream).
  // Levels the store does not monitor (plan adoption still in flight)
  // always take the scan.
  if (since_epoch != 0 && store.has_level(level) &&
      store.LevelPutEpoch(level) <= since_epoch) {
    return false;
  }
  out->store_epoch = store.epoch();
  out->any = false;
  out->min_time = 0;
  for (StreamId s = 0; s < corr_core->num_streams(); ++s) {
    const LevelThread& thread = corr_core->summarizer(s).thread(level);
    if (thread.empty()) continue;
    const std::uint64_t t = thread.last_time();
    out->min_time = out->any ? std::min(out->min_time, t) : t;
    out->any = true;
  }
  return true;
}

Status Shard::CorrelationGatherAt(std::size_t level, std::uint64_t t,
                                  CorrelationGather* out) const {
  SD_CHECK(pipeline_->corr_core() != nullptr);
  std::lock_guard<std::mutex> lock(state_mu_);
  out->streams.clear();
  out->features.clear();
  out->znormed.clear();
  out->dims = 0;
  out->window = 0;
  // Walk the slot table in ascending-global order so the gather's
  // globals stay sorted regardless of how migrations shuffled the
  // local slots.
  for (StreamId s : sorted_locals_) {
    FeatureStore::View view;
    if (!pipeline_->CorrelationFeature(level, s, t, &view)) continue;
    if (out->streams.empty()) {
      out->dims = view.dims;
      out->window = view.window;
    }
    out->streams.push_back(global_of_[s]);
    out->features.insert(out->features.end(), view.feature,
                         view.feature + view.dims);
    out->znormed.insert(out->znormed.end(), view.znormed,
                        view.znormed + view.window);
  }
  return Status::OK();
}

Status Shard::CorrelationFeaturesAt(
    std::size_t level, std::uint64_t t,
    std::vector<CorrelationFeature>* out) const {
  SD_CHECK(pipeline_->corr_core() != nullptr);
  std::lock_guard<std::mutex> lock(state_mu_);
  for (StreamId s : sorted_locals_) {
    // Served from the shared FeatureStore when the pipeline cached this
    // aligned time (the steady state); recomputed from the correlation
    // core only for rounds lagging behind the cache ring. Streams whose
    // data expired (or never reached `t`) are skipped either way.
    FeatureStore::View view;
    if (!pipeline_->CorrelationFeature(level, s, t, &view)) continue;
    CorrelationFeature feature;
    feature.global_stream = global_of_[s];
    feature.feature.assign(view.feature, view.feature + view.dims);
    feature.znormed.assign(view.znormed, view.znormed + view.window);
    out->push_back(std::move(feature));
  }
  return Status::OK();
}

}  // namespace stardust
