// FeaturePipeline: the compute-once feature maintenance stage of a shard.
//
// One pipeline per shard owns every piece of derived per-stream state the
// query classes consume — the online unit-sphere DWT core (pattern
// queries), the batch z-normalized DWT core (correlation features), the
// per-stream sliding trackers backing the plan's aggregate window set,
// and the columnar FeatureStore caching z-normalized correlation
// features. The shard worker feeds each applied tuple exactly once
// (Append) and closes the batch exactly once (FinishBatch); every query
// stage then reads the shared state instead of re-deriving it, which is
// the unified-framework claim of the paper made concrete (docs/
// FEATURES.md).
//
// Threading: all methods are called by the owning shard's worker under
// the shard state mutex (or before the shard starts). The pipeline has no
// internal synchronization.
#ifndef STARDUST_ENGINE_FEATURE_PIPELINE_H_
#define STARDUST_ENGINE_FEATURE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/feature_store.h"
#include "sketch/measure.h"
#include "core/fleet_monitor.h"
#include "core/stardust.h"
#include "query/eval_plan.h"
#include "transform/sliding_tracker.h"

namespace stardust {

class FeaturePipeline {
 public:
  /// Aligned feature times cached per (level, stream); bounds how far a
  /// correlator round may lag the freshest feature before falling back to
  /// recomputation.
  static constexpr std::size_t kDefaultStoreCapacity = 8;

  /// Snapshot of the pipeline's exactly-once maintenance counters.
  struct Counters {
    std::uint64_t batches = 0;        // FinishBatch calls (== shard epoch)
    std::uint64_t appends = 0;        // tuples fed through Append
    std::uint64_t znorm_computes = 0; // z-normalizations actually computed
    std::uint64_t tracker_rebuilds = 0;
    std::uint64_t store_puts = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::uint64_t store_epoch = 0;
    /// Summed over the live sketch measures (sketch/measure.h counters),
    /// plus the bytes their snapshots contributed to Serialize calls.
    std::uint64_t sketch_appends = 0;
    std::uint64_t sketch_merges = 0;
    std::uint64_t sketch_estimates = 0;
    std::uint64_t sketch_serialized_bytes = 0;
  };

  /// Either core may be null (query kind disabled). Non-null cores must
  /// have exactly `num_streams` streams registered.
  FeaturePipeline(std::unique_ptr<Stardust> pattern_core,
                  std::unique_ptr<Stardust> corr_core,
                  std::size_t num_streams,
                  std::size_t store_capacity = kDefaultStoreCapacity);

  std::size_t num_streams() const { return num_streams_; }
  const Stardust* pattern_core() const { return pattern_core_.get(); }
  const Stardust* corr_core() const { return corr_core_.get(); }
  const FeatureStore& store() const { return store_; }

  /// Reconfigures the pipeline for a freshly compiled plan: rebuilds the
  /// per-stream trackers when the aggregate window set changed (backfilled
  /// from `fleet`'s raw history so a query registered mid-stream becomes
  /// evaluable exactly when the seed path would have answered it), and
  /// points the store's level set at the plan's correlation groups.
  void AdoptPlan(const EvalPlan& plan, const FleetAggregateMonitor& fleet);

  /// Feeds one applied tuple through every maintained structure. Must
  /// mirror the fleet append stream exactly (same tuples, same order).
  Status Append(StreamId stream, double value);

  /// Feeds a run of consecutive applied tuples of one stream. Equivalent
  /// to n Append calls bit-for-bit (tracker window-major span push, core
  /// batched runs); the shard's columnar maintenance path.
  Status AppendRun(StreamId stream, const double* values, std::size_t n);

  /// Closes one applied batch: bumps the store epoch and caches the new
  /// aligned correlation features of the touched streams (deduplicated
  /// shard-local ids) so correlator rounds are store hits.
  void FinishBatch(const std::vector<StreamId>& touched);

  // --- Sketch stage (plan measure slots) -------------------------------
  std::size_t num_sketch_slots() const { return sketch_configs_.size(); }
  /// True once the measure of (`stream`, plan slot `slot`) exists and has
  /// seen a full window. Sketches cannot backfill from raw history (their
  /// state is the stream itself), so a freshly registered sketch query
  /// warms up for one window before it evaluates.
  bool SketchReady(StreamId stream, std::size_t slot) const;
  /// The windowed estimate of the slot. Requires SketchReady.
  double SketchEstimate(StreamId stream, std::size_t slot) const;

  // --- Aggregate stage (plan tracker slots) ---------------------------
  bool has_trackers() const { return !tracker_windows_.empty(); }
  /// True once the tracker of `tracker_index` (an EvalPlan tracker slot)
  /// has seen a full window of `stream`.
  bool TrackerReady(StreamId stream, std::size_t tracker_index) const;
  /// Exact aggregate of the tracker slot. Requires TrackerReady.
  double TrackerValue(StreamId stream, std::size_t tracker_index) const;

  // --- Correlation stage ----------------------------------------------
  /// The feature view of (`level`, `stream`) at aligned time `t`: a store
  /// hit when the pipeline cached it, otherwise computed from the
  /// correlation core on the spot (and counted as a store miss). Returns
  /// false when the stream has no usable feature at `t` (not yet
  /// produced, or expired) — the same skip conditions as recomputing from
  /// the core directly. The view's pointers are valid until the next
  /// pipeline call.
  bool CorrelationFeature(std::size_t level, StreamId stream,
                          std::uint64_t t, FeatureStore::View* out);

  Counters counters() const;

  // --- Elastic placement support (engine/shard.cc migration) -----------

  /// Appends one fresh stream slot (cores, store row, tracker, sketch
  /// slots) and returns its local index. `fleet` supplies the aggregate
  /// kind for the new tracker.
  StreamId GrowStream(const FleetAggregateMonitor& fleet);
  /// Resets one stream's derived state to empty — the tombstone half of
  /// a migration. The slot stays valid for later reuse via
  /// RestoreStreamFrom.
  Status ResetStream(StreamId stream, const FleetAggregateMonitor& fleet);
  /// Serializes one stream's slice of every maintained structure:
  /// summarizers, tracker, sketch measures, and store rows.
  Status SaveStreamTo(StreamId stream, Writer* writer) const;
  /// Installs a SaveStreamTo slice into `stream`'s slot. The tracker is
  /// restored bit-exactly when the serialized window set matches this
  /// pipeline's plan, otherwise rebuilt from `fleet`'s raw history;
  /// sketch measures are claimed by config; store rows for levels this
  /// shard no longer monitors are dropped (recomputed on miss).
  Status RestoreStreamFrom(StreamId stream, Reader* reader,
                           const FleetAggregateMonitor& fleet);

  /// Serializes the cores, the store, and the live sketch measures under
  /// the "SDFP" v2 envelope (magic + version + FNV-1a checksum), so a
  /// restored engine resumes pattern/correlation/sketch query evaluation
  /// instead of warming from empty. Trackers are not serialized;
  /// AdoptPlan rebuilds them from the restored fleet's raw history.
  std::string Serialize() const;
  /// Restores a pipeline serialized by Serialize. Core presence must be
  /// compatible: bytes carrying a core this pipeline does not have are
  /// rejected; a missing core in the bytes leaves this pipeline's core
  /// empty (it warms up, the pre-refactor behavior).
  Status Restore(const std::string& bytes);

 private:
  Status RestorePayload(const std::string& payload, std::uint32_t version);
  /// Caches any new aligned feature times of `stream` at store level
  /// `spec` (newest kDefaultStoreCapacity at most).
  void CacheStreamFeatures(const FeatureStore::LevelSpec& spec,
                           StreamId stream);

  /// Backfills one tracker from the fleet's retained raw history (the
  /// AdoptPlan seed path, factored out for migration installs).
  std::unique_ptr<SlidingAggregateTracker> BackfillTracker(
      StreamId stream, const FleetAggregateMonitor& fleet);
  /// True when any level of `core` currently maintains an R*-tree.
  static bool AnyLevelIndexed(const Stardust& core);

  std::size_t num_streams_;
  std::unique_ptr<Stardust> pattern_core_;
  std::unique_ptr<Stardust> corr_core_;
  FeatureStore store_;

  /// Plan aggregate window set (EvalPlan::aggregate_windows) and one
  /// tracker per local stream over it; empty when no aggregate queries.
  std::vector<std::size_t> tracker_windows_;
  std::vector<std::unique_ptr<SlidingAggregateTracker>> trackers_;

  /// Plan sketch slot set (EvalPlan::sketch_slots) and, slot-major, one
  /// lazily created measure per local stream that appended since the slot
  /// existed (bounding memory to the streams actually seen). AdoptPlan
  /// claims existing per-stream measures whose config matches the new
  /// plan's slot — sketch state cannot be rebuilt from raw history, and
  /// claim-by-config is also what re-attaches checkpoint-restored
  /// measures to the first compiled plan.
  std::vector<SketchConfig> sketch_configs_;
  std::vector<std::vector<std::unique_ptr<SketchMeasure>>> sketch_slots_;
  /// Sketch snapshot bytes contributed by Serialize calls (counters()).
  mutable std::uint64_t sketch_serialized_bytes_ = 0;

  std::uint64_t batches_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t znorm_computes_ = 0;
  std::uint64_t tracker_rebuilds_ = 0;

  // Scratch buffers (single-threaded; see header comment).
  std::vector<double> window_scratch_;
  std::vector<double> znorm_scratch_;
  std::vector<double> feature_scratch_;
  std::vector<std::uint64_t> times_scratch_;
};

}  // namespace stardust

#endif  // STARDUST_ENGINE_FEATURE_PIPELINE_H_
