#include "engine/feature_pipeline.h"

#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"
#include "core/level_state.h"
#include "core/summarizer.h"
#include "transform/feature.h"

namespace stardust {

namespace {

constexpr char kPipelineMagic[4] = {'S', 'D', 'F', 'P'};
/// v2 appended the sketch-measure section; v1 snapshots restore with no
/// sketch state (measures warm up from the live stream).
constexpr std::uint32_t kPipelineVersion = 2;
constexpr std::uint32_t kMinPipelineVersion = 1;

}  // namespace

FeaturePipeline::FeaturePipeline(std::unique_ptr<Stardust> pattern_core,
                                 std::unique_ptr<Stardust> corr_core,
                                 std::size_t num_streams,
                                 std::size_t store_capacity)
    : num_streams_(num_streams),
      pattern_core_(std::move(pattern_core)),
      corr_core_(std::move(corr_core)),
      store_(num_streams, store_capacity) {
  SD_CHECK(num_streams_ > 0);
  SD_CHECK(pattern_core_ == nullptr ||
           pattern_core_->num_streams() == num_streams_);
  SD_CHECK(corr_core_ == nullptr ||
           corr_core_->num_streams() == num_streams_);
}

void FeaturePipeline::AdoptPlan(const EvalPlan& plan,
                                const FleetAggregateMonitor& fleet) {
  if (plan.aggregate_windows != tracker_windows_) {
    tracker_windows_ = plan.aggregate_windows;
    trackers_.clear();
    trackers_.resize(num_streams_);
    if (!tracker_windows_.empty()) {
      ++tracker_rebuilds_;
      for (StreamId s = 0; s < num_streams_; ++s) {
        trackers_[s] = BackfillTracker(s, fleet);
      }
    }
  }
  if (plan.sketch_slots != sketch_configs_) {
    // Sketch state cannot be rebuilt from raw history (a sketch *is* its
    // summary of the stream), so slots surviving a plan swap keep their
    // per-stream measures: claim by config equality, drop the rest, and
    // let genuinely new slots warm up lazily.
    std::vector<std::vector<std::unique_ptr<SketchMeasure>>> slots(
        plan.sketch_slots.size());
    for (std::size_t i = 0; i < plan.sketch_slots.size(); ++i) {
      for (std::size_t j = 0; j < sketch_configs_.size(); ++j) {
        if (sketch_configs_[j] == plan.sketch_slots[i] &&
            !sketch_slots_[j].empty()) {
          slots[i] = std::move(sketch_slots_[j]);
          sketch_slots_[j].clear();
          break;
        }
      }
      if (slots[i].empty()) slots[i].resize(num_streams_);
    }
    sketch_configs_ = plan.sketch_slots;
    sketch_slots_ = std::move(slots);
  }
  if (corr_core_ != nullptr) {
    const StardustConfig& cfg = corr_core_->config();
    std::vector<FeatureStore::LevelSpec> specs;
    specs.reserve(plan.correlation.size());
    for (const EvalPlan::CorrelationGroup& group : plan.correlation) {
      specs.push_back({group.level, cfg.LevelWindow(group.level),
                       cfg.coefficients});
    }
    store_.SetLevels(specs);
  }
  if (pattern_core_ != nullptr && pattern_core_->config().index_features) {
    // Standing pattern queries evaluate incrementally against the box
    // threads (QueryCompiledIncremental) and never range-search the level
    // indexes, so no per-tuple index maintenance is needed at all. The
    // mask stays all-false rather than dropping index_features so ad-hoc
    // probes (TopKOnline, full QueryCompiled) can be re-enabled per level
    // via SetIndexedLevels, which rebuilds from the live threads.
    const std::vector<bool> mask(pattern_core_->config().num_levels, false);
    (void)pattern_core_->SetIndexedLevels(mask);
  }
}

Status FeaturePipeline::Append(StreamId stream, double value) {
  SD_DCHECK(stream < num_streams_);
  ++appends_;
  if (!trackers_.empty() && trackers_[stream] != nullptr) {
    trackers_[stream]->Push(value);
  }
  for (std::size_t slot = 0; slot < sketch_slots_.size(); ++slot) {
    std::unique_ptr<SketchMeasure>& measure = sketch_slots_[slot][stream];
    if (measure == nullptr) {
      measure = CreateSketchMeasure(sketch_configs_[slot]);
    }
    measure->Append(value);
  }
  if (pattern_core_ != nullptr) {
    SD_RETURN_NOT_OK(pattern_core_->Append(stream, value));
  }
  if (corr_core_ != nullptr) {
    SD_RETURN_NOT_OK(corr_core_->Append(stream, value));
  }
  return Status::OK();
}

Status FeaturePipeline::AppendRun(StreamId stream, const double* values,
                                  std::size_t n) {
  SD_DCHECK(stream < num_streams_);
  appends_ += n;
  if (!trackers_.empty() && trackers_[stream] != nullptr) {
    trackers_[stream]->PushSpan(values, n);
  }
  for (std::size_t slot = 0; slot < sketch_slots_.size(); ++slot) {
    std::unique_ptr<SketchMeasure>& measure = sketch_slots_[slot][stream];
    if (measure == nullptr) {
      measure = CreateSketchMeasure(sketch_configs_[slot]);
    }
    measure->AppendRun(values, n);
  }
  if (pattern_core_ != nullptr) {
    SD_RETURN_NOT_OK(pattern_core_->AppendRun(stream, values, n));
  }
  if (corr_core_ != nullptr) {
    SD_RETURN_NOT_OK(corr_core_->AppendRun(stream, values, n));
  }
  return Status::OK();
}

void FeaturePipeline::FinishBatch(const std::vector<StreamId>& touched) {
  ++batches_;
  store_.BumpEpoch();
  if (corr_core_ == nullptr) return;
  for (const FeatureStore::LevelSpec& spec : store_.levels()) {
    for (StreamId stream : touched) {
      SD_DCHECK(stream < num_streams_);
      CacheStreamFeatures(spec, stream);
    }
  }
}

void FeaturePipeline::CacheStreamFeatures(const FeatureStore::LevelSpec& spec,
                                          StreamId stream) {
  const StreamSummarizer& summarizer = corr_core_->summarizer(stream);
  const LevelThread& thread = summarizer.thread(spec.level);
  if (thread.empty()) return;
  const std::uint64_t stride = thread.stride();
  std::uint64_t latest_cached = 0;
  const bool has_cached = store_.Latest(spec.level, stream, &latest_cached);

  // Walk aligned feature times newest-first until the already-cached
  // frontier (or the ring capacity), then insert oldest-first to respect
  // the store's strictly-increasing time order.
  times_scratch_.clear();
  std::uint64_t t = thread.last_time();
  while ((!has_cached || t > latest_cached) &&
         times_scratch_.size() < store_.capacity()) {
    times_scratch_.push_back(t);
    if (t < stride) break;
    t -= stride;
  }
  for (auto it = times_scratch_.rbegin(); it != times_scratch_.rend(); ++it) {
    const std::uint64_t feature_time = *it;
    const FeatureBox* box = thread.Find(feature_time);
    if (box == nullptr) continue;  // expired from the thread
    if (!summarizer.GetWindow(feature_time, spec.window, &window_scratch_)
             .ok()) {
      continue;  // raw window slid out of history
    }
    znorm_scratch_.resize(spec.window);
    double mean = 0.0;
    double norm2 = 0.0;
    ZNormalizeTo(window_scratch_.data(), spec.window, znorm_scratch_.data(),
                 &mean, &norm2);
    ++znorm_computes_;
    const Point& feature = box->extent.lo();
    SD_DCHECK(feature.size() == spec.dims);
    store_.Put(spec.level, stream, feature_time, feature.data(),
               znorm_scratch_.data(), mean, norm2);
  }
}

bool FeaturePipeline::SketchReady(StreamId stream, std::size_t slot) const {
  SD_DCHECK(stream < num_streams_);
  SD_DCHECK(slot < sketch_slots_.size());
  const std::unique_ptr<SketchMeasure>& measure = sketch_slots_[slot][stream];
  return measure != nullptr && measure->Ready();
}

double FeaturePipeline::SketchEstimate(StreamId stream,
                                       std::size_t slot) const {
  SD_DCHECK(SketchReady(stream, slot));
  return sketch_slots_[slot][stream]->Estimate();
}

bool FeaturePipeline::TrackerReady(StreamId stream,
                                   std::size_t tracker_index) const {
  SD_DCHECK(stream < num_streams_);
  SD_DCHECK(tracker_index < tracker_windows_.size());
  return trackers_[stream] != nullptr &&
         trackers_[stream]->Ready(tracker_index);
}

double FeaturePipeline::TrackerValue(StreamId stream,
                                     std::size_t tracker_index) const {
  SD_DCHECK(TrackerReady(stream, tracker_index));
  return trackers_[stream]->Current(tracker_index);
}

bool FeaturePipeline::CorrelationFeature(std::size_t level, StreamId stream,
                                         std::uint64_t t,
                                         FeatureStore::View* out) {
  if (store_.Find(level, stream, t, out)) return true;
  if (corr_core_ == nullptr) return false;
  const StardustConfig& cfg = corr_core_->config();
  if (level >= cfg.num_levels || stream >= num_streams_) return false;
  const StreamSummarizer& summarizer = corr_core_->summarizer(stream);
  const FeatureBox* box = summarizer.thread(level).Find(t);
  if (box == nullptr) return false;
  const std::size_t window = cfg.LevelWindow(level);
  if (!summarizer.GetWindow(t, window, &window_scratch_).ok()) return false;
  // Fallback compute into scratch only: the store requires strictly
  // increasing put times, and a lagging correlator round may ask for a
  // time older than the cached frontier.
  znorm_scratch_.resize(window);
  double mean = 0.0;
  double norm2 = 0.0;
  ZNormalizeTo(window_scratch_.data(), window, znorm_scratch_.data(), &mean,
               &norm2);
  ++znorm_computes_;
  const Point& feature = box->extent.lo();
  feature_scratch_.assign(feature.begin(), feature.end());
  out->time = t;
  out->feature = feature_scratch_.data();
  out->znormed = znorm_scratch_.data();
  out->dims = feature_scratch_.size();
  out->window = window;
  out->mean = mean;
  out->norm2 = norm2;
  return true;
}

std::unique_ptr<SlidingAggregateTracker> FeaturePipeline::BackfillTracker(
    StreamId stream, const FleetAggregateMonitor& fleet) {
  auto tracker = std::make_unique<SlidingAggregateTracker>(
      fleet.config().aggregate, tracker_windows_);
  // Backfill from the retained raw tail so a query registered mid-stream
  // becomes answerable exactly when the seed path's Algorithm-2
  // verification would have been (window fully inside retained history).
  const RingBuffer<double>& raw =
      fleet.monitor(stream).stardust().summarizer(0).raw();
  const std::uint64_t first = raw.first_position();
  const std::size_t count = static_cast<std::size_t>(raw.size() - first);
  raw.CopyWindow(first, count, &window_scratch_);
  tracker->PushSpan(window_scratch_.data(), count);
  return tracker;
}

bool FeaturePipeline::AnyLevelIndexed(const Stardust& core) {
  for (std::size_t level = 0; level < core.config().num_levels; ++level) {
    if (core.level_indexed(level)) return true;
  }
  return false;
}

StreamId FeaturePipeline::GrowStream(const FleetAggregateMonitor& fleet) {
  const StreamId local = static_cast<StreamId>(num_streams_);
  ++num_streams_;
  if (pattern_core_ != nullptr) {
    const StreamId id = pattern_core_->AddStream();
    SD_CHECK(id == local);
  }
  if (corr_core_ != nullptr) {
    const StreamId id = corr_core_->AddStream();
    SD_CHECK(id == local);
  }
  store_.Grow(num_streams_);
  if (!trackers_.empty() || !tracker_windows_.empty()) {
    trackers_.resize(num_streams_);
    if (!tracker_windows_.empty()) {
      trackers_[local] = std::make_unique<SlidingAggregateTracker>(
          fleet.config().aggregate, tracker_windows_);
    }
  }
  for (auto& per_stream : sketch_slots_) per_stream.resize(num_streams_);
  return local;
}

Status FeaturePipeline::ResetStream(StreamId stream,
                                    const FleetAggregateMonitor& fleet) {
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  if (pattern_core_ != nullptr) {
    SD_RETURN_NOT_OK(pattern_core_->ResetStream(stream));
  }
  if (corr_core_ != nullptr) {
    SD_RETURN_NOT_OK(corr_core_->ResetStream(stream));
  }
  if (!trackers_.empty()) {
    trackers_[stream] =
        tracker_windows_.empty()
            ? nullptr
            : std::make_unique<SlidingAggregateTracker>(
                  fleet.config().aggregate, tracker_windows_);
  }
  for (auto& per_stream : sketch_slots_) per_stream[stream] = nullptr;
  store_.ClearStream(stream);
  store_.TouchStream(stream);
  return Status::OK();
}

Status FeaturePipeline::SaveStreamTo(StreamId stream, Writer* writer) const {
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  writer->U8(pattern_core_ != nullptr ? 1 : 0);
  if (pattern_core_ != nullptr) {
    pattern_core_->summarizer(stream).SaveTo(writer);
  }
  writer->U8(corr_core_ != nullptr ? 1 : 0);
  if (corr_core_ != nullptr) {
    corr_core_->summarizer(stream).SaveTo(writer);
  }
  const SlidingAggregateTracker* tracker =
      trackers_.empty() ? nullptr : trackers_[stream].get();
  writer->U8(tracker != nullptr ? 1 : 0);
  if (tracker != nullptr) {
    writer->U64(tracker->num_windows());
    for (std::size_t i = 0; i < tracker->num_windows(); ++i) {
      writer->U64(tracker->window(i));
    }
    tracker->SaveTo(writer);
  }
  writer->U64(sketch_configs_.size());
  for (std::size_t slot = 0; slot < sketch_configs_.size(); ++slot) {
    sketch_configs_[slot].SaveTo(writer);
    const SketchMeasure* measure = sketch_slots_[slot][stream].get();
    writer->U8(measure != nullptr ? 1 : 0);
    if (measure != nullptr) measure->SaveTo(writer);
  }
  store_.SaveStreamTo(stream, writer);
  return Status::OK();
}

Status FeaturePipeline::RestoreStreamFrom(StreamId stream, Reader* reader,
                                          const FleetAggregateMonitor& fleet) {
  if (stream >= num_streams_) {
    return Status::InvalidArgument("unknown stream");
  }
  std::uint8_t has_pattern = 0;
  SD_RETURN_NOT_OK(reader->U8(&has_pattern));
  if (has_pattern != 0) {
    if (pattern_core_ == nullptr) {
      return Status::InvalidArgument(
          "stream slice carries a pattern core this shard does not run");
    }
    SD_RETURN_NOT_OK(
        pattern_core_->mutable_summarizer(stream)->RestoreFrom(reader));
    if (AnyLevelIndexed(*pattern_core_)) {
      SD_RETURN_NOT_OK(pattern_core_->RebuildIndexes());
    }
  }
  std::uint8_t has_corr = 0;
  SD_RETURN_NOT_OK(reader->U8(&has_corr));
  if (has_corr != 0) {
    if (corr_core_ == nullptr) {
      return Status::InvalidArgument(
          "stream slice carries a correlation core this shard does not run");
    }
    SD_RETURN_NOT_OK(
        corr_core_->mutable_summarizer(stream)->RestoreFrom(reader));
    if (AnyLevelIndexed(*corr_core_)) {
      SD_RETURN_NOT_OK(corr_core_->RebuildIndexes());
    }
  }
  std::uint8_t has_tracker = 0;
  SD_RETURN_NOT_OK(reader->U8(&has_tracker));
  if (has_tracker != 0) {
    std::uint64_t num_windows = 0;
    SD_RETURN_NOT_OK(reader->U64(&num_windows));
    if (num_windows > reader->remaining() / 8) {
      return Status::InvalidArgument("stream slice tracker count corrupt");
    }
    std::vector<std::size_t> windows(num_windows);
    for (std::uint64_t i = 0; i < num_windows; ++i) {
      std::uint64_t w = 0;
      SD_RETURN_NOT_OK(reader->U64(&w));
      if (w == 0) {
        return Status::InvalidArgument("stream slice tracker window zero");
      }
      windows[i] = static_cast<std::size_t>(w);
    }
    // Consume the tracker bytes with a tracker of the serialized shape;
    // keep it only when it matches this shard's plan window set (then
    // the restore is bit-exact). A mismatch (plan skew between shards)
    // falls through to the history backfill below.
    auto restored = std::make_unique<SlidingAggregateTracker>(
        fleet.config().aggregate, windows);
    SD_RETURN_NOT_OK(restored->RestoreFrom(reader));
    if (!tracker_windows_.empty()) {
      if (trackers_.size() < num_streams_) trackers_.resize(num_streams_);
      trackers_[stream] = windows == tracker_windows_
                              ? std::move(restored)
                              : BackfillTracker(stream, fleet);
    }
  } else if (!tracker_windows_.empty()) {
    if (trackers_.size() < num_streams_) trackers_.resize(num_streams_);
    trackers_[stream] = BackfillTracker(stream, fleet);
  }
  std::uint64_t num_slots = 0;
  SD_RETURN_NOT_OK(reader->U64(&num_slots));
  if (num_slots > reader->remaining() / 66) {
    return Status::InvalidArgument("stream slice sketch count corrupt");
  }
  for (std::uint64_t i = 0; i < num_slots; ++i) {
    SketchConfig config;
    SD_RETURN_NOT_OK(config.RestoreFrom(reader));
    SD_RETURN_NOT_OK(config.Validate());
    std::uint8_t present = 0;
    SD_RETURN_NOT_OK(reader->U8(&present));
    if (present == 0) continue;
    auto measure = CreateSketchMeasure(config);
    SD_RETURN_NOT_OK(measure->RestoreFrom(reader));
    // Claim by config: a slot this shard's plan no longer carries is
    // consumed and dropped (the measure warms up if re-registered).
    for (std::size_t slot = 0; slot < sketch_configs_.size(); ++slot) {
      if (sketch_configs_[slot] == config) {
        sketch_slots_[slot][stream] = std::move(measure);
        break;
      }
    }
  }
  SD_RETURN_NOT_OK(store_.RestoreStreamFrom(stream, reader));
  store_.TouchStream(stream);
  return Status::OK();
}

FeaturePipeline::Counters FeaturePipeline::counters() const {
  Counters c;
  c.batches = batches_;
  c.appends = appends_;
  c.znorm_computes = znorm_computes_;
  c.tracker_rebuilds = tracker_rebuilds_;
  c.store_puts = store_.puts();
  c.store_hits = store_.hits();
  c.store_misses = store_.misses();
  c.store_epoch = store_.epoch();
  for (const auto& per_stream : sketch_slots_) {
    for (const auto& measure : per_stream) {
      if (measure == nullptr) continue;
      c.sketch_appends += measure->appends();
      c.sketch_merges += measure->merges();
      c.sketch_estimates += measure->estimate_calls();
    }
  }
  c.sketch_serialized_bytes = sketch_serialized_bytes_;
  return c;
}

std::string FeaturePipeline::Serialize() const {
  Writer payload;
  payload.U8(pattern_core_ != nullptr ? 1 : 0);
  if (pattern_core_ != nullptr) {
    payload.U64(num_streams_);
    for (StreamId s = 0; s < num_streams_; ++s) {
      pattern_core_->summarizer(s).SaveTo(&payload);
    }
  }
  payload.U8(corr_core_ != nullptr ? 1 : 0);
  if (corr_core_ != nullptr) {
    payload.U64(num_streams_);
    for (StreamId s = 0; s < num_streams_; ++s) {
      corr_core_->summarizer(s).SaveTo(&payload);
    }
  }
  store_.SaveTo(&payload);

  // v2 sketch section: per slot, the config plus every live (stream,
  // measure) pair, in ascending stream order.
  const std::size_t before_sketch = payload.buffer().size();
  payload.U64(sketch_configs_.size());
  for (std::size_t slot = 0; slot < sketch_configs_.size(); ++slot) {
    sketch_configs_[slot].SaveTo(&payload);
    std::uint64_t present = 0;
    for (const auto& measure : sketch_slots_[slot]) {
      present += measure != nullptr ? 1 : 0;
    }
    payload.U64(present);
    for (StreamId s = 0; s < num_streams_; ++s) {
      if (sketch_slots_[slot][s] == nullptr) continue;
      payload.U64(s);
      sketch_slots_[slot][s]->SaveTo(&payload);
    }
  }
  sketch_serialized_bytes_ += payload.buffer().size() - before_sketch;

  Writer envelope;
  envelope.Bytes(kPipelineMagic, sizeof(kPipelineMagic));
  envelope.U32(kPipelineVersion);
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());
  return std::move(envelope.TakeBuffer());
}

Status FeaturePipeline::Restore(const std::string& bytes) {
  if (bytes.size() < sizeof(kPipelineMagic) + 4 + 8) {
    return Status::InvalidArgument("feature pipeline snapshot too small");
  }
  if (std::memcmp(bytes.data(), kPipelineMagic, sizeof(kPipelineMagic)) !=
      0) {
    return Status::InvalidArgument(
        "not a feature pipeline snapshot (bad magic)");
  }
  Reader header(bytes);
  {
    std::uint8_t b = 0;
    for (std::size_t i = 0; i < sizeof(kPipelineMagic); ++i) {
      SD_RETURN_NOT_OK(header.U8(&b));
    }
  }
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SD_RETURN_NOT_OK(header.U32(&version));
  SD_RETURN_NOT_OK(header.U64(&checksum));
  if (version < kMinPipelineVersion || version > kPipelineVersion) {
    return Status::InvalidArgument(
        "unsupported feature pipeline version " + std::to_string(version));
  }
  const std::string payload = bytes.substr(sizeof(kPipelineMagic) + 12);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument(
        "feature pipeline snapshot checksum mismatch");
  }
  return RestorePayload(payload, version);
}

Status FeaturePipeline::RestorePayload(const std::string& payload,
                                       std::uint32_t version) {
  Reader reader(payload);
  std::uint8_t has_pattern = 0;
  SD_RETURN_NOT_OK(reader.U8(&has_pattern));
  if (has_pattern != 0) {
    if (pattern_core_ == nullptr) {
      return Status::InvalidArgument(
          "snapshot carries a pattern core this engine does not run");
    }
    std::uint64_t streams = 0;
    SD_RETURN_NOT_OK(reader.U64(&streams));
    if (streams != num_streams_) {
      return Status::InvalidArgument(
          "feature pipeline stream count mismatch");
    }
    for (StreamId s = 0; s < num_streams_; ++s) {
      SD_RETURN_NOT_OK(
          pattern_core_->mutable_summarizer(s)->RestoreFrom(&reader));
    }
    SD_RETURN_NOT_OK(pattern_core_->RebuildIndexes());
  }
  std::uint8_t has_corr = 0;
  SD_RETURN_NOT_OK(reader.U8(&has_corr));
  if (has_corr != 0) {
    if (corr_core_ == nullptr) {
      return Status::InvalidArgument(
          "snapshot carries a correlation core this engine does not run");
    }
    std::uint64_t streams = 0;
    SD_RETURN_NOT_OK(reader.U64(&streams));
    if (streams != num_streams_) {
      return Status::InvalidArgument(
          "feature pipeline stream count mismatch");
    }
    for (StreamId s = 0; s < num_streams_; ++s) {
      SD_RETURN_NOT_OK(
          corr_core_->mutable_summarizer(s)->RestoreFrom(&reader));
    }
    SD_RETURN_NOT_OK(corr_core_->RebuildIndexes());
  }
  SD_RETURN_NOT_OK(store_.RestoreFrom(&reader));
  if (version >= 2) {
    std::uint64_t num_slots = 0;
    SD_RETURN_NOT_OK(reader.U64(&num_slots));
    // One config is 65 bytes followed by a present count.
    if (num_slots > reader.remaining() / 73) {
      return Status::InvalidArgument(
          "feature pipeline sketch slot count out of range");
    }
    std::vector<SketchConfig> configs;
    std::vector<std::vector<std::unique_ptr<SketchMeasure>>> slots;
    configs.reserve(num_slots);
    slots.reserve(num_slots);
    for (std::uint64_t i = 0; i < num_slots; ++i) {
      SketchConfig config;
      SD_RETURN_NOT_OK(config.RestoreFrom(&reader));
      SD_RETURN_NOT_OK(config.Validate());
      std::vector<std::unique_ptr<SketchMeasure>> per_stream(num_streams_);
      std::uint64_t present = 0;
      SD_RETURN_NOT_OK(reader.U64(&present));
      if (present > num_streams_) {
        return Status::InvalidArgument(
            "feature pipeline sketch stream count out of range");
      }
      std::uint64_t last_stream = 0;
      for (std::uint64_t j = 0; j < present; ++j) {
        std::uint64_t stream = 0;
        SD_RETURN_NOT_OK(reader.U64(&stream));
        // Serialize emits ascending stream ids; anything else is corrupt.
        if (stream >= num_streams_ || (j > 0 && stream <= last_stream)) {
          return Status::InvalidArgument(
              "feature pipeline sketch stream id out of order");
        }
        last_stream = stream;
        auto measure = CreateSketchMeasure(config);
        SD_RETURN_NOT_OK(measure->RestoreFrom(&reader));
        per_stream[static_cast<std::size_t>(stream)] = std::move(measure);
      }
      configs.push_back(config);
      slots.push_back(std::move(per_stream));
    }
    sketch_configs_ = std::move(configs);
    sketch_slots_ = std::move(slots);
  } else {
    sketch_configs_.clear();
    sketch_slots_.clear();
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "feature pipeline snapshot has trailing bytes");
  }
  return Status::OK();
}

}  // namespace stardust
