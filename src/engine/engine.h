// IngestEngine: sharded multi-threaded ingestion for the fleet deployment
// of Section 2.1 ("a system that has M input streams"). The M streams are
// partitioned across N worker shards by an epoch-versioned placement
// table (engine/placement.h; the default layout is the historical stream
// id modulo the shard count); each shard owns a private Stardust +
// monitor set and drains bounded lock-free SPSC rings filled by producer
// threads via Post/PostBatch. Placement is elastic: MigrateStream moves
// one stream's full state between shards while ingestion continues (no
// tuple loss, no duplicate or missing alerts), and an optional background
// rebalancer drives migrations off the per-shard load signal. Overload
// behavior is an explicit policy (block / drop-newest / drop-oldest,
// with drop counters), and cross-shard reads return coherent per-shard
// snapshots stamped with sequence epochs. See docs/ENGINE.md.
//
// Layered on top is the continuous-query subsystem (src/query,
// docs/QUERIES.md): queries registered at runtime through queries() are
// evaluated while ingestion is live — aggregate and pattern queries
// inline by the shard workers, correlation queries by a dedicated
// correlator thread aligning per-shard feature snapshots — and every hit
// is delivered through the alert bus (alerts()) to registered sinks.
#ifndef STARDUST_ENGINE_ENGINE_H_
#define STARDUST_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/config.h"
#include "core/fleet_monitor.h"
#include "engine/checkpoint.h"
#include "engine/engine_config.h"
#include "engine/metrics.h"
#include "engine/placement.h"
#include "engine/shard.h"
#include "query/alert_bus.h"
#include "query/correlation_index.h"
#include "query/eval_plan.h"
#include "query/probe_pool.h"
#include "query/registry.h"
#include "stream/threshold.h"

namespace stardust {

/// Thread-safe ingestion facade over a sharded fleet of aggregate
/// monitors. Producer threads call Post/PostBatch concurrently (each
/// distinct thread is auto-registered, up to EngineConfig::max_producers);
/// reads may come from any thread at any time.
class IngestEngine {
 public:
  /// Builds the engine and starts its worker threads. `config` and
  /// `thresholds` follow FleetAggregateMonitor::Create; the effective
  /// shard count is min(engine_config.num_shards, num_streams).
  ///
  /// A non-empty `restore_dir` resumes from the newest complete
  /// checkpoint in that directory (see Checkpoint): every shard's monitor
  /// state, alarm counters, epoch stamps, and the query registry continue
  /// the pre-crash lineage. The requested shape (stream count, shard
  /// count, windows, thresholds) must match the checkpointed one.
  /// NotFound when the directory holds no complete checkpoint.
  static Result<std::unique_ptr<IngestEngine>> Create(
      const StardustConfig& config, std::vector<WindowThreshold> thresholds,
      std::size_t num_streams, const EngineConfig& engine_config = {},
      const std::string& restore_dir = {});

  /// Stops and joins the workers (as Stop()).
  ~IngestEngine();

  IngestEngine(const IngestEngine&) = delete;
  IngestEngine& operator=(const IngestEngine&) = delete;

  std::size_t num_streams() const { return num_streams_; }
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_windows() const {
    // Create never constructs a shardless engine; guard anyway so a
    // hypothetical zero-shard instance fails loudly instead of indexing
    // an empty vector.
    SD_CHECK(!shards_.empty());
    return shards_[0]->num_windows();
  }
  const EngineConfig& engine_config() const { return config_; }

  /// Shard that owns a stream per the live placement table (a fresh
  /// engine routes stream id modulo shard count; migrations re-map).
  std::size_t ShardOf(StreamId stream) const {
    SD_DCHECK(!shards_.empty());
    return placement_->ShardOf(stream);
  }
  /// The routing table itself (epoch, full stream→shard map); every
  /// placement decision in the engine goes through it.
  const PlacementTable& placement() const { return *placement_; }

  // --- Producer side ----------------------------------------------------
  /// Enqueues one value. Under kBlock this waits for queue space; under
  /// the drop policies it returns OK and accounts the loss in metrics().
  Status Post(StreamId stream, double value);
  /// Enqueues many (stream, value) tuples with one producer-slot lookup.
  Status PostBatch(std::span<const StreamValue> tuples);
  /// Non-blocking Post for event-loop producers (the network front door,
  /// src/net): a full queue under kBlock returns kWouldBlock instead of
  /// spinning, so the caller can pause its transport and retry. Status
  /// errors are the same precondition/argument failures as Post.
  Result<PostOutcome> TryPost(StreamId stream, double value);

  /// Blocks until everything posted before the call has been applied (or
  /// reclaimed by kDropOldest) and every alert those applies published
  /// has been handed to the sinks. Returns the first worker error, if
  /// any.
  Status Flush();
  /// Stops accepting posts, drains every queue, joins the workers, and
  /// drains + stops the alert bus. Idempotent. Producers must be
  /// quiescent when this is called.
  Status Stop();
  /// Quiesce/resume the workers without tearing anything down. While
  /// paused, queues fill and overload policies engage.
  void Pause();
  void Resume();

  // --- Continuous queries (src/query, docs/QUERIES.md) -------------------
  /// The engine's query registry: register/unregister continuous queries
  /// from any thread while ingestion is live.
  QueryRegistry& queries() { return *registry_; }
  const QueryRegistry& queries() const { return *registry_; }
  /// The alert bus delivering query hits; add sinks here.
  AlertBus& alerts() { return *alert_bus_; }
  const AlertBus& alerts() const { return *alert_bus_; }
  /// Convenience forwarders.
  Result<QueryId> RegisterQuery(QuerySpec spec) {
    return registry_->Register(std::move(spec));
  }
  Status UnregisterQuery(QueryId id) { return registry_->Unregister(id); }

  // --- Cross-shard reads ------------------------------------------------
  /// Alarm counters of one stream, summed over its windows.
  AlarmStats StreamTotal(StreamId stream) const;
  /// Counters summed over the whole fleet; `stamps` (optional) receives
  /// one sequence-stamped epoch per shard identifying the exact state
  /// each shard contributed.
  AlarmStats FleetTotal(std::vector<ShardStamp>* stamps = nullptr) const;
  /// Streams (global ids, ascending) whose verified aggregate currently
  /// exceeds the threshold of the given window.
  Result<std::vector<StreamId>> CurrentlyAlarming(
      std::size_t window_index,
      std::vector<ShardStamp>* stamps = nullptr) const;
  /// Values ever applied to one stream's monitor.
  std::uint64_t StreamAppendCount(StreamId stream) const;

  const EngineMetrics& metrics() const { return *metrics_; }
  std::vector<ShardMetricsSnapshot> ShardMetrics() const;
  /// One-line JSON over metrics() + ShardMetrics() (docs/ENGINE.md).
  std::string MetricsJson() const;

  // --- Checkpoint / restore ---------------------------------------------
  /// Writes an epoch-stamped checkpoint of every shard plus the query
  /// registry into `dir` (created if missing) without stopping ingestion:
  /// each shard is serialized under its own state mutex, so producers
  /// keep posting and other shards keep draining throughout. All files
  /// are written atomically (tmp + fsync + rename) with the manifest last
  /// as the commit point; a crash mid-checkpoint leaves the previous
  /// checkpoint intact. On success the directory is garbage-collected
  /// down to the current and previous checkpoints. Serialized against
  /// itself and against the background checkpoint thread. Each shard's
  /// feature pipeline (pattern and correlation query cores + feature
  /// store) is checkpointed alongside its fleet (manifest v3, one
  /// `features-<i>-ck<seq>.feat` per shard), taken under the same mutex
  /// hold so both describe one point in the apply sequence; restoring a
  /// pre-v3 checkpoint leaves the cores empty and they warm up
  /// (docs/FEATURES.md, "Checkpoint semantics").
  Status Checkpoint(const std::string& dir);
  /// Sequence number of the last successful Checkpoint; 0 if none yet.
  std::uint64_t last_checkpoint_seq() const {
    return last_checkpoint_seq_.load(std::memory_order_acquire);
  }

  /// Attaches the network tier's state to the checkpoint cycle: every
  /// Checkpoint() calls `provider` (on the checkpointing thread) and
  /// persists the returned bytes as the manifest v4 net-state file
  /// (net/alert_hub.h Serialize). An empty provider (or empty bytes)
  /// writes no net file. Safe to call while checkpoints run.
  void SetNetStateProvider(std::function<std::string()> provider);
  /// Net-state bytes recovered by a restoring Create, for the server to
  /// hand to its AlertHub; empty when the checkpoint carried none.
  const std::string& restored_net_state() const {
    return restored_net_state_;
  }

  /// Runs one correlator round synchronously on the caller's thread —
  /// deterministic-replay and test support (pair with a large
  /// QueryConfig::correlator_period_ms so the background thread stays
  /// quiet). Serialized against the background correlator.
  void TriggerCorrelatorRound();

  // --- Elastic placement (docs/ENGINE.md, "Elastic sharding") -----------
  /// Moves `stream`'s entire per-stream state (monitor, summarizers,
  /// sliding trackers, sketch slots, feature-store rows, alert edge
  /// state) from shard `from` to shard `to` while ingestion continues.
  /// The protocol: the target starts parking the stream's tuples, the
  /// placement epoch flips so producers route to the target, the source
  /// drains everything routed to it under the old epoch, the state moves
  /// under both the source's state mutex and the correlator round lock,
  /// and the parked tuples apply in arrival order — no tuple is lost, no
  /// alert fires twice or goes missing. Serialized against itself, the
  /// rebalancer, and Checkpoint. FailedPrecondition when `from` no
  /// longer owns the stream, either shard is paused, or the engine is
  /// stopped.
  Status MigrateStream(StreamId stream, std::size_t from, std::size_t to);
  /// Convenience overload sourcing from the stream's current owner.
  Status MigrateStream(StreamId stream, std::size_t to) {
    return MigrateStream(stream, placement_->ShardOf(stream), to);
  }
  /// Serialized slice of one stream's live state (the ExtractStream
  /// bytes without the extraction) — the migration-equivalence oracle:
  /// two engines that applied the same tuples must produce identical
  /// slices for every stream, however their placements diverged.
  Status DebugStreamState(StreamId stream, std::string* blob) const;

 private:
  IngestEngine(const EngineConfig& config, std::size_t num_streams);

  /// Body of the background checkpoint thread (EngineConfig::
  /// checkpoint_period_ms).
  void CheckpointLoop();
  void StartCheckpointThread();
  void StopCheckpointThread();

  /// Body of the correlator thread: every correlator_period_ms, align all
  /// shards on a common feature time and run the registered correlation
  /// queries over the combined feature set (docs/QUERIES.md).
  void CorrelatorLoop();
  void RunCorrelatorRound();
  void StartCorrelatorThread();
  void StopCorrelatorThread();

  /// Persistent per-level correlator state (see RunCorrelatorRound): the
  /// incremental candidate index over the level's feature points, the
  /// global-stream -> slot mapping behind it, per-round scratch, and the
  /// cached per-shard clock summaries the dirty-epoch skip path reuses.
  struct CorrLevelState {
    std::unique_ptr<CorrelationIndex> index;
    /// Grid cell the index was created with; a plan change that moves
    /// the derived cell rebuilds the index.
    double cell = 0.0;
    // Slot table: one dense slot per global stream ever seen live at
    // this level. Erased slots return to the free list.
    std::unordered_map<StreamId, std::size_t> slot_of;
    std::vector<StreamId> stream_of;        // slot -> global id
    std::vector<char> live;                 // slot currently indexed
    std::vector<std::uint64_t> seen_round;  // round serial last present
    std::vector<std::size_t> free_slots;
    std::uint64_t round_serial = 0;
    // Slot-indexed columns of the current round (features is slot × dims,
    // znormed slot × window).
    std::vector<double> features;
    std::vector<double> znormed;
    std::vector<std::size_t> present;  // this round's slots, by global id
    // Per-shard gather state: cached clock summaries (refreshed only
    // when the shard's store saw a put since `clock_epochs[i]`) and the
    // reusable flat gather buffers.
    std::vector<std::uint64_t> clock_epochs;
    std::vector<Shard::ClockSummary> clocks;
    std::vector<Shard::CorrelationGather> gathers;
  };
  /// Evaluates one level group of the compiled plan; returns false on a
  /// gather failure (the caller counts it and moves to the next group
  /// without committing this level's round time). `round_counted` makes
  /// correlator_rounds count once per RunCorrelatorRound invocation.
  bool RunCorrelatorGroup(const EvalPlan::CorrelationGroup& group,
                          bool* round_counted, std::uint64_t* round);

  /// Producer slot of the calling thread, registering it on first use.
  Result<std::size_t> ProducerSlot();

  /// Blocks until no producer is inside a routing window it entered
  /// before the call — after a placement flip this guarantees every
  /// producer's next push routes by the new epoch (see producer_seq_).
  void WaitProducersQuiescent() const;

  /// Body of the background rebalancer thread (EngineConfig::
  /// rebalance_period_ms): samples per-shard and per-stream append
  /// deltas each period and migrates the hottest stream off the hottest
  /// shard onto the coldest when the skew clears the hysteresis bounds.
  void RebalanceLoop();
  void StartRebalanceThread();
  void StopRebalanceThread();

  const std::uint64_t engine_id_;
  const EngineConfig config_;
  const std::size_t num_streams_;
  /// Fleet monitors' Stardust configuration (plan compilation context
  /// for the correlator); set once in Create.
  StardustConfig core_config_;
  std::unique_ptr<EngineMetrics> metrics_;
  std::unique_ptr<QueryRegistry> registry_;
  std::unique_ptr<AlertBus> alert_bus_;
  /// The stream→shard routing table; set in Create before any thread
  /// starts, republished (copy-on-write) by migrations.
  std::unique_ptr<PlacementTable> placement_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint32_t> next_producer_{0};
  /// Per-producer routing windows (sized max_producers): a producer
  /// bumps its counter to odd, loads the placement snapshot, pushes,
  /// then bumps back to even — all seq_cst. A migration that flipped
  /// the placement spins until every counter is even or has moved, so
  /// no push routed by the superseded epoch can land after the source
  /// drain barrier is read.
  std::unique_ptr<std::atomic<std::uint64_t>[]> producer_seq_;

  /// Serializes migrations (manual calls, the rebalancer) against each
  /// other and against Checkpoint's placement capture. Always acquired
  /// after checkpoint_mu_ when both are held.
  mutable std::mutex migration_mu_;

  std::mutex rebalance_cv_mu_;
  std::condition_variable rebalance_cv_;
  bool rebalance_stop_ = false;
  std::thread rebalance_thread_;

  /// Serializes Checkpoint() calls (manual and background) and guards the
  /// sequence counters and the net-state provider below.
  std::mutex checkpoint_mu_;
  std::uint64_t next_checkpoint_seq_ = 1;
  std::function<std::string()> net_state_provider_;
  /// Set once during a restoring Create, before any thread starts.
  std::string restored_net_state_;
  std::atomic<std::uint64_t> last_checkpoint_seq_{0};

  std::mutex checkpoint_cv_mu_;
  std::condition_variable checkpoint_cv_;
  bool checkpoint_stop_ = false;
  std::thread checkpoint_thread_;

  // --- Correlator state (guarded by correlator_round_mu_) ---------------
  std::mutex correlator_cv_mu_;
  std::condition_variable correlator_cv_;
  bool correlator_stop_ = false;
  std::thread correlator_thread_;
  /// Serializes correlator rounds (the background thread against
  /// TriggerCorrelatorRound) and guards the round state below.
  std::mutex correlator_round_mu_;
  /// Compiled plan of the registry snapshot the correlator last saw;
  /// recompiled only when the registry version moves.
  std::shared_ptr<const EvalPlan> corr_plan_;
  std::uint64_t corr_plan_version_ = 0;
  /// Last evaluated common feature time per monitored level; rounds where
  /// it did not advance are skipped. Committed only after a level group
  /// evaluated successfully, so a failed gather retries the same round.
  std::unordered_map<std::size_t, std::uint64_t> corr_last_time_;
  /// Persistent per-level indexes and scratch; pruned when a plan change
  /// drops a level.
  std::unordered_map<std::size_t, CorrLevelState> corr_levels_;
  /// Probe-phase worker pool (created only when correlation is enabled;
  /// zero workers on single-core hosts — Run degrades to inline).
  std::unique_ptr<ProbePool> probe_pool_;
  /// Rising-edge state: pairs (global a < global b) currently within each
  /// query's radius; alerts fire when a pair enters the set.
  std::unordered_map<QueryId, std::set<std::pair<StreamId, StreamId>>>
      corr_active_pairs_;
};

}  // namespace stardust

#endif  // STARDUST_ENGINE_ENGINE_H_
