#include "engine/placement.h"

#include <cstdio>
#include <utility>

#include "common/check.h"

namespace stardust {

PlacementTable::PlacementTable(std::size_t num_streams,
                               std::size_t num_shards)
    : num_streams_(num_streams), num_shards_(num_shards) {
  SD_CHECK(num_shards > 0);
  auto snap = std::make_unique<Snapshot>();
  snap->epoch = 0;
  snap->num_shards = static_cast<std::uint32_t>(num_shards);
  snap->shard_of.resize(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    snap->shard_of[s] = static_cast<std::uint32_t>(s % num_shards);
  }
  Publish(std::move(snap));
}

PlacementTable::~PlacementTable() = default;

void PlacementTable::Publish(std::unique_ptr<Snapshot> next) {
  std::lock_guard<std::mutex> lock(mu_);
  current_.store(next.get(), std::memory_order_seq_cst);
  versions_.push_back(std::move(next));
}

Status PlacementTable::SetShard(StreamId stream, std::size_t shard) {
  if (stream >= num_streams_) {
    return Status::InvalidArgument("placement: stream out of range");
  }
  if (shard >= num_shards_) {
    return Status::InvalidArgument("placement: shard out of range");
  }
  const Snapshot* cur = Acquire();
  auto next = std::make_unique<Snapshot>(*cur);
  next->epoch = cur->epoch + 1;
  next->shard_of[stream] = static_cast<std::uint32_t>(shard);
  Publish(std::move(next));
  return Status::OK();
}

Status PlacementTable::Reset(std::uint64_t epoch,
                             const std::vector<std::uint32_t>& shard_of) {
  if (shard_of.size() != num_streams_) {
    return Status::InvalidArgument("placement: wrong stream count");
  }
  for (std::uint32_t shard : shard_of) {
    if (shard >= num_shards_) {
      return Status::InvalidArgument("placement: shard out of range");
    }
  }
  auto next = std::make_unique<Snapshot>();
  next->epoch = epoch;
  next->num_shards = static_cast<std::uint32_t>(num_shards_);
  next->shard_of = shard_of;
  Publish(std::move(next));
  return Status::OK();
}

std::string PlacementTable::ToJson() const {
  const Snapshot* snap = Acquire();
  std::string out;
  char head[96];
  std::snprintf(head, sizeof(head),
                "{\"epoch\":%llu,\"num_shards\":%u,\"shard_of\":[",
                static_cast<unsigned long long>(snap->epoch),
                snap->num_shards);
  out += head;
  for (std::size_t s = 0; s < snap->shard_of.size(); ++s) {
    if (s > 0) out += ',';
    out += std::to_string(snap->shard_of[s]);
  }
  out += "]}";
  return out;
}

}  // namespace stardust
