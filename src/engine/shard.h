// One worker shard of the ingestion engine: a private fleet of monitors
// (its own Stardust state, untouched by any other thread) fed by one
// bounded SPSC ring per registered producer. The worker thread drains the
// rings in batches and applies them under the shard's state mutex; reader
// snapshots take the same mutex and are stamped with the shard epoch
// (number of applied batches) so cross-shard reads can report exactly how
// fresh each shard's contribution was.
//
// Stream ownership is elastic: the shard holds a local slot table
// (global_of_/local_of_) seeded with the engine's modulo-hash layout and
// mutated by live migrations (ExtractStream/InstallStream). Rings carry
// GLOBAL stream ids end to end; the worker translates to local slots when
// it groups a batch, so re-routing a stream never needs a ring flush.
// Tuples racing ahead of an in-flight migration are parked
// (PrepareReceive) and applied in arrival order once the stream's state
// is installed — no tuple is lost and no alert fires twice.
//
// Every piece of derived query state the shard maintains lives in its
// FeaturePipeline (engine/feature_pipeline.h): the online unit-sphere DWT
// core (pattern queries, Algorithm 3), the batch z-normalized DWT core
// plus FeatureStore (feature source for the cross-shard correlator), and
// the per-window sliding trackers serving aggregate queries. The worker
// feeds the pipeline exactly once per applied tuple and batch, then
// executes the compiled EvalPlan of the current registry snapshot
// (query/eval_plan.h) against the shared state and publishes hits to the
// alert bus (docs/QUERIES.md, docs/FEATURES.md).
#ifndef STARDUST_ENGINE_SHARD_H_
#define STARDUST_ENGINE_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/latency_histogram.h"
#include "common/ring_buffer.h"
#include "common/status.h"
#include "core/fleet_monitor.h"
#include "core/stardust.h"
#include "engine/engine_config.h"
#include "engine/feature_pipeline.h"
#include "engine/metrics.h"
#include "engine/placement.h"
#include "query/alert_bus.h"
#include "query/eval_plan.h"
#include "query/registry.h"

namespace stardust {

/// One (stream, value) arrival. `stream` is the GLOBAL stream id both at
/// the engine API boundary and inside the shard queues; the worker
/// translates to the shard-local slot when it groups a batch.
struct StreamValue {
  StreamId stream = 0;
  double value = 0.0;
};

/// Outcome of a non-blocking post (Shard::TryPush, IngestEngine::TryPost).
/// The network front door uses this instead of Push so a full ring under
/// kBlock surfaces as kWouldBlock — backpressure the caller can map onto
/// its transport (pause reads, retry later) — rather than stalling the
/// server's event loop.
enum class PostOutcome : std::uint8_t {
  /// The tuple is in the ring (under kDropOldest possibly at the cost of
  /// an evicted older tuple, accounted in dropped_oldest).
  kEnqueued = 0,
  /// Ring full under kDropNewest: the tuple was discarded and accounted.
  kDroppedNewest = 1,
  /// Ring full under kBlock: nothing was enqueued or accounted; retry
  /// after the worker drains.
  kWouldBlock = 2,
};

/// Epoch stamp attached to data read from one shard: `epoch` counts the
/// batches the shard had applied when the read happened, `appended` the
/// tuples. Two reads with equal stamps observed identical shard state.
struct ShardStamp {
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t appended = 0;
};

/// One local stream's contribution to a correlator round: its feature
/// point at the monitored level and the exact z-normalized window, both
/// taken at the same aligned feature time under the shard state mutex.
struct CorrelationFeature {
  StreamId global_stream = 0;
  Point feature;
  std::vector<double> znormed;
};

/// Worker-thread placement options for one shard.
struct ShardOptions {
  /// Pin the worker thread to `pin_core` when it starts. Pinning is
  /// best-effort: a failed affinity call is counted once in
  /// EngineMetrics::pin_failures and the worker runs unpinned.
  bool pin = false;
  std::size_t pin_core = 0;
  /// Test hook replacing the real affinity syscall; returns whether the
  /// pin succeeded. Null means pthread_setaffinity_np on Linux and an
  /// always-failing no-op elsewhere.
  std::function<bool(std::size_t core)> pin_hook;
};

/// A shard owns its monitors exclusively; all mutation happens on its
/// worker thread. Producers only touch the rings and atomic counters.
class Shard {
 public:
  /// `num_shards` is the engine's effective shard count (for the default
  /// modulo local -> global stream id mapping). `pipeline` must be
  /// non-null and sized for the fleet's streams; its cores may be absent
  /// (query kind disabled). `registry` and `alerts` may be null only
  /// together (no query evaluation); a pattern core requires a registry.
  Shard(std::size_t index, std::size_t num_shards,
        std::size_t num_producers, std::size_t queue_capacity,
        OverloadPolicy policy, std::size_t max_batch,
        std::unique_ptr<FleetAggregateMonitor> fleet,
        std::unique_ptr<FeaturePipeline> pipeline, QueryRegistry* registry,
        AlertBus* alerts, EngineMetrics* metrics,
        ShardOptions options = {});
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void Start();
  /// Tells the worker to drain every ring and exit. Producers must have
  /// stopped pushing to this shard before the call.
  void RequestStop();
  void Join();
  /// Worker stops draining while paused (queues fill; drop policies
  /// apply). Used to quiesce for maintenance and to test overload.
  void set_paused(bool paused);
  bool paused() const { return paused_.load(std::memory_order_acquire); }

  /// Enqueues one tuple from producer slot `producer`, applying the
  /// shard's overload policy when the ring is full. `stream` is the
  /// global id. Only thread-safe in the SPSC sense: one thread per
  /// producer slot.
  Status Push(std::size_t producer, StreamId stream, double value);
  /// Non-blocking Push: identical policy handling except that a full
  /// ring under kBlock returns kWouldBlock immediately instead of
  /// spinning. Same SPSC contract as Push.
  PostOutcome TryPush(std::size_t producer, StreamId stream, double value);

  /// Tuples ever accepted into this shard's rings.
  std::uint64_t enqueued() const {
    return enqueued_.load(std::memory_order_acquire);
  }
  /// Tuples that left the rings: applied by the worker, parked for an
  /// in-flight migration, or reclaimed by kDropOldest. enqueued() ==
  /// retired() means the rings are fully drained (parked tuples are
  /// retired from the ring's point of view; ParkDrained() tells whether
  /// they have been applied).
  std::uint64_t retired() const {
    return applied_.load(std::memory_order_acquire) +
           stolen_.load(std::memory_order_acquire) +
           parked_.load(std::memory_order_acquire);
  }
  /// Tuples applied by the worker.
  std::uint64_t applied() const {
    return applied_.load(std::memory_order_acquire);
  }
  /// Snapshot of every ring's enqueue cursor, one entry per producer
  /// slot, for RingsDrainedPast.
  std::vector<std::uint64_t> RingEnqueueCursors() const;
  /// True once every ring's retire cursor has reached `targets` (a
  /// prior RingEnqueueCursors snapshot): each tuple the snapshot counts
  /// has been applied, parked, or reclaimed. The aggregate
  /// retired() >= enqueued() comparison does not give that guarantee —
  /// under concurrent posting it can be satisfied by post-snapshot
  /// traffic from *other* rings while an older tuple still sits queued,
  /// which is exactly what a migration's drain barrier must rule out.
  bool RingsDrainedPast(const std::vector<std::uint64_t>& targets) const;
  /// Applied-tuple watermark whose batch alerts have all been handed to
  /// the alert bus; trails applied() by at most one in-flight batch.
  /// Flush uses it to wait out alert publication, which happens after the
  /// state lock is released.
  std::uint64_t alert_progress() const {
    return alert_progress_.load(std::memory_order_acquire);
  }

  std::size_t index() const { return index_; }
  /// Local slots (including tombstoned ones left by migrations).
  std::size_t num_streams() const { return fleet_->num_streams(); }
  std::size_t num_windows() const { return fleet_->num_windows(); }

  // --- Snapshot reads (mutex-coherent against the worker) --------------
  /// Stats of one globally-identified stream. Returns false when the
  /// stream is not resident on this shard (`*out` untouched) — the
  /// engine retries against the owner named by the placement table.
  bool FindStreamTotal(StreamId global_stream, AlarmStats* out,
                       ShardStamp* stamp) const;
  AlarmStats ShardTotal(ShardStamp* stamp) const;
  /// Alarming streams as GLOBAL ids (ascending).
  Result<std::vector<StreamId>> CurrentlyAlarming(std::size_t window_index,
                                                  ShardStamp* stamp) const;
  /// Values ever applied to one resident stream's monitor; false when the
  /// stream is not resident here.
  bool FindStreamAppendCount(StreamId global_stream,
                             std::uint64_t* out) const;
  /// Append count of every resident stream, keyed by global id and
  /// sorted ascending. One mutex hold; feeds the rebalancer and the
  /// per-stream metrics surface (the counters themselves are maintained
  /// by the fleet on the append path, so scraping adds no hot-loop
  /// work).
  std::vector<std::pair<StreamId, std::uint64_t>> StreamAppendCounts()
      const;
  /// Serialized v2 fleet snapshot of this shard's monitors, taken under
  /// the state mutex so the bytes and the stamp describe the same point
  /// in the apply sequence. Ingestion continues around the call; only
  /// this shard's worker waits for the serialization. When `features` is
  /// non-null it receives the feature pipeline's "SDFP" snapshot taken
  /// under the same mutex hold; when `mapping` is non-null it receives
  /// the local -> global slot table (kNoStream tombstones included) of
  /// the same instant, so a checkpoint can persist the placement the
  /// bytes were laid out under; when `edges` is non-null it receives the
  /// serialized rising-edge state (alarming flags, pattern watermarks and
  /// evaluation floors) of the same instant, so a restore continues the
  /// alert stream without re-announcing conditions that were already
  /// alarming at the checkpoint.
  std::string SerializeState(ShardStamp* stamp,
                             std::string* features = nullptr,
                             std::vector<StreamId>* mapping = nullptr,
                             std::string* edges = nullptr) const;
  /// Restores the feature pipeline (query cores + feature store) from an
  /// "SDFP" snapshot. Only valid before Start().
  Status RestoreFeatures(const std::string& bytes);
  /// Restores the rising-edge maps serialized by SerializeState's
  /// `edges` output. Only valid before Start().
  Status RestoreEdges(const std::string& bytes);
  /// Replaces the local -> global slot table (checkpoint restore of a
  /// post-migration layout). `globals` must have one entry per fleet
  /// slot; kNoStream entries become free slots. Only valid before
  /// Start().
  Status SetStreamMapping(const std::vector<StreamId>& globals);
  /// Seeds the progress counters after a restore so stamps and metrics
  /// continue the pre-crash lineage. Only valid before Start().
  void RestoreProgress(std::uint64_t epoch, std::uint64_t appended);
  /// First non-OK status any append produced on the worker, if any.
  Status worker_status() const;

  ShardMetricsSnapshot MetricsSnapshot() const;

  // --- Live migration (engine MigrateStream; see docs/ENGINE.md) -------
  /// Marks `global_stream` as in-flight to this shard: tuples for it are
  /// parked (in arrival order) instead of applied until InstallStream
  /// lands its state. Fails when another migration is already parked
  /// here or the stream is already resident.
  Status PrepareReceive(StreamId global_stream);
  /// Serializes every piece of per-stream state (monitor, summarizers,
  /// tracker, sketch measures, store rows, alert edge state) into
  /// `blob`, then tombstones the local slot. The caller must have
  /// drained this shard's rings of the stream first (placement flip +
  /// producer quiescence + ring drain barrier).
  Status ExtractStream(StreamId global_stream, std::string* blob);
  /// Installs an ExtractStream blob under `global_stream`, reusing a
  /// tombstoned slot when one is free (growing the fleet otherwise), and
  /// releases the parked tuples to the worker. Requires a matching
  /// PrepareReceive.
  Status InstallStream(StreamId global_stream, const std::string& blob);
  /// Non-destructive ExtractStream: the same byte string without the
  /// tombstoning — the migration-equivalence oracle (two engines that
  /// processed the same tuples must serialize identical stream slices,
  /// migrated or not).
  Status SerializeStream(StreamId global_stream, std::string* blob) const;
  /// True once no migration is parked here and every parked tuple has
  /// been applied.
  bool ParkDrained() const;

  // --- Correlator support (requires a correlation core) ----------------
  /// Phase 1 of a correlator round: the latest aligned feature time of
  /// every local stream at `level` of the correlation core (one entry
  /// per local slot; `has == false` while a stream's window has not
  /// filled yet, and forever for tombstoned slots).
  struct FeatureClock {
    bool has = false;
    std::uint64_t time = 0;
  };
  std::vector<FeatureClock> CorrelationClocks(std::size_t level) const;
  /// Reduced form of CorrelationClocks for the round-skip decision: the
  /// minimum clock over this shard's started streams, plus the feature
  /// store epoch the summary was taken at. The correlator caches one per
  /// (level, shard) and passes the cached `store_epoch` back as
  /// `since_epoch`; when the level saw no store put since then the call
  /// returns false without scanning a single stream (`out` untouched) —
  /// no put means no stream's aligned feature time moved, so the cached
  /// summary still holds. Pass 0 to force a scan.
  struct ClockSummary {
    std::uint64_t store_epoch = 0;
    bool any = false;
    std::uint64_t min_time = 0;
  };
  bool CorrelationClockMinSince(std::size_t level, std::uint64_t since_epoch,
                                ClockSummary* out) const;
  /// Phase 2: appends, for every local stream that still has its feature
  /// and raw window at aligned time `t`, the feature point and the exact
  /// z-normalized window. Streams whose data already expired (or never
  /// reached `t`) are skipped — the correlator's rounds are best-effort
  /// over whatever every shard can still serve coherently.
  Status CorrelationFeaturesAt(std::size_t level, std::uint64_t t,
                               std::vector<CorrelationFeature>* out) const;
  /// Columnar variant of CorrelationFeaturesAt: one flat buffer per
  /// column, reusable across rounds so the steady state allocates
  /// nothing. Stream k of the gather owns features[k*dims .. ) and
  /// znormed[k*window .. ). Global stream ids are ascending within one
  /// shard's gather (the scan walks the slot table in global order, so
  /// the invariant survives migrations reshuffling local slots).
  struct CorrelationGather {
    std::vector<StreamId> streams;  // global ids
    std::vector<double> features;   // streams.size() × dims
    std::vector<double> znormed;    // streams.size() × window
    std::size_t dims = 0;
    std::size_t window = 0;
  };
  /// Clears and refills `out` with every local stream that still serves
  /// aligned time `t` at `level`. One state-mutex hold.
  Status CorrelationGatherAt(std::size_t level, std::uint64_t t,
                             CorrelationGather* out) const;
  bool has_correlation_core() const {
    return pipeline_->corr_core() != nullptr;
  }
  bool has_pattern_core() const {
    return pipeline_->pattern_core() != nullptr;
  }

  /// Whether the worker thread is currently pinned to options_.pin_core.
  /// False until Start() (and forever when pinning is off or failed).
  bool pinned() const { return pinned_.load(std::memory_order_acquire); }

 private:
  void WorkerLoop();
  void ApplyBatch(const std::vector<StreamValue>& batch);
  ShardStamp StampLocked() const;

  /// Re-fetches the registry snapshot when its version moved and
  /// compiles it into a fresh EvalPlan (staged in pending_plan_ until
  /// the next batch commits it under the state mutex). Worker thread
  /// only; touches no evaluation state.
  void RefreshQuerySnapshot();
  /// Prunes evaluation state of unregistered queries so the edge maps
  /// cannot grow without bound under register/unregister churn. Called
  /// at plan commit with state_mu_ held (migrations read the maps under
  /// the same mutex).
  void PruneQueryStateLocked();
  /// Groups the batch into one contiguous per-stream run each (stable:
  /// per-stream value order is batch order), translating global ids to
  /// local slots and filling touched_list_, run_begin_/run_count_ and
  /// the packed run_values_ buffer in two allocation-free passes.
  /// Tuples of the parked in-flight stream are diverted to park_;
  /// tuples naming an unknown global are diverted to invalid_ with an
  /// out-of-range local id so the scalar path accounts them as append
  /// errors. Called with state_mu_ held.
  void GroupRuns(const std::vector<StreamValue>& batch);
  /// Applies one stream's run through the batched maintenance path,
  /// splitting at non-finite values so rejected tuples surface the exact
  /// per-tuple error accounting of the scalar path. Called with state_mu_
  /// held.
  void ApplyRunLocked(StreamId stream, const double* values,
                      std::size_t count);
  /// Scalar fallback for one tuple (non-finite value or out-of-range
  /// stream): the pre-batching append path, kept so error semantics and
  /// accounting stay identical. Called with state_mu_ held.
  void ApplyTupleLocked(StreamId stream, double value);
  /// Runs the compiled plan's aggregate + pattern stages against the
  /// pipeline state; called with state_mu_ held after FinishBatch.
  /// Alerts are collected into `out` and published by the caller after
  /// the lock is released.
  void EvaluateQueriesLocked(std::vector<Alert>* out);

  /// Local slot of a global id; kNoStream when not resident. Called with
  /// state_mu_ held.
  StreamId LocalOfLocked(StreamId global_stream) const {
    return global_stream < local_of_.size() ? local_of_[global_stream]
                                            : kNoStream;
  }
  /// Rebuilds the global-ascending slot scan order after any slot-table
  /// mutation. Called with state_mu_ held.
  void RebuildSortedLocalsLocked();
  /// One stream's full serialized slice (monitor + pipeline + edge
  /// state); shared by ExtractStream and SerializeStream so the
  /// destructive and the oracle path emit identical bytes. Called with
  /// state_mu_ held.
  Status SaveStreamLocked(StreamId local, Writer* writer) const;

  const std::size_t index_;
  const std::size_t num_shards_;
  const OverloadPolicy policy_;
  const std::size_t max_batch_;
  EngineMetrics* const metrics_;
  QueryRegistry* const registry_;
  AlertBus* const alerts_;
  const ShardOptions options_;

  std::atomic<bool> pinned_{false};

  std::vector<std::unique_ptr<SpscRing<StreamValue>>> rings_;
  /// Per-ring drain cursors. ring_enqueued_[p] counts tuples producer p
  /// ever pushed into its ring; ring_retired_[p] counts tuples that
  /// left it with their batch fully applied (or parked / reclaimed by
  /// kDropOldest). FIFO per ring makes each pair exact regardless of
  /// concurrent traffic on the other rings — the property the
  /// migration and Flush drain barriers are built on.
  std::unique_ptr<std::atomic<std::uint64_t>[]> ring_enqueued_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> ring_retired_;

  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> alert_progress_{0};
  std::atomic<std::uint64_t> stolen_{0};
  /// Tuples currently held in park_ awaiting an InstallStream; moves to
  /// applied_ when the worker drains the park.
  std::atomic<std::uint64_t> parked_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_max_{0};
  std::atomic<std::size_t> queue_high_water_{0};

  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  /// Fast worker-visible flag: an installed migration left parked tuples
  /// behind; the next batch (or idle sweep) must drain them.
  std::atomic<bool> park_pending_{false};

  /// Guards fleet_, the feature pipeline, the committed plan_, the slot
  /// tables, the park, the query edge maps, and worker_status_: held by
  /// the worker while applying a batch (and evaluating queries), by
  /// readers while snapshotting, and by migrations while extracting or
  /// installing stream state.
  mutable std::mutex state_mu_;
  std::unique_ptr<FleetAggregateMonitor> fleet_;
  std::unique_ptr<FeaturePipeline> pipeline_;
  /// Plan currently driving evaluation; swapped in under state_mu_.
  std::shared_ptr<const EvalPlan> plan_;
  Status worker_status_;

  // --- Elastic slot tables (guarded by state_mu_) ----------------------
  /// local slot -> global id; kNoStream marks a tombstoned slot.
  std::vector<StreamId> global_of_;
  /// global id -> local slot (dense; kNoStream = not resident). Sized
  /// lazily to the largest global ever resident here.
  std::vector<StreamId> local_of_;
  /// Tombstoned local slots available for reuse by InstallStream.
  std::vector<StreamId> free_slots_;
  /// Live local slots in ascending-global order (the scan order of
  /// correlator gathers and metrics).
  std::vector<StreamId> sorted_locals_;
  /// Global id currently in flight to this shard; kNoStream when none.
  StreamId parked_stream_ = kNoStream;
  /// Tuples of parked_stream_ in arrival order.
  std::vector<StreamValue> park_;

  // --- Query evaluation state (state_mu_; written by the worker) -------
  std::shared_ptr<const QueryRegistry::Snapshot> query_snapshot_;
  /// Freshly compiled plan awaiting commit (worker thread only).
  std::shared_ptr<const EvalPlan> pending_plan_;
  std::uint64_t query_version_ = 0;
  /// Aggregate edge state: last alarm outcome per (query, local stream),
  /// so alerts fire on the false -> true transition only.
  std::unordered_map<QueryId, std::vector<char>> agg_alarming_;
  /// Same edge state for sketch queries (alarm == estimate left the
  /// query's assess range).
  std::unordered_map<QueryId, std::vector<char>> sketch_alarming_;
  /// Pattern delivery watermark per (query, local stream): matches with
  /// end_time + 1 <= watermark were already delivered.
  std::unordered_map<QueryId, std::vector<std::uint64_t>>
      pattern_watermark_;
  /// Incremental-evaluation cursor per (query, local stream): first match
  /// end position not yet finally decided by QueryCompiledIncremental.
  std::unordered_map<QueryId, std::vector<std::uint64_t>>
      pattern_eval_floor_;
  /// Scratch: local streams touched by the current batch.
  std::vector<char> touched_;
  std::vector<StreamId> touched_list_;
  // --- Batched-maintenance scratch (worker thread, state_mu_ held) -----
  /// Tuples of the current batch per stream (indexed by local stream,
  /// reset through touched_list_, so reset cost is O(touched)).
  std::vector<std::uint32_t> run_count_;
  /// Next write offset into run_values_ per stream (scatter cursors).
  std::vector<std::uint32_t> run_cursor_;
  /// Start offset of each touched stream's run in run_values_, parallel
  /// to touched_list_.
  std::vector<std::size_t> run_begin_;
  /// The batch's values regrouped into per-stream contiguous runs.
  std::vector<double> run_values_;
  /// Per-tuple local translation of the current batch (kNoStream =
  /// parked or unknown, already diverted in pass 1).
  std::vector<StreamId> local_scratch_;
  /// Tuples naming an unknown global (cannot be grouped); applied
  /// through the scalar path for identical error accounting.
  std::vector<StreamValue> invalid_;
  /// Tuples of the current batch diverted to park_ by GroupRuns.
  std::size_t newly_parked_ = 0;
  /// Merged (park + batch) scratch for the drain-after-install batch.
  std::vector<StreamValue> merged_;
  /// Nanoseconds spent in batched maintenance (fleet + pipeline appends
  /// and batch close), guarded by state_mu_; feeds
  /// maintain_ns_per_append in metrics.
  std::uint64_t maintain_ns_ = 0;
  /// Wall time of whole ApplyBatch calls (drain to alert handoff).
  LatencyHistogram apply_batch_latency_;
  /// Scratch: per-query edge vectors of the aggregate group being run.
  std::vector<std::vector<char>*> edge_scratch_;

  std::thread worker_;
};

}  // namespace stardust

#endif  // STARDUST_ENGINE_SHARD_H_
