// One worker shard of the ingestion engine: a private fleet of monitors
// (its own Stardust state, untouched by any other thread) fed by one
// bounded SPSC ring per registered producer. The worker thread drains the
// rings in batches and applies them under the shard's state mutex; reader
// snapshots take the same mutex and are stamped with the shard epoch
// (number of applied batches) so cross-shard reads can report exactly how
// fresh each shard's contribution was.
//
// Every piece of derived query state the shard maintains lives in its
// FeaturePipeline (engine/feature_pipeline.h): the online unit-sphere DWT
// core (pattern queries, Algorithm 3), the batch z-normalized DWT core
// plus FeatureStore (feature source for the cross-shard correlator), and
// the per-window sliding trackers serving aggregate queries. The worker
// feeds the pipeline exactly once per applied tuple and batch, then
// executes the compiled EvalPlan of the current registry snapshot
// (query/eval_plan.h) against the shared state and publishes hits to the
// alert bus (docs/QUERIES.md, docs/FEATURES.md).
#ifndef STARDUST_ENGINE_SHARD_H_
#define STARDUST_ENGINE_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/latency_histogram.h"
#include "common/ring_buffer.h"
#include "common/status.h"
#include "core/fleet_monitor.h"
#include "core/stardust.h"
#include "engine/engine_config.h"
#include "engine/feature_pipeline.h"
#include "engine/metrics.h"
#include "query/alert_bus.h"
#include "query/eval_plan.h"
#include "query/registry.h"

namespace stardust {

/// One (stream, value) arrival. Inside a shard queue `stream` is the
/// shard-local index; at the engine API boundary it is the global id.
struct StreamValue {
  StreamId stream = 0;
  double value = 0.0;
};

/// Outcome of a non-blocking post (Shard::TryPush, IngestEngine::TryPost).
/// The network front door uses this instead of Push so a full ring under
/// kBlock surfaces as kWouldBlock — backpressure the caller can map onto
/// its transport (pause reads, retry later) — rather than stalling the
/// server's event loop.
enum class PostOutcome : std::uint8_t {
  /// The tuple is in the ring (under kDropOldest possibly at the cost of
  /// an evicted older tuple, accounted in dropped_oldest).
  kEnqueued = 0,
  /// Ring full under kDropNewest: the tuple was discarded and accounted.
  kDroppedNewest = 1,
  /// Ring full under kBlock: nothing was enqueued or accounted; retry
  /// after the worker drains.
  kWouldBlock = 2,
};

/// Epoch stamp attached to data read from one shard: `epoch` counts the
/// batches the shard had applied when the read happened, `appended` the
/// tuples. Two reads with equal stamps observed identical shard state.
struct ShardStamp {
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t appended = 0;
};

/// One local stream's contribution to a correlator round: its feature
/// point at the monitored level and the exact z-normalized window, both
/// taken at the same aligned feature time under the shard state mutex.
struct CorrelationFeature {
  StreamId global_stream = 0;
  Point feature;
  std::vector<double> znormed;
};

/// Worker-thread placement options for one shard.
struct ShardOptions {
  /// Pin the worker thread to `pin_core` when it starts. Pinning is
  /// best-effort: a failed affinity call is counted once in
  /// EngineMetrics::pin_failures and the worker runs unpinned.
  bool pin = false;
  std::size_t pin_core = 0;
  /// Test hook replacing the real affinity syscall; returns whether the
  /// pin succeeded. Null means pthread_setaffinity_np on Linux and an
  /// always-failing no-op elsewhere.
  std::function<bool(std::size_t core)> pin_hook;
};

/// A shard owns its monitors exclusively; all mutation happens on its
/// worker thread. Producers only touch the rings and atomic counters.
class Shard {
 public:
  /// `num_shards` is the engine's effective shard count (for local ->
  /// global stream id mapping in alerts). `pipeline` must be non-null
  /// and sized for the fleet's streams; its cores may be absent (query
  /// kind disabled). `registry` and `alerts` may be null only together
  /// (no query evaluation); a pattern core requires a registry.
  Shard(std::size_t index, std::size_t num_shards,
        std::size_t num_producers, std::size_t queue_capacity,
        OverloadPolicy policy, std::size_t max_batch,
        std::unique_ptr<FleetAggregateMonitor> fleet,
        std::unique_ptr<FeaturePipeline> pipeline, QueryRegistry* registry,
        AlertBus* alerts, EngineMetrics* metrics,
        ShardOptions options = {});
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void Start();
  /// Tells the worker to drain every ring and exit. Producers must have
  /// stopped pushing to this shard before the call.
  void RequestStop();
  void Join();
  /// Worker stops draining while paused (queues fill; drop policies
  /// apply). Used to quiesce for maintenance and to test overload.
  void set_paused(bool paused);

  /// Enqueues one tuple from producer slot `producer`, applying the
  /// shard's overload policy when the ring is full. Only thread-safe in
  /// the SPSC sense: one thread per producer slot.
  Status Push(std::size_t producer, StreamId local_stream, double value);
  /// Non-blocking Push: identical policy handling except that a full
  /// ring under kBlock returns kWouldBlock immediately instead of
  /// spinning. Same SPSC contract as Push.
  PostOutcome TryPush(std::size_t producer, StreamId local_stream,
                      double value);

  /// Tuples ever accepted into this shard's rings.
  std::uint64_t enqueued() const {
    return enqueued_.load(std::memory_order_acquire);
  }
  /// Tuples that left the rings: applied by the worker or reclaimed by
  /// kDropOldest. enqueued() == retired() means fully drained.
  std::uint64_t retired() const {
    return applied_.load(std::memory_order_acquire) +
           stolen_.load(std::memory_order_acquire);
  }
  /// Tuples applied by the worker.
  std::uint64_t applied() const {
    return applied_.load(std::memory_order_acquire);
  }
  /// Applied-tuple watermark whose batch alerts have all been handed to
  /// the alert bus; trails applied() by at most one in-flight batch.
  /// Flush uses it to wait out alert publication, which happens after the
  /// state lock is released.
  std::uint64_t alert_progress() const {
    return alert_progress_.load(std::memory_order_acquire);
  }

  std::size_t index() const { return index_; }
  std::size_t num_streams() const { return fleet_->num_streams(); }
  std::size_t num_windows() const { return fleet_->num_windows(); }

  // --- Snapshot reads (mutex-coherent against the worker) --------------
  AlarmStats StreamTotal(StreamId local_stream, ShardStamp* stamp) const;
  AlarmStats ShardTotal(ShardStamp* stamp) const;
  /// Alarming streams as shard-local ids.
  Result<std::vector<StreamId>> CurrentlyAlarming(std::size_t window_index,
                                                  ShardStamp* stamp) const;
  /// Values ever applied to one stream's monitor.
  std::uint64_t StreamAppendCount(StreamId local_stream) const;
  /// Serialized v2 fleet snapshot of this shard's monitors, taken under
  /// the state mutex so the bytes and the stamp describe the same point
  /// in the apply sequence. Ingestion continues around the call; only
  /// this shard's worker waits for the serialization. When `features` is
  /// non-null it receives the feature pipeline's "SDFP" snapshot taken
  /// under the same mutex hold, so both byte strings describe one point
  /// in the apply sequence.
  std::string SerializeState(ShardStamp* stamp,
                             std::string* features = nullptr) const;
  /// Restores the feature pipeline (query cores + feature store) from an
  /// "SDFP" snapshot. Only valid before Start().
  Status RestoreFeatures(const std::string& bytes);
  /// Seeds the progress counters after a restore so stamps and metrics
  /// continue the pre-crash lineage. Only valid before Start().
  void RestoreProgress(std::uint64_t epoch, std::uint64_t appended);
  /// First non-OK status any append produced on the worker, if any.
  Status worker_status() const;

  ShardMetricsSnapshot MetricsSnapshot() const;

  // --- Correlator support (requires a correlation core) ----------------
  /// Phase 1 of a correlator round: the latest aligned feature time of
  /// every local stream at `level` of the correlation core (one entry
  /// per local stream; `has == false` while a stream's window has not
  /// filled yet).
  struct FeatureClock {
    bool has = false;
    std::uint64_t time = 0;
  };
  std::vector<FeatureClock> CorrelationClocks(std::size_t level) const;
  /// Reduced form of CorrelationClocks for the round-skip decision: the
  /// minimum clock over this shard's started streams, plus the feature
  /// store epoch the summary was taken at. The correlator caches one per
  /// (level, shard) and passes the cached `store_epoch` back as
  /// `since_epoch`; when the level saw no store put since then the call
  /// returns false without scanning a single stream (`out` untouched) —
  /// no put means no stream's aligned feature time moved, so the cached
  /// summary still holds. Pass 0 to force a scan.
  struct ClockSummary {
    std::uint64_t store_epoch = 0;
    bool any = false;
    std::uint64_t min_time = 0;
  };
  bool CorrelationClockMinSince(std::size_t level, std::uint64_t since_epoch,
                                ClockSummary* out) const;
  /// Phase 2: appends, for every local stream that still has its feature
  /// and raw window at aligned time `t`, the feature point and the exact
  /// z-normalized window. Streams whose data already expired (or never
  /// reached `t`) are skipped — the correlator's rounds are best-effort
  /// over whatever every shard can still serve coherently.
  Status CorrelationFeaturesAt(std::size_t level, std::uint64_t t,
                               std::vector<CorrelationFeature>* out) const;
  /// Columnar variant of CorrelationFeaturesAt: one flat buffer per
  /// column, reusable across rounds so the steady state allocates
  /// nothing. Stream k of the gather owns features[k*dims .. ) and
  /// znormed[k*window .. ). Global stream ids are ascending within one
  /// shard's gather.
  struct CorrelationGather {
    std::vector<StreamId> streams;  // global ids
    std::vector<double> features;   // streams.size() × dims
    std::vector<double> znormed;    // streams.size() × window
    std::size_t dims = 0;
    std::size_t window = 0;
  };
  /// Clears and refills `out` with every local stream that still serves
  /// aligned time `t` at `level`. One state-mutex hold.
  Status CorrelationGatherAt(std::size_t level, std::uint64_t t,
                             CorrelationGather* out) const;
  bool has_correlation_core() const {
    return pipeline_->corr_core() != nullptr;
  }
  bool has_pattern_core() const {
    return pipeline_->pattern_core() != nullptr;
  }

  /// Whether the worker thread is currently pinned to options_.pin_core.
  /// False until Start() (and forever when pinning is off or failed).
  bool pinned() const { return pinned_.load(std::memory_order_acquire); }

 private:
  void WorkerLoop();
  void ApplyBatch(const std::vector<StreamValue>& batch);
  ShardStamp StampLocked() const;

  /// Re-fetches the registry snapshot when its version moved, compiles
  /// it into a fresh EvalPlan (staged in pending_plan_ until the next
  /// batch commits it under the state mutex), and prunes evaluation
  /// state of unregistered queries. Worker thread only.
  void RefreshQuerySnapshot();
  /// Groups the batch into one contiguous per-stream run each (stable:
  /// per-stream value order is batch order), filling touched_list_,
  /// run_begin_/run_count_ and the packed run_values_ buffer in two
  /// allocation-free passes. Tuples naming an out-of-range stream cannot
  /// be grouped and are diverted to invalid_.
  void GroupRuns(const std::vector<StreamValue>& batch);
  /// Applies one stream's run through the batched maintenance path,
  /// splitting at non-finite values so rejected tuples surface the exact
  /// per-tuple error accounting of the scalar path. Called with state_mu_
  /// held.
  void ApplyRunLocked(StreamId stream, const double* values,
                      std::size_t count);
  /// Scalar fallback for one tuple (non-finite value or out-of-range
  /// stream): the pre-batching append path, kept so error semantics and
  /// accounting stay identical. Called with state_mu_ held.
  void ApplyTupleLocked(StreamId stream, double value);
  /// Runs the compiled plan's aggregate + pattern stages against the
  /// pipeline state; called with state_mu_ held after FinishBatch.
  /// Alerts are collected into `out` and published by the caller after
  /// the lock is released.
  void EvaluateQueriesLocked(std::vector<Alert>* out);

  StreamId GlobalOf(StreamId local_stream) const {
    return static_cast<StreamId>(local_stream * num_shards_ + index_);
  }

  const std::size_t index_;
  const std::size_t num_shards_;
  const OverloadPolicy policy_;
  const std::size_t max_batch_;
  EngineMetrics* const metrics_;
  QueryRegistry* const registry_;
  AlertBus* const alerts_;
  const ShardOptions options_;

  std::atomic<bool> pinned_{false};

  std::vector<std::unique_ptr<SpscRing<StreamValue>>> rings_;

  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> alert_progress_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_max_{0};
  std::atomic<std::size_t> queue_high_water_{0};

  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};

  /// Guards fleet_, the feature pipeline, the committed plan_, and
  /// worker_status_: held by the worker while applying a batch (and
  /// evaluating queries) and by readers while snapshotting.
  mutable std::mutex state_mu_;
  std::unique_ptr<FleetAggregateMonitor> fleet_;
  std::unique_ptr<FeaturePipeline> pipeline_;
  /// Plan currently driving evaluation; swapped in under state_mu_.
  std::shared_ptr<const EvalPlan> plan_;
  Status worker_status_;

  // --- Query evaluation state (worker thread only) ---------------------
  std::shared_ptr<const QueryRegistry::Snapshot> query_snapshot_;
  /// Freshly compiled plan awaiting commit (worker thread only).
  std::shared_ptr<const EvalPlan> pending_plan_;
  std::uint64_t query_version_ = 0;
  /// Aggregate edge state: last alarm outcome per (query, local stream),
  /// so alerts fire on the false -> true transition only.
  std::unordered_map<QueryId, std::vector<char>> agg_alarming_;
  /// Same edge state for sketch queries (alarm == estimate left the
  /// query's assess range).
  std::unordered_map<QueryId, std::vector<char>> sketch_alarming_;
  /// Pattern delivery watermark per (query, local stream): matches with
  /// end_time + 1 <= watermark were already delivered.
  std::unordered_map<QueryId, std::vector<std::uint64_t>>
      pattern_watermark_;
  /// Incremental-evaluation cursor per (query, local stream): first match
  /// end position not yet finally decided by QueryCompiledIncremental.
  std::unordered_map<QueryId, std::vector<std::uint64_t>>
      pattern_eval_floor_;
  /// Scratch: local streams touched by the current batch.
  std::vector<char> touched_;
  std::vector<StreamId> touched_list_;
  // --- Batched-maintenance scratch (worker thread only) ----------------
  /// Tuples of the current batch per stream (indexed by local stream,
  /// reset through touched_list_, so reset cost is O(touched)).
  std::vector<std::uint32_t> run_count_;
  /// Next write offset into run_values_ per stream (scatter cursors).
  std::vector<std::uint32_t> run_cursor_;
  /// Start offset of each touched stream's run in run_values_, parallel
  /// to touched_list_.
  std::vector<std::size_t> run_begin_;
  /// The batch's values regrouped into per-stream contiguous runs.
  std::vector<double> run_values_;
  /// Tuples naming an out-of-range local stream (cannot be grouped);
  /// applied through the scalar path for identical error accounting.
  std::vector<StreamValue> invalid_;
  /// Nanoseconds spent in batched maintenance (fleet + pipeline appends
  /// and batch close), guarded by state_mu_; feeds
  /// maintain_ns_per_append in metrics.
  std::uint64_t maintain_ns_ = 0;
  /// Wall time of whole ApplyBatch calls (drain to alert handoff).
  LatencyHistogram apply_batch_latency_;
  /// Scratch: per-query edge vectors of the aggregate group being run.
  std::vector<std::vector<char>*> edge_scratch_;

  std::thread worker_;
};

}  // namespace stardust

#endif  // STARDUST_ENGINE_SHARD_H_
