// One worker shard of the ingestion engine: a private fleet of monitors
// (its own Stardust state, untouched by any other thread) fed by one
// bounded SPSC ring per registered producer. The worker thread drains the
// rings in batches and applies them under the shard's state mutex; reader
// snapshots take the same mutex and are stamped with the shard epoch
// (number of applied batches) so cross-shard reads can report exactly how
// fresh each shard's contribution was.
#ifndef STARDUST_ENGINE_SHARD_H_
#define STARDUST_ENGINE_SHARD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ring_buffer.h"
#include "common/status.h"
#include "core/fleet_monitor.h"
#include "engine/engine_config.h"
#include "engine/metrics.h"

namespace stardust {

/// One (stream, value) arrival. Inside a shard queue `stream` is the
/// shard-local index; at the engine API boundary it is the global id.
struct StreamValue {
  StreamId stream = 0;
  double value = 0.0;
};

/// Epoch stamp attached to data read from one shard: `epoch` counts the
/// batches the shard had applied when the read happened, `appended` the
/// tuples. Two reads with equal stamps observed identical shard state.
struct ShardStamp {
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t appended = 0;
};

/// A shard owns its monitors exclusively; all mutation happens on its
/// worker thread. Producers only touch the rings and atomic counters.
class Shard {
 public:
  Shard(std::size_t index, std::size_t num_producers,
        std::size_t queue_capacity, OverloadPolicy policy,
        std::size_t max_batch, std::unique_ptr<FleetAggregateMonitor> fleet,
        EngineMetrics* metrics);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void Start();
  /// Tells the worker to drain every ring and exit. Producers must have
  /// stopped pushing to this shard before the call.
  void RequestStop();
  void Join();
  /// Worker stops draining while paused (queues fill; drop policies
  /// apply). Used to quiesce for maintenance and to test overload.
  void set_paused(bool paused);

  /// Enqueues one tuple from producer slot `producer`, applying the
  /// shard's overload policy when the ring is full. Only thread-safe in
  /// the SPSC sense: one thread per producer slot.
  Status Push(std::size_t producer, StreamId local_stream, double value);

  /// Tuples ever accepted into this shard's rings.
  std::uint64_t enqueued() const {
    return enqueued_.load(std::memory_order_acquire);
  }
  /// Tuples that left the rings: applied by the worker or reclaimed by
  /// kDropOldest. enqueued() == retired() means fully drained.
  std::uint64_t retired() const {
    return applied_.load(std::memory_order_acquire) +
           stolen_.load(std::memory_order_acquire);
  }

  std::size_t index() const { return index_; }
  std::size_t num_streams() const { return fleet_->num_streams(); }
  std::size_t num_windows() const { return fleet_->num_windows(); }

  // --- Snapshot reads (mutex-coherent against the worker) --------------
  AlarmStats StreamTotal(StreamId local_stream, ShardStamp* stamp) const;
  AlarmStats ShardTotal(ShardStamp* stamp) const;
  /// Alarming streams as shard-local ids.
  Result<std::vector<StreamId>> CurrentlyAlarming(std::size_t window_index,
                                                  ShardStamp* stamp) const;
  /// Values ever applied to one stream's monitor.
  std::uint64_t StreamAppendCount(StreamId local_stream) const;
  /// Serialized v2 fleet snapshot of this shard's monitors, taken under
  /// the state mutex so the bytes and the stamp describe the same point
  /// in the apply sequence. Ingestion continues around the call; only
  /// this shard's worker waits for the serialization.
  std::string SerializeState(ShardStamp* stamp) const;
  /// Seeds the progress counters after a restore so stamps and metrics
  /// continue the pre-crash lineage. Only valid before Start().
  void RestoreProgress(std::uint64_t epoch, std::uint64_t appended);
  /// First non-OK status any append produced on the worker, if any.
  Status worker_status() const;

  ShardMetricsSnapshot MetricsSnapshot() const;

 private:
  void WorkerLoop();
  void ApplyBatch(const std::vector<StreamValue>& batch);
  ShardStamp StampLocked() const;

  const std::size_t index_;
  const OverloadPolicy policy_;
  const std::size_t max_batch_;
  EngineMetrics* const metrics_;

  std::vector<std::unique_ptr<SpscRing<StreamValue>>> rings_;

  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_max_{0};
  std::atomic<std::size_t> queue_high_water_{0};

  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};

  /// Guards fleet_ and worker_status_: held by the worker while applying
  /// a batch and by readers while snapshotting.
  mutable std::mutex state_mu_;
  std::unique_ptr<FleetAggregateMonitor> fleet_;
  Status worker_status_;

  std::thread worker_;
};

}  // namespace stardust

#endif  // STARDUST_ENGINE_SHARD_H_
