#include "engine/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/atomic_file.h"
#include "common/serialize.h"

namespace stardust {

namespace {

constexpr char kManifestMagic[4] = {'S', 'D', 'M', 'F'};
/// v1: shard entries only. v2 appends the query-registry file entry.
/// v3 appends the per-shard feature-pipeline file entries. v4 appends
/// the net-state file entry. v5 changes no manifest layout but marks
/// checkpoints whose feature files carry the SDFP-v2 sketch section and
/// whose registry is SDQR v3 (both file formats are self-versioned, so
/// v4 checkpoints restore with sketch measures warming up). v6 appends
/// the stream-placement file entry. All parse; a v1 manifest restores
/// with an empty registry, anything below v3 restores with empty query
/// cores, anything below v4 restores with no network tier state, and
/// anything below v6 restores with the modulo-hash stream placement.
constexpr std::uint32_t kManifestVersion = 6;
constexpr std::uint32_t kMinManifestVersion = 1;
/// Lower bound on one serialized shard entry (name length + epoch +
/// appended + checksum); bounds the declared shard count against the
/// remaining payload so corrupt manifests cannot drive huge allocations.
constexpr std::uint64_t kMinShardEntryBytes = 32;
constexpr std::uint64_t kMaxFileNameBytes = 4096;

/// Extracts the sequence number from `manifest-<seq>.ck`,
/// `shard-<i>-ck<seq>.snap`, `features-<i>-ck<seq>.feat`,
/// `edges-<i>-ck<seq>.edge`, `queries-ck<seq>.qry`, `net-ck<seq>.net`,
/// or `placement-ck<seq>.plc`; false otherwise.
bool ParseSeqFromName(const std::string& name, std::uint64_t* seq) {
  std::string digits;
  if (name.rfind("manifest-", 0) == 0 && name.size() > 12 &&
      name.compare(name.size() - 3, 3, ".ck") == 0) {
    digits = name.substr(9, name.size() - 12);
  } else if (name.rfind("shard-", 0) == 0 && name.size() > 5 &&
             name.compare(name.size() - 5, 5, ".snap") == 0) {
    const std::size_t ck = name.rfind("-ck");
    if (ck == std::string::npos) return false;
    digits = name.substr(ck + 3, name.size() - ck - 8);
  } else if (name.rfind("features-", 0) == 0 && name.size() > 5 &&
             name.compare(name.size() - 5, 5, ".feat") == 0) {
    const std::size_t ck = name.rfind("-ck");
    if (ck == std::string::npos) return false;
    digits = name.substr(ck + 3, name.size() - ck - 8);
  } else if (name.rfind("edges-", 0) == 0 && name.size() > 5 &&
             name.compare(name.size() - 5, 5, ".edge") == 0) {
    const std::size_t ck = name.rfind("-ck");
    if (ck == std::string::npos) return false;
    digits = name.substr(ck + 3, name.size() - ck - 8);
  } else if (name.rfind("queries-ck", 0) == 0 && name.size() > 14 &&
             name.compare(name.size() - 4, 4, ".qry") == 0) {
    digits = name.substr(10, name.size() - 14);
  } else if (name.rfind("net-ck", 0) == 0 && name.size() > 10 &&
             name.compare(name.size() - 4, 4, ".net") == 0) {
    digits = name.substr(6, name.size() - 10);
  } else if (name.rfind("placement-ck", 0) == 0 && name.size() > 16 &&
             name.compare(name.size() - 4, 4, ".plc") == 0) {
    digits = name.substr(12, name.size() - 16);
  } else {
    return false;
  }
  if (digits.empty() || digits.size() > 19) return false;
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

/// Reads a length-prefixed file name and rejects anything that could
/// escape the checkpoint directory.
Status ReadFileName(Reader* reader, std::string* name) {
  std::uint64_t name_size = 0;
  SD_RETURN_NOT_OK(reader->U64(&name_size));
  if (name_size > kMaxFileNameBytes || name_size > reader->remaining()) {
    return Status::InvalidArgument("manifest file name out of range");
  }
  name->resize(name_size);
  for (std::uint64_t i = 0; i < name_size; ++i) {
    std::uint8_t c = 0;
    SD_RETURN_NOT_OK(reader->U8(&c));
    (*name)[i] = static_cast<char>(c);
  }
  if (name->find('/') != std::string::npos ||
      name->find("..") != std::string::npos) {
    return Status::InvalidArgument(
        "manifest file name escapes checkpoint directory");
  }
  return Status::OK();
}

}  // namespace

std::string CheckpointShardFileName(std::size_t shard, std::uint64_t seq) {
  return "shard-" + std::to_string(shard) + "-ck" + std::to_string(seq) +
         ".snap";
}

std::string CheckpointFeaturesFileName(std::size_t shard,
                                       std::uint64_t seq) {
  return "features-" + std::to_string(shard) + "-ck" + std::to_string(seq) +
         ".feat";
}

std::string CheckpointEdgesFileName(std::size_t shard, std::uint64_t seq) {
  return "edges-" + std::to_string(shard) + "-ck" + std::to_string(seq) +
         ".edge";
}

std::string CheckpointQueriesFileName(std::uint64_t seq) {
  return "queries-ck" + std::to_string(seq) + ".qry";
}

std::string CheckpointNetFileName(std::uint64_t seq) {
  return "net-ck" + std::to_string(seq) + ".net";
}

std::string CheckpointPlacementFileName(std::uint64_t seq) {
  return "placement-ck" + std::to_string(seq) + ".plc";
}

std::string CheckpointManifestFileName(std::uint64_t seq) {
  return "manifest-" + std::to_string(seq) + ".ck";
}

std::string SerializeManifest(const CheckpointManifest& manifest) {
  Writer payload;
  payload.U64(manifest.seq);
  payload.U64(manifest.num_streams);
  payload.U64(manifest.num_shards);
  payload.U64(manifest.queue_capacity);
  payload.U64(manifest.max_producers);
  payload.U64(manifest.max_batch);
  payload.U8(manifest.overload);
  payload.U64(manifest.shards.size());
  for (const CheckpointShardEntry& entry : manifest.shards) {
    payload.U64(entry.file.size());
    payload.Bytes(entry.file.data(), entry.file.size());
    payload.U64(entry.epoch);
    payload.U64(entry.appended);
    payload.U64(entry.checksum);
  }
  payload.U64(manifest.queries_file.size());
  payload.Bytes(manifest.queries_file.data(), manifest.queries_file.size());
  payload.U64(manifest.queries_checksum);
  payload.U64(manifest.features.size());
  for (const CheckpointFeatureEntry& entry : manifest.features) {
    payload.U64(entry.file.size());
    payload.Bytes(entry.file.data(), entry.file.size());
    payload.U64(entry.checksum);
  }
  payload.U64(manifest.net_file.size());
  payload.Bytes(manifest.net_file.data(), manifest.net_file.size());
  payload.U64(manifest.net_checksum);
  payload.U64(manifest.placement_file.size());
  payload.Bytes(manifest.placement_file.data(),
                manifest.placement_file.size());
  payload.U64(manifest.placement_checksum);
  payload.U64(manifest.edges.size());
  for (const CheckpointFeatureEntry& entry : manifest.edges) {
    payload.U64(entry.file.size());
    payload.Bytes(entry.file.data(), entry.file.size());
    payload.U64(entry.checksum);
  }

  Writer envelope;
  envelope.Bytes(kManifestMagic, sizeof(kManifestMagic));
  envelope.U32(kManifestVersion);
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());
  return std::move(envelope.TakeBuffer());
}

Result<CheckpointManifest> ParseManifest(const std::string& bytes) {
  if (bytes.size() < sizeof(kManifestMagic) + 4 + 8) {
    return Status::InvalidArgument("checkpoint manifest too small");
  }
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) !=
      0) {
    return Status::InvalidArgument(
        "not a checkpoint manifest (bad magic)");
  }
  Reader header(bytes);
  {
    // Skip the magic by re-reading it; Reader has no Seek.
    std::uint8_t b = 0;
    for (std::size_t i = 0; i < sizeof(kManifestMagic); ++i) {
      SD_RETURN_NOT_OK(header.U8(&b));
    }
  }
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SD_RETURN_NOT_OK(header.U32(&version));
  SD_RETURN_NOT_OK(header.U64(&checksum));
  if (version < kMinManifestVersion || version > kManifestVersion) {
    return Status::InvalidArgument("unsupported manifest version " +
                                   std::to_string(version));
  }
  const std::string payload = bytes.substr(sizeof(kManifestMagic) + 12);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument("checkpoint manifest checksum mismatch");
  }

  Reader reader(payload);
  CheckpointManifest manifest;
  SD_RETURN_NOT_OK(reader.U64(&manifest.seq));
  SD_RETURN_NOT_OK(reader.U64(&manifest.num_streams));
  SD_RETURN_NOT_OK(reader.U64(&manifest.num_shards));
  SD_RETURN_NOT_OK(reader.U64(&manifest.queue_capacity));
  SD_RETURN_NOT_OK(reader.U64(&manifest.max_producers));
  SD_RETURN_NOT_OK(reader.U64(&manifest.max_batch));
  SD_RETURN_NOT_OK(reader.U8(&manifest.overload));
  std::uint64_t num_entries = 0;
  SD_RETURN_NOT_OK(reader.U64(&num_entries));
  if (num_entries > reader.remaining() / kMinShardEntryBytes) {
    return Status::InvalidArgument("manifest shard count out of range");
  }
  if (num_entries != manifest.num_shards) {
    return Status::InvalidArgument(
        "manifest shard entry count disagrees with shard count");
  }
  manifest.shards.resize(num_entries);
  for (CheckpointShardEntry& entry : manifest.shards) {
    SD_RETURN_NOT_OK(ReadFileName(&reader, &entry.file));
    SD_RETURN_NOT_OK(reader.U64(&entry.epoch));
    SD_RETURN_NOT_OK(reader.U64(&entry.appended));
    SD_RETURN_NOT_OK(reader.U64(&entry.checksum));
  }
  if (version >= 2) {
    SD_RETURN_NOT_OK(ReadFileName(&reader, &manifest.queries_file));
    SD_RETURN_NOT_OK(reader.U64(&manifest.queries_checksum));
  }
  if (version >= 3) {
    std::uint64_t num_features = 0;
    SD_RETURN_NOT_OK(reader.U64(&num_features));
    // Each entry is at least a name length plus a checksum.
    if (num_features > reader.remaining() / 16) {
      return Status::InvalidArgument(
          "manifest feature entry count out of range");
    }
    if (num_features != 0 && num_features != manifest.num_shards) {
      return Status::InvalidArgument(
          "manifest feature entry count disagrees with shard count");
    }
    manifest.features.resize(num_features);
    for (CheckpointFeatureEntry& entry : manifest.features) {
      SD_RETURN_NOT_OK(ReadFileName(&reader, &entry.file));
      SD_RETURN_NOT_OK(reader.U64(&entry.checksum));
    }
  }
  if (version >= 4) {
    SD_RETURN_NOT_OK(ReadFileName(&reader, &manifest.net_file));
    SD_RETURN_NOT_OK(reader.U64(&manifest.net_checksum));
  }
  if (version >= 6) {
    SD_RETURN_NOT_OK(ReadFileName(&reader, &manifest.placement_file));
    SD_RETURN_NOT_OK(reader.U64(&manifest.placement_checksum));
    std::uint64_t num_edges = 0;
    SD_RETURN_NOT_OK(reader.U64(&num_edges));
    if (num_edges > reader.remaining() / 16) {
      return Status::InvalidArgument(
          "manifest edge entry count exceeds payload");
    }
    if (num_edges != 0 && num_edges != manifest.num_shards) {
      return Status::InvalidArgument(
          "manifest edge entry count disagrees with the shard count");
    }
    manifest.edges.resize(num_edges);
    for (CheckpointFeatureEntry& entry : manifest.edges) {
      SD_RETURN_NOT_OK(ReadFileName(&reader, &entry.file));
      SD_RETURN_NOT_OK(reader.U64(&entry.checksum));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("manifest has trailing bytes");
  }
  return manifest;
}

Result<CheckpointManifest> FindLatestValidCheckpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("checkpoint directory not found: " + dir);
  }

  // Candidate manifests, newest first.
  std::vector<std::pair<std::uint64_t, std::string>> manifests;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    std::uint64_t seq = 0;
    if (name.rfind("manifest-", 0) == 0 && ParseSeqFromName(name, &seq)) {
      manifests.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(manifests.begin(), manifests.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  Status last_error =
      Status::NotFound("no checkpoint manifest in " + dir);
  for (const auto& [seq, path] : manifests) {
    Result<std::string> bytes = ReadFileToString(path);
    if (!bytes.ok()) {
      last_error = bytes.status();
      continue;
    }
    Result<CheckpointManifest> parsed = ParseManifest(bytes.value());
    if (!parsed.ok()) {
      last_error = parsed.status();
      continue;
    }
    CheckpointManifest manifest = std::move(parsed).value();
    // A manifest commits a checkpoint only if every file it names is
    // present and whole. Verify content checksums before accepting.
    bool complete = true;
    for (const CheckpointShardEntry& entry : manifest.shards) {
      Result<std::string> shard_bytes =
          ReadFileToString((fs::path(dir) / entry.file).string());
      if (!shard_bytes.ok() || Fnv1a(shard_bytes.value()) != entry.checksum) {
        last_error = Status::InvalidArgument(
            "checkpoint " + std::to_string(seq) + " shard file " +
            entry.file + " missing or corrupt");
        complete = false;
        break;
      }
    }
    if (complete) {
      for (const CheckpointFeatureEntry& entry : manifest.features) {
        Result<std::string> feature_bytes =
            ReadFileToString((fs::path(dir) / entry.file).string());
        if (!feature_bytes.ok() ||
            Fnv1a(feature_bytes.value()) != entry.checksum) {
          last_error = Status::InvalidArgument(
              "checkpoint " + std::to_string(seq) + " feature file " +
              entry.file + " missing or corrupt");
          complete = false;
          break;
        }
      }
    }
    if (complete && !manifest.queries_file.empty()) {
      Result<std::string> query_bytes =
          ReadFileToString((fs::path(dir) / manifest.queries_file).string());
      if (!query_bytes.ok() ||
          Fnv1a(query_bytes.value()) != manifest.queries_checksum) {
        last_error = Status::InvalidArgument(
            "checkpoint " + std::to_string(seq) + " query registry file " +
            manifest.queries_file + " missing or corrupt");
        complete = false;
      }
    }
    if (complete && !manifest.net_file.empty()) {
      Result<std::string> net_bytes =
          ReadFileToString((fs::path(dir) / manifest.net_file).string());
      if (!net_bytes.ok() ||
          Fnv1a(net_bytes.value()) != manifest.net_checksum) {
        last_error = Status::InvalidArgument(
            "checkpoint " + std::to_string(seq) + " net state file " +
            manifest.net_file + " missing or corrupt");
        complete = false;
      }
    }
    if (complete) {
      for (const CheckpointFeatureEntry& entry : manifest.edges) {
        Result<std::string> edge_bytes =
            ReadFileToString((fs::path(dir) / entry.file).string());
        if (!edge_bytes.ok() ||
            Fnv1a(edge_bytes.value()) != entry.checksum) {
          last_error = Status::InvalidArgument(
              "checkpoint " + std::to_string(seq) + " edge file " +
              entry.file + " missing or corrupt");
          complete = false;
          break;
        }
      }
    }
    if (complete && !manifest.placement_file.empty()) {
      Result<std::string> placement_bytes = ReadFileToString(
          (fs::path(dir) / manifest.placement_file).string());
      if (!placement_bytes.ok() ||
          Fnv1a(placement_bytes.value()) != manifest.placement_checksum) {
        last_error = Status::InvalidArgument(
            "checkpoint " + std::to_string(seq) + " placement file " +
            manifest.placement_file + " missing or corrupt");
        complete = false;
      }
    }
    if (complete) return manifest;
  }
  return last_error;
}

void GarbageCollectCheckpoints(const std::string& dir,
                               std::uint64_t keep_min_seq) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    std::error_code remove_ec;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), remove_ec);
      continue;
    }
    std::uint64_t seq = 0;
    if (ParseSeqFromName(name, &seq) && seq < keep_min_seq) {
      fs::remove(entry.path(), remove_ec);
    }
  }
}

}  // namespace stardust
