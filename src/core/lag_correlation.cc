#include "core/lag_correlation.h"

#include <cmath>

#include "common/check.h"
#include "transform/feature.h"

namespace stardust {

Result<std::unique_ptr<LagCorrelationMonitor>> LagCorrelationMonitor::Create(
    const StardustConfig& config, std::size_t num_streams, double radius,
    std::size_t max_lag) {
  if (config.transform != TransformKind::kDwt ||
      config.normalization != Normalization::kZNorm) {
    return Status::InvalidArgument(
        "lag correlation requires the z-normalized DWT transform");
  }
  if (config.update_period != config.base_window ||
      config.box_capacity != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    return Status::InvalidArgument(
        "lag correlation uses the batch algorithm (uniform T == W, c == 1)");
  }
  const std::size_t n = config.LevelWindow(config.num_levels - 1);
  if (max_lag % config.base_window != 0) {
    return Status::InvalidArgument(
        "max_lag must be a multiple of the base window");
  }
  if (config.history < n + max_lag) {
    return Status::InvalidArgument(
        "history must cover the correlation window plus the lag horizon");
  }
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  if (radius < 0.0) return Status::InvalidArgument("negative radius");
  Result<std::unique_ptr<Stardust>> core = Stardust::Create(config);
  if (!core.ok()) return core.status();
  return std::unique_ptr<LagCorrelationMonitor>(new LagCorrelationMonitor(
      std::move(core).value(), num_streams, radius, max_lag));
}

LagCorrelationMonitor::LagCorrelationMonitor(std::unique_ptr<Stardust> core,
                                             std::size_t num_streams,
                                             double radius,
                                             std::size_t max_lag)
    : core_(std::move(core)),
      features_(core_->config().coefficients),
      radius_(radius),
      max_lag_(max_lag),
      top_level_(core_->config().num_levels - 1) {
  for (std::size_t i = 0; i < num_streams; ++i) core_->AddStream();
}

Status LagCorrelationMonitor::AppendAll(const std::vector<double>& values) {
  if (values.size() != core_->num_streams()) {
    return Status::InvalidArgument("value count != stream count");
  }
  for (StreamId i = 0; i < values.size(); ++i) {
    SD_RETURN_NOT_OK(core_->Append(i, values[i]));
  }
  const std::uint64_t now = core_->summarizer(0).now();
  const std::size_t n =
      core_->config().LevelWindow(core_->config().num_levels - 1);
  const std::size_t w_step = core_->config().update_period;
  if (now >= n && (now - n) % w_step == 0) {
    SD_RETURN_NOT_OK(Detect(now - 1));
  }
  return Status::OK();
}

Status LagCorrelationMonitor::Detect(std::uint64_t t) {
  const std::size_t m = core_->num_streams();
  const std::size_t w = core_->config().base_window;
  const std::size_t num_lags = max_lag_ / w;  // lags 0..num_lags rounds
  const std::size_t n =
      core_->config().LevelWindow(core_->config().num_levels - 1);

  // Expire entries older than the lag horizon, then insert this round's
  // features.
  while (!live_.empty() && live_.front().round + num_lags < round_) {
    const LiveEntry& old = live_.front();
    SD_RETURN_NOT_OK(features_.Delete(
        Mbr::FromPoint(old.feature),
        MakeRecordId(old.stream, old.round % (num_lags + 2))));
    live_.pop_front();
  }
  for (StreamId i = 0; i < m; ++i) {
    const FeatureBox* box = core_->summarizer(i).thread(top_level_).Find(t);
    SD_CHECK(box != nullptr);
    const Point& feature = box->extent.lo();  // c == 1: a point
    SD_RETURN_NOT_OK(features_.Insert(
        Mbr::FromPoint(feature),
        MakeRecordId(i, round_ % (num_lags + 2))));
    live_.push_back({feature, i, round_});
  }

  // One range query per stream; hits decode into (partner, lag).
  last_round_.clear();
  std::vector<RTreeEntry> hits;
  std::vector<double> window;
  // Lazily z-normalized windows: follower windows end at t, leader
  // windows end at t − lag; cache per (stream, lag round).
  std::vector<std::vector<std::vector<double>>> cache(
      m, std::vector<std::vector<double>>(num_lags + 1));
  auto znorm_of = [&](StreamId s,
                      std::size_t lag_rounds) -> Result<const std::vector<double>*> {
    auto& slot = cache[s][lag_rounds];
    if (slot.empty()) {
      SD_RETURN_NOT_OK(core_->summarizer(s).GetWindow(
          t - lag_rounds * w, n, &window));
      slot = ZNormalize(window);
    }
    return &slot;
  };
  for (StreamId i = 0; i < m; ++i) {
    const Point& current = live_[live_.size() - m + i].feature;
    hits.clear();
    features_.SearchWithin(current, radius_, &hits);
    for (const RTreeEntry& hit : hits) {
      const StreamId j = RecordStream(hit.id);
      const std::uint64_t hit_slot = RecordSeq(hit.id);
      // Decode the round from the slot (slots cycle mod num_lags + 2 and
      // only rounds in [round_ - num_lags, round_] are live).
      std::uint64_t hit_round = round_;
      while (hit_round % (num_lags + 2) != hit_slot) --hit_round;
      const std::size_t lag_rounds =
          static_cast<std::size_t>(round_ - hit_round);
      const std::size_t lag = lag_rounds * w;
      if (lag == 0 && j <= i) continue;  // lag-0 pairs counted once
      ++stats_.candidates;
      Result<const std::vector<double>*> za = znorm_of(i, 0);
      if (!za.ok()) return za.status();
      Result<const std::vector<double>*> zb = znorm_of(j, lag_rounds);
      if (!zb.ok()) return zb.status();
      const double d2 = Dist2(*za.value(), *zb.value());
      const bool verified = d2 <= radius_ * radius_;
      if (verified) ++stats_.true_pairs;
      last_round_.push_back({j, i, lag, std::sqrt(d2), verified});
    }
  }
  ++round_;
  return Status::OK();
}

}  // namespace stardust
