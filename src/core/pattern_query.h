// Pattern monitoring queries (Section 5.2).
//
// Two search algorithms, matching the two index-construction algorithms:
//
//  - QueryOnline (Algorithm 3): for online-built (T = 1, boxed) indexes.
//    The query is partitioned by the binary representation of |Q|/W into
//    sub-queries of increasing resolution, anchored at the query's most
//    recent end. A range query at the first sub-query's level seeds the
//    candidate set; hierarchical radius refinement (Kahveci & Singh)
//    shrinks the remaining budget with d_min of each further sub-query to
//    the candidate's boxes, following the per-stream MBR threads.
//
//  - QueryBatch (Algorithm 4): for batch-built (c = 1, T = W) indexes.
//    All W·p prefix/disjoint-piece features of the query are gathered into
//    one query MBR, enlarged by the multi-piece radius, and one range
//    query retrieves candidate features; alignments are reconstructed and
//    piece-filtered before exact verification.
//
// Distances are Euclidean between unit-hypersphere-normalized windows
// (Equation 2). Because that normalization divides by √w·R_max, distances
// of sub-windows of different lengths do not add directly; both algorithms
// therefore track the refinement budget in *unnormalized* squared distance
// (d²_unnorm = d²_norm · w · R_max²), which restores additivity and keeps
// every pruning step sound. The paper's r/√p enlargement is the special
// case of this arithmetic for unnormalized windows.
#ifndef STARDUST_CORE_PATTERN_QUERY_H_
#define STARDUST_CORE_PATTERN_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/stardust.h"

namespace stardust {

/// A verified match: the stream window ending at `end_time` is within the
/// query radius of the query sequence.
struct PatternMatch {
  StreamId stream = 0;
  std::uint64_t end_time = 0;
  /// Normalized Euclidean distance to the query.
  double distance = 0.0;
};

/// Result of one pattern query.
struct PatternResult {
  /// Distinct candidate positions that were exact-checked.
  std::uint64_t candidates = 0;
  /// Candidate positions whose raw window had already left the history
  /// buffer and could not be verified (skipped, not counted as candidates).
  std::uint64_t unverifiable = 0;
  std::vector<PatternMatch> matches;

  /// True matches / candidates checked; 1.0 when nothing was retrieved.
  double Precision() const {
    return candidates == 0
               ? 1.0
               : static_cast<double>(matches.size()) /
                     static_cast<double>(candidates);
  }
};

/// An online pattern query preprocessed for repeated execution: the
/// per-query work of Algorithm 3 that does not depend on stream state —
/// the decomposition of |Q|/W into pieces with their DWT features,
/// offsets, and unnormalized budget scales, plus the normalized query for
/// exact verification. Compiled once per registered query by the plan
/// compiler (query/eval_plan) and executed per batch via QueryCompiled.
struct CompiledPatternQuery {
  struct Piece {
    std::size_t level = 0;
    Point feature;
    std::size_t offset = 0;  // distance from query end to piece end
    double scale = 0.0;      // unnormalized-budget scale of the length
  };
  std::vector<double> query;       // raw query values
  std::vector<double> query_norm;  // normalized per the config
  double radius = 0.0;
  double total_budget = 0.0;  // r² in unnormalized squared distance
  std::vector<Piece> pieces;  // most recent piece first
};

/// Validates and preprocesses an online pattern query against `config`
/// (same preconditions and error messages as QueryOnline): requires a
/// uniform T == 1 indexed DWT configuration, radius >= 0, and |query| a
/// positive multiple of W with |Q|/W < 2^num_levels.
Result<CompiledPatternQuery> CompilePatternQuery(
    const StardustConfig& config, const std::vector<double>& query,
    double radius);

/// Pattern search over a Stardust instance (configured with the DWT
/// transform, unit-sphere normalization and index_features).
class PatternQueryEngine {
 public:
  explicit PatternQueryEngine(const Stardust& core) : core_(core) {}

  /// Algorithm 3. Requires an online configuration (update_period == 1).
  /// |query| must be a positive multiple of W with |Q|/W < 2^num_levels.
  /// Equivalent to CompilePatternQuery + QueryCompiled.
  Result<PatternResult> QueryOnline(const std::vector<double>& query,
                                    double radius) const;

  /// Algorithm 3 on a precompiled query. `compiled` must have been built
  /// by CompilePatternQuery against this core's configuration. When
  /// `min_end` is non-null it points at one minimum reportable match
  /// end-time per stream (indexed by StreamId); candidate runs ending
  /// before a stream's minimum are pruned at seed time, before
  /// refinement and exact verification. Callers that deduplicate
  /// matches with a per-stream watermark (the shard pattern stage) pass
  /// the watermark here so standing historical matches are not
  /// re-verified every batch.
  Result<PatternResult> QueryCompiled(
      const CompiledPatternQuery& compiled,
      const std::uint64_t* min_end = nullptr) const;

  /// Incremental Algorithm 3 for standing (continuous) queries: evaluates
  /// only match-end positions not yet finally decided, instead of
  /// range-searching the whole level index every batch. `eval_floor`
  /// points at one cursor per stream — the first end position not yet
  /// evaluated — which the call advances past every position it decides.
  ///
  /// Soundness of evaluate-once: stream windows and DWT features are
  /// immutable once appended, box extents only grow (so the d_min budget
  /// chain is a sound lower bound at any evaluation time), and the final
  /// check is exact — so a position's match result is final the first
  /// time every piece feature for it exists. Evaluating each position
  /// exactly once therefore yields, batch over batch, the same cumulative
  /// match stream as re-running QueryCompiled and keeping only matches at
  /// new positions; the golden-replay and correlator equivalence suites
  /// pin this down against the full-search path.
  Result<PatternResult> QueryCompiledIncremental(
      const CompiledPatternQuery& compiled, std::uint64_t* eval_floor) const;

  /// Algorithm 4. Requires a batch configuration (update_period == W,
  /// box_capacity == 1) and |query| >= 2W - 1.
  Result<PatternResult> QueryBatch(const std::vector<double>& query,
                                   double radius) const;

  /// The (up to) k closest stream windows to the query, sorted by
  /// ascending distance — an extension built on the online index: a
  /// best-first k-NN probe of the first sub-query's level (Roussopoulos
  /// et al.) seeds a sound lower bound on the k-th match distance, which
  /// an expanding-radius sequence of Algorithm-3 range queries then
  /// confirms. Same configuration requirements as QueryOnline.
  Result<std::vector<PatternMatch>> TopKOnline(
      const std::vector<double>& query, std::size_t k) const;

 private:
  /// Candidate during hierarchical refinement: a run of possible match end
  /// positions of one stream plus the remaining unnormalized budget.
  struct Candidate {
    StreamId stream = 0;
    std::uint64_t end_lo = 0;
    std::uint64_t end_hi = 0;
    double budget = 0.0;  // remaining unnormalized squared distance
  };

  /// Exact-checks distinct (stream, end) positions against the already
  /// normalized query; fills `result`.
  void VerifyPositions(const std::vector<double>& query_norm, double radius,
                       std::vector<std::pair<StreamId, std::uint64_t>>*
                           positions,
                       PatternResult* result) const;

  const Stardust& core_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_PATTERN_QUERY_H_
