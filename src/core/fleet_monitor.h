// Fleet aggregate monitoring: the multi-stream deployment of Section 2.1
// ("a system that has M input streams"), wiring one aggregate monitor per
// stream under a single facade with fleet-wide statistics and "who is
// alarming right now" queries — the entry point a network/sensor
// operations user actually holds.
#ifndef STARDUST_CORE_FLEET_MONITOR_H_
#define STARDUST_CORE_FLEET_MONITOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/aggregate_monitor.h"

namespace stardust {

/// Monitors M streams over a shared set of window thresholds.
class FleetAggregateMonitor {
 public:
  /// Same parameter requirements as AggregateMonitor::Create; every
  /// stream shares the configuration and thresholds.
  static Result<std::unique_ptr<FleetAggregateMonitor>> Create(
      const StardustConfig& config, std::vector<WindowThreshold> thresholds,
      std::size_t num_streams);

  std::size_t num_streams() const { return monitors_.size(); }
  /// Windows monitored per stream (identical across the fleet). Safe on
  /// any instance: an empty fleet (which Create rejects, but defensive
  /// callers may still hold) reports zero windows instead of invoking UB.
  std::size_t num_windows() const {
    return monitors_.empty() ? 0 : monitors_[0]->num_windows();
  }
  /// Shared threshold of one monitored window (same for every stream).
  const WindowThreshold& threshold(std::size_t window_index) const {
    return monitors_[0]->threshold(window_index);
  }

  /// Feeds one value of one stream.
  Status Append(StreamId stream, double value);
  /// Feeds a run of consecutive values of one stream. Equivalent to n
  /// Append calls bit-for-bit (see AggregateMonitor::AppendRun); the
  /// engine's batched maintenance path.
  Status AppendRun(StreamId stream, const double* values, std::size_t n);
  /// Feeds one synchronized arrival across all streams.
  Status AppendAll(const std::vector<double>& values);

  const AlarmStats& stats(StreamId stream, std::size_t window_index) const {
    return monitors_[stream]->stats(window_index);
  }
  /// Counters summed over all windows of one stream.
  AlarmStats StreamTotal(StreamId stream) const {
    return monitors_[stream]->TotalStats();
  }
  /// Counters summed over the whole fleet.
  AlarmStats FleetTotal() const;

  /// Streams whose verified aggregate currently exceeds the threshold of
  /// the given window (an Algorithm-2 query per stream, filter first).
  Result<std::vector<StreamId>> CurrentlyAlarming(
      std::size_t window_index) const;

  const AggregateMonitor& monitor(StreamId stream) const {
    return *monitors_[stream];
  }

  /// Shared Stardust configuration of the fleet's monitors.
  const StardustConfig& config() const {
    return monitors_[0]->stardust().config();
  }

  /// Snapshot support (core/snapshot.cc): serializes every monitor's
  /// state, in stream order. Configuration, thresholds, and the stream
  /// count are serialized by the snapshot envelope.
  void SaveTo(Writer* writer) const;
  /// Restores a fleet serialized with SaveTo into this instance; it must
  /// have been created with the same configuration, thresholds, and
  /// stream count the snapshot was taken with.
  Status RestoreFrom(Reader* reader);

  /// Values ever appended to one stream — a const snapshot accessor so
  /// concurrent readers (e.g. the ingestion engine's cross-shard reads)
  /// never need the mutable Stardust surface.
  std::uint64_t AppendCount(StreamId stream) const;

  // --- Elastic placement support (engine/shard.cc migration) ------------

  /// Appends one fresh monitor (same config + thresholds as the fleet)
  /// and returns its stream index.
  Result<StreamId> AddStream();
  /// Replaces one monitor with a fresh one — the tombstone half of a
  /// stream migration; the slot can later be reused via
  /// RestoreStreamFrom.
  Status ResetStream(StreamId stream);
  /// Per-stream slice of SaveTo: serializes exactly one monitor.
  Status SaveStreamTo(StreamId stream, Writer* writer) const;
  /// Installs a SaveStreamTo slice into one monitor slot (bit-exact,
  /// same contract as AggregateMonitor::RestoreFrom).
  Status RestoreStreamFrom(StreamId stream, Reader* reader);

 private:
  explicit FleetAggregateMonitor(
      std::vector<std::unique_ptr<AggregateMonitor>> monitors);

  std::vector<std::unique_ptr<AggregateMonitor>> monitors_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_FLEET_MONITOR_H_
