#include "core/surprise_monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "transform/feature.h"

namespace stardust {

Result<std::unique_ptr<SurpriseMonitor>> SurpriseMonitor::Create(
    const StardustConfig& config, std::size_t num_streams, double threshold,
    std::vector<std::size_t> monitor_levels, bool within_stream) {
  if (config.transform != TransformKind::kDwt || !config.index_features) {
    return Status::InvalidArgument(
        "surprise monitoring requires an indexed DWT configuration");
  }
  if (config.update_period != 1 || config.box_capacity != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    return Status::InvalidArgument(
        "surprise monitoring requires exact point features "
        "(online algorithm with c == 1)");
  }
  if (threshold <= 0.0) {
    return Status::InvalidArgument("threshold must be positive");
  }
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  if (monitor_levels.empty()) {
    monitor_levels.push_back(config.num_levels - 1);
  }
  std::sort(monitor_levels.begin(), monitor_levels.end());
  monitor_levels.erase(
      std::unique(monitor_levels.begin(), monitor_levels.end()),
      monitor_levels.end());
  for (std::size_t level : monitor_levels) {
    if (level >= config.num_levels) {
      return Status::InvalidArgument("monitored level out of range");
    }
  }
  Result<std::unique_ptr<Stardust>> core = Stardust::Create(config);
  if (!core.ok()) return core.status();
  auto monitor = std::unique_ptr<SurpriseMonitor>(
      new SurpriseMonitor(std::move(core).value(), threshold,
                          std::move(monitor_levels), within_stream));
  for (std::size_t i = 0; i < num_streams; ++i) {
    monitor->core_->AddStream();
  }
  return monitor;
}

SurpriseMonitor::SurpriseMonitor(std::unique_ptr<Stardust> core,
                                 double threshold,
                                 std::vector<std::size_t> monitor_levels,
                                 bool within_stream)
    : core_(std::move(core)),
      threshold_(threshold),
      monitored_levels_(std::move(monitor_levels)),
      within_stream_(within_stream) {}

Status SurpriseMonitor::Append(StreamId stream, double value,
                               std::vector<SurpriseEvent>* new_events) {
  SD_RETURN_NOT_OK(core_->Append(stream, value));
  const std::uint64_t t = core_->summarizer(stream).now() - 1;
  for (std::size_t level : monitored_levels_) {
    // Warm up until at least one disjoint earlier window exists —
    // "never seen anything comparable" is not the same as "novel".
    if (t + 1 < 2 * core_->config().LevelWindow(level)) continue;
    SD_RETURN_NOT_OK(Check(stream, level, t, new_events));
  }
  return Status::OK();
}

Status SurpriseMonitor::Check(StreamId stream, std::size_t level,
                              std::uint64_t t,
                              std::vector<SurpriseEvent>* new_events) {
  ++stats_.checks;
  const std::size_t w = core_->config().LevelWindow(level);
  const StreamSummarizer& summarizer = core_->summarizer(stream);
  const FeatureBox* box = summarizer.thread(level).Find(t);
  SD_CHECK(box != nullptr);
  const Point& feature = box->extent.lo();  // c == 1: a point

  // Range query over the level index (all streams' features). Verify the
  // closest features first: the nearest candidate almost always disproves
  // a non-novel window in one exact check.
  std::vector<RTreeEntry> hits;
  core_->index(level).SearchWithin(feature, threshold_, &hits);
  std::sort(hits.begin(), hits.end(),
            [&](const RTreeEntry& a, const RTreeEntry& b) {
              return a.box.MinDist2(feature) < b.box.MinDist2(feature);
            });

  // Verify the candidates: any disjoint earlier window whose exact
  // distance is within the threshold disproves the surprise.
  const std::uint64_t anchor = w - 1;  // first feature time, stride 1
  std::vector<double> current_raw, other_raw;
  std::vector<double> current;  // normalized lazily on first verification
  double nearest = std::numeric_limits<double>::infinity();
  bool surprising = true;
  for (const RTreeEntry& hit : hits) {
    const StreamId other = RecordStream(hit.id);
    const std::uint64_t other_end = anchor + RecordSeq(hit.id);
    if (within_stream_ && other != stream) continue;
    // Exclude the window itself and anything overlapping it in the same
    // stream (those are trivially similar).
    if (other == stream && other_end + w > t) continue;
    ++stats_.verifications;
    if (current.empty()) {
      SD_RETURN_NOT_OK(summarizer.GetWindow(t, w, &current_raw));
      current = NormalizeWindow(current_raw, core_->config().normalization,
                                core_->config().r_max);
    }
    const Status st =
        core_->summarizer(other).GetWindow(other_end, w, &other_raw);
    if (!st.ok()) {
      // The raw history has partially expired: we cannot prove novelty
      // against this candidate, so conservatively suppress the event.
      surprising = false;
      break;
    }
    const std::vector<double> other_norm = NormalizeWindow(
        other_raw, core_->config().normalization, core_->config().r_max);
    const double d = std::sqrt(Dist2(current, other_norm));
    nearest = std::min(nearest, d);
    if (d <= threshold_) {
      surprising = false;
      break;
    }
  }
  if (!surprising) return Status::OK();
  // Debounce: a novel episode spans many overlapping windows; report it
  // once per window length.
  auto& last = last_event_[{stream, level}];
  if (last.has_value && t < last.time + w) return Status::OK();
  last.has_value = true;
  last.time = t;
  ++stats_.events;
  if (new_events != nullptr) {
    new_events->push_back({stream, level, w, t, nearest});
  }
  return Status::OK();
}

}  // namespace stardust
