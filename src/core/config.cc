#include "core/config.h"

#include "dwt/haar.h"

namespace stardust {

Status StardustConfig::Validate() const {
  if (base_window == 0) {
    return Status::InvalidArgument("base_window must be positive");
  }
  if (num_levels == 0) {
    return Status::InvalidArgument("num_levels must be positive");
  }
  if (num_levels > 32) {
    return Status::InvalidArgument("num_levels too large");
  }
  if (box_capacity == 0) {
    return Status::InvalidArgument("box_capacity must be positive");
  }
  if (update_period == 0) {
    return Status::InvalidArgument("update_period must be positive");
  }
  if (update_period > 1 && box_capacity != 1) {
    return Status::InvalidArgument(
        "batch algorithm (update_period > 1) requires box_capacity == 1");
  }
  if (update_schedule == UpdateSchedule::kDyadic) {
    if (box_capacity != 1) {
      return Status::InvalidArgument(
          "the dyadic (SWAT) schedule is a batch algorithm: "
          "box_capacity must be 1");
    }
    if (LevelPeriod(num_levels - 1) / update_period !=
        (std::size_t{1} << (num_levels - 1))) {
      return Status::InvalidArgument("dyadic level period overflow");
    }
  }
  const std::size_t top_window = LevelWindow(num_levels - 1);
  if (top_window / base_window != (std::size_t{1} << (num_levels - 1))) {
    return Status::InvalidArgument("level window overflow");
  }
  if (history < top_window) {
    return Status::InvalidArgument(
        "history must cover the largest level window");
  }
  if (transform == TransformKind::kDwt) {
    if (!IsPowerOfTwo(base_window)) {
      return Status::InvalidArgument(
          "DWT transform requires a power-of-two base_window");
    }
    if (!IsPowerOfTwo(coefficients)) {
      return Status::InvalidArgument(
          "DWT transform requires a power-of-two coefficient count");
    }
    if (coefficients > base_window) {
      return Status::InvalidArgument(
          "coefficients must not exceed base_window");
    }
    if (normalization == Normalization::kZNorm &&
        coefficients >= base_window) {
      // The z-norm feature skips the identically-zero DC coefficient, so
      // it needs f + 1 coefficients from the base window.
      return Status::InvalidArgument(
          "z-normalized features require coefficients < base_window");
    }
    if (normalization == Normalization::kUnitSphere && r_max <= 0.0) {
      return Status::InvalidArgument("r_max must be positive");
    }
    if (normalization == Normalization::kZNorm && update_period == 1 &&
        !exact_levels) {
      return Status::InvalidArgument(
          "z-normalization is not linear across levels; use the batch "
          "algorithm (update_period == base_window) or exact_levels");
    }
  }
  return Status::OK();
}

}  // namespace stardust
