#include "core/level_state.h"

#include "common/check.h"

namespace stardust {

LevelThread::LevelThread(std::size_t dims, std::size_t capacity,
                         std::size_t stride)
    : dims_(dims), capacity_(capacity), stride_(stride) {
  SD_CHECK(dims > 0);
  SD_CHECK(capacity > 0);
  SD_CHECK(stride > 0);
}

const FeatureBox* LevelThread::Append(std::uint64_t t, const Mbr& feature) {
  SD_DCHECK(feature.dims() == dims_);
  SD_DCHECK(!feature.empty());
  if (!has_first_) {
    has_first_ = true;
    anchor_time_ = t;
  } else {
    SD_DCHECK(t == last_time() + stride_);
  }
  if (boxes_.empty() || boxes_.back().sealed) {
    FeatureBox box;
    box.extent = TakeRecycledExtent();
    box.first_time = t;
    box.seq = next_seq_++;
    boxes_.push_back(std::move(box));
  }
  FeatureBox& box = boxes_.back();
  box.extent.Expand(feature);
  ++box.count;
  if (box.count == capacity_) {
    box.sealed = true;
    return &box;
  }
  return nullptr;
}

const FeatureBox* LevelThread::Find(std::uint64_t t) const {
  if (!has_first_ || boxes_.empty()) return nullptr;
  if (t < anchor_time_ || t > last_time()) return nullptr;
  const std::uint64_t offset = t - anchor_time_;
  if (offset % stride_ != 0) return nullptr;
  const std::uint64_t feature_index = offset / stride_;
  const std::uint64_t seq = feature_index / capacity_;
  return FindBySeq(seq);
}

const FeatureBox* LevelThread::FindBySeq(std::uint64_t seq) const {
  if (boxes_.empty()) return nullptr;
  const std::uint64_t front_seq = boxes_.front().seq;
  if (seq < front_seq) return nullptr;
  const std::uint64_t idx = seq - front_seq;
  if (idx >= boxes_.size()) return nullptr;
  const FeatureBox& box = boxes_[idx];
  // The box exists, but the requested feature may not have been appended
  // yet when the box is still filling; callers check via count/first_time
  // if they need per-feature granularity. Returning the box is correct for
  // extent-based computation (the extent only covers appended features).
  return &box;
}

void LevelThread::ExpireBefore(
    std::uint64_t min_time,
    const std::function<void(const FeatureBox&)>& on_remove) {
  while (!boxes_.empty()) {
    FeatureBox& front = boxes_.front();
    if (!front.sealed) break;  // never drop the box still filling
    const std::uint64_t last_feature_time =
        front.first_time + static_cast<std::uint64_t>(front.count - 1) *
                               stride_;
    if (last_feature_time >= min_time) break;
    if (on_remove) on_remove(front);
    RecycleExtent(&front.extent);
    boxes_.pop_front();
  }
}

std::uint64_t LevelThread::last_time() const {
  SD_CHECK(!boxes_.empty());
  const FeatureBox& back = boxes_.back();
  return back.first_time +
         static_cast<std::uint64_t>(back.count - 1) * stride_;
}

void LevelThread::ForEachBox(
    const std::function<void(const FeatureBox&)>& fn) const {
  for (const FeatureBox& box : boxes_) fn(box);
}

void LevelThread::SaveTo(Writer* writer) const {
  writer->U64(dims_);
  writer->U64(capacity_);
  writer->U64(stride_);
  writer->U8(has_first_ ? 1 : 0);
  writer->U64(anchor_time_);
  writer->U64(next_seq_);
  writer->U64(boxes_.size());
  for (const FeatureBox& box : boxes_) {
    writer->DoubleVector(box.extent.lo());
    writer->DoubleVector(box.extent.hi());
    writer->U64(box.first_time);
    writer->U32(box.count);
    writer->U64(box.seq);
    writer->U8(box.sealed ? 1 : 0);
  }
}

Status LevelThread::RestoreFrom(Reader* reader) {
  std::uint64_t dims = 0, capacity = 0, stride = 0;
  SD_RETURN_NOT_OK(reader->U64(&dims));
  SD_RETURN_NOT_OK(reader->U64(&capacity));
  SD_RETURN_NOT_OK(reader->U64(&stride));
  if (dims != dims_ || capacity != capacity_ || stride != stride_) {
    return Status::InvalidArgument(
        "snapshot thread geometry does not match the configuration");
  }
  std::uint8_t has_first = 0;
  SD_RETURN_NOT_OK(reader->U8(&has_first));
  SD_RETURN_NOT_OK(reader->U64(&anchor_time_));
  SD_RETURN_NOT_OK(reader->U64(&next_seq_));
  has_first_ = has_first != 0;
  std::uint64_t box_count = 0;
  SD_RETURN_NOT_OK(reader->U64(&box_count));
  boxes_.clear();
  std::uint64_t prev_seq = 0;
  for (std::uint64_t i = 0; i < box_count; ++i) {
    FeatureBox box;
    Point lo, hi;
    SD_RETURN_NOT_OK(reader->DoubleVector(&lo, dims_));
    SD_RETURN_NOT_OK(reader->DoubleVector(&hi, dims_));
    if (lo.size() != dims_ || hi.size() != dims_) {
      return Status::InvalidArgument("snapshot box dimensionality mismatch");
    }
    for (std::size_t d = 0; d < dims_; ++d) {
      if (!(lo[d] <= hi[d])) {
        return Status::InvalidArgument("snapshot box has inverted extents");
      }
    }
    box.extent = Mbr(std::move(lo), std::move(hi));
    SD_RETURN_NOT_OK(reader->U64(&box.first_time));
    SD_RETURN_NOT_OK(reader->U32(&box.count));
    SD_RETURN_NOT_OK(reader->U64(&box.seq));
    std::uint8_t sealed = 0;
    SD_RETURN_NOT_OK(reader->U8(&sealed));
    box.sealed = sealed != 0;
    if (box.count == 0 || box.count > capacity_) {
      return Status::InvalidArgument("snapshot box count out of range");
    }
    if (box.sealed != (box.count == capacity_)) {
      return Status::InvalidArgument("snapshot box seal flag inconsistent");
    }
    if (!box.sealed && i + 1 != box_count) {
      return Status::InvalidArgument(
          "snapshot has an unsealed box before the last");
    }
    if (i > 0 && box.seq != prev_seq + 1) {
      return Status::InvalidArgument("snapshot box sequence gap");
    }
    prev_seq = box.seq;
    boxes_.push_back(std::move(box));
  }
  // next_seq_ always points one past the most recent box.
  if (!boxes_.empty() && boxes_.back().seq + 1 != next_seq_) {
    return Status::InvalidArgument("snapshot next_seq inconsistent");
  }
  return Status::OK();
}

}  // namespace stardust
