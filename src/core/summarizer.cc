#include "core/summarizer.h"

#include <cmath>

#include "common/check.h"
#include "dwt/haar.h"
#include "dwt/mbr_transform.h"
#include "transform/feature.h"

namespace stardust {

StreamSummarizer::StreamSummarizer(const StardustConfig& config)
    : config_(config), raw_(config.history) {
  SD_CHECK(config_.Validate().ok());
  threads_.reserve(config_.num_levels);
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    threads_.emplace_back(config_.FeatureDims(), config_.box_capacity,
                          config_.LevelPeriod(j));
  }
}

Status StreamSummarizer::GetWindow(std::uint64_t end_time, std::size_t length,
                                   std::vector<double>* out) const {
  if (length == 0) return Status::InvalidArgument("empty window");
  if (end_time >= raw_.size()) {
    return Status::OutOfRange("window ends in the future");
  }
  if (end_time + 1 < length) {
    return Status::OutOfRange("window starts before the stream");
  }
  const std::uint64_t start = end_time + 1 - length;
  if (start < raw_.first_position()) {
    return Status::OutOfRange("window has left the history of interest");
  }
  raw_.CopyWindow(start, length, out);
  return Status::OK();
}

Point StreamSummarizer::ExactFeatureFromRaw(
    std::vector<double>* window) const {
  if (config_.transform == TransformKind::kAggregate) {
    return AggregateExactFeature(config_.aggregate, *window);
  }
  NormalizeWindowInPlace(window, config_.normalization, config_.r_max);
  if (config_.normalization == Normalization::kZNorm) {
    // A z-normalized window has zero mean, so the leading (scaled-mean)
    // DWT coefficient is identically zero. Keeping it would waste one of
    // the f feature dimensions; use the f coefficients after it instead
    // (any orthonormal-coefficient subset preserves the lower-bound
    // property). StatStream's feature does the same by excluding the DC
    // term of the DFT. Implementation: reduce to the 2f-long
    // approximation vector (whose ordered DWT is the first 2f ordered
    // coefficients of the full transform), then read coefficients 1..f.
    const std::size_t f = config_.coefficients;
    HaarApproxInPlace(window, 2 * f);
    const std::vector<double> prefix = HaarDwt(*window);
    return Point(prefix.begin() + 1, prefix.begin() + 1 + f);
  }
  HaarApproxInPlace(window, config_.coefficients);
  return *window;
}

Result<Point> StreamSummarizer::ExactFeature(std::uint64_t end_time,
                                             std::size_t length) const {
  std::vector<double> window;
  const Status st = GetWindow(end_time, length, &window);
  if (!st.ok()) return st;
  return ExactFeatureFromRaw(&window);
}

void StreamSummarizer::SaveTo(Writer* writer) const {
  writer->U64(raw_.size());
  const std::uint64_t retained = raw_.size() - raw_.first_position();
  std::vector<double> tail;
  raw_.CopyWindow(raw_.first_position(), retained, &tail);
  writer->DoubleVector(tail);
  writer->U64(threads_.size());
  for (const LevelThread& thread : threads_) thread.SaveTo(writer);
}

Status StreamSummarizer::RestoreFrom(Reader* reader) {
  std::uint64_t total = 0;
  SD_RETURN_NOT_OK(reader->U64(&total));
  std::vector<double> tail;
  SD_RETURN_NOT_OK(reader->DoubleVector(&tail, config_.history));
  const std::uint64_t expected_tail =
      total < config_.history ? total : config_.history;
  if (tail.size() != expected_tail) {
    return Status::InvalidArgument("snapshot raw tail size mismatch");
  }
  raw_.RestoreTail(total, tail);
  std::uint64_t thread_count = 0;
  SD_RETURN_NOT_OK(reader->U64(&thread_count));
  if (thread_count != threads_.size()) {
    return Status::InvalidArgument("snapshot level count mismatch");
  }
  for (LevelThread& thread : threads_) {
    SD_RETURN_NOT_OK(thread.RestoreFrom(reader));
  }
  return Status::OK();
}

std::size_t StreamSummarizer::TotalBoxCount() const {
  std::size_t total = 0;
  for (const LevelThread& thread : threads_) total += thread.box_count();
  return total;
}

Mbr StreamSummarizer::ComputeFeature(std::size_t level, std::uint64_t t) {
  const std::size_t w = config_.LevelWindow(level);
  const bool exact = level == 0 || config_.exact_levels ||
                     config_.LevelPeriod(level) > 1;
  if (exact) {
    const Status st = GetWindow(t, w, &scratch_);
    SD_CHECK(st.ok());
    return Mbr::FromPoint(ExactFeatureFromRaw(&scratch_));
  }
  // Incremental path: merge the level-(j-1) boxes holding the features of
  // the two halves (Algorithm 1, else-branch).
  const std::size_t half = w / 2;
  const FeatureBox* left = threads_[level - 1].Find(t - half);
  const FeatureBox* right = threads_[level - 1].Find(t);
  SD_CHECK(left != nullptr && right != nullptr);
  if (config_.transform == TransformKind::kAggregate) {
    return AggregateMergeExtents(config_.aggregate, left->extent,
                                 right->extent);
  }
  // Unit-sphere normalization divides by √w·R_max; the doubled window
  // needs an extra 1/√2 relative to its halves.
  const double rescale = config_.normalization == Normalization::kUnitSphere
                             ? 1.0 / std::sqrt(2.0)
                             : 1.0;
  return MergeMbrHalvesHaar(left->extent, right->extent, rescale);
}

void StreamSummarizer::Append(double value, std::vector<BoxRef>* sealed,
                              std::vector<BoxRef>* expired) {
  raw_.Push(value);
  const std::uint64_t t = raw_.size() - 1;
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    const std::size_t w = config_.LevelWindow(j);
    if (t + 1 < w) break;  // higher levels have even larger windows
    if ((t + 1 - w) % config_.LevelPeriod(j) != 0) continue;
    const Mbr feature = ComputeFeature(j, t);
    const FeatureBox* sealed_box = threads_[j].Append(t, feature);
    if (sealed_box != nullptr && sealed != nullptr) {
      sealed->push_back({j, sealed_box->extent, sealed_box->seq});
    }
    if (t + 1 > config_.history) {
      const std::uint64_t min_time = t + 1 - config_.history;
      threads_[j].ExpireBefore(min_time, [&](const FeatureBox& box) {
        if (expired != nullptr) {
          expired->push_back({j, box.extent, box.seq});
        }
      });
    }
  }
}

}  // namespace stardust
