#include "core/summarizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dwt/haar.h"
#include "dwt/mbr_transform.h"
#include "transform/feature.h"

namespace stardust {

StreamSummarizer::StreamSummarizer(const StardustConfig& config)
    : config_(config), raw_(config.history) {
  SD_CHECK(config_.Validate().ok());
  threads_.reserve(config_.num_levels);
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    threads_.emplace_back(config_.FeatureDims(), config_.box_capacity,
                          config_.LevelPeriod(j));
  }
  // See FlatRunEligible(): the capacity bound c <= base window guarantees
  // left-merge inputs are final by their merge's arrival time, which is
  // what lets RunLevelPass read them from the post-pass deque.
  flat_eligible_ = config_.transform == TransformKind::kAggregate &&
                   !config_.exact_levels &&
                   config_.box_capacity <= config_.base_window;
  for (std::size_t j = 0; flat_eligible_ && j < config_.num_levels; ++j) {
    if (config_.LevelPeriod(j) != 1) flat_eligible_ = false;
  }
  // RunExactLevelPass eligibility: every level computes exactly from raw
  // (the per-level `exact` predicate of ComputeFeature holds at all j).
  exact_levels_only_ = true;
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    const bool exact =
        j == 0 || config_.exact_levels || config_.LevelPeriod(j) > 1;
    if (!exact) exact_levels_only_ = false;
  }
}

Status StreamSummarizer::GetWindow(std::uint64_t end_time, std::size_t length,
                                   std::vector<double>* out) const {
  if (length == 0) return Status::InvalidArgument("empty window");
  if (end_time >= raw_.size()) {
    return Status::OutOfRange("window ends in the future");
  }
  if (end_time + 1 < length) {
    return Status::OutOfRange("window starts before the stream");
  }
  const std::uint64_t start = end_time + 1 - length;
  if (start < raw_.first_position()) {
    return Status::OutOfRange("window has left the history of interest");
  }
  raw_.CopyWindow(start, length, out);
  return Status::OK();
}

Point StreamSummarizer::ExactFeatureFromRaw(
    std::vector<double>* window) const {
  if (config_.transform == TransformKind::kAggregate) {
    return AggregateExactFeature(config_.aggregate, *window);
  }
  NormalizeWindowInPlace(window, config_.normalization, config_.r_max);
  if (config_.normalization == Normalization::kZNorm) {
    // A z-normalized window has zero mean, so the leading (scaled-mean)
    // DWT coefficient is identically zero. Keeping it would waste one of
    // the f feature dimensions; use the f coefficients after it instead
    // (any orthonormal-coefficient subset preserves the lower-bound
    // property). StatStream's feature does the same by excluding the DC
    // term of the DFT. Implementation: reduce to the 2f-long
    // approximation vector (whose ordered DWT is the first 2f ordered
    // coefficients of the full transform), then read coefficients 1..f.
    const std::size_t f = config_.coefficients;
    HaarApproxInPlace(window, 2 * f);
    const std::vector<double> prefix = HaarDwt(*window);
    return Point(prefix.begin() + 1, prefix.begin() + 1 + f);
  }
  HaarApproxInPlace(window, config_.coefficients);
  return *window;
}

Result<Point> StreamSummarizer::ExactFeature(std::uint64_t end_time,
                                             std::size_t length) const {
  std::vector<double> window;
  const Status st = GetWindow(end_time, length, &window);
  if (!st.ok()) return st;
  return ExactFeatureFromRaw(&window);
}

void StreamSummarizer::SaveTo(Writer* writer) const {
  writer->U64(raw_.size());
  const std::uint64_t retained = raw_.size() - raw_.first_position();
  std::vector<double> tail;
  raw_.CopyWindow(raw_.first_position(), retained, &tail);
  writer->DoubleVector(tail);
  writer->U64(threads_.size());
  for (const LevelThread& thread : threads_) thread.SaveTo(writer);
}

Status StreamSummarizer::RestoreFrom(Reader* reader) {
  std::uint64_t total = 0;
  SD_RETURN_NOT_OK(reader->U64(&total));
  std::vector<double> tail;
  SD_RETURN_NOT_OK(reader->DoubleVector(&tail, config_.history));
  const std::uint64_t expected_tail =
      total < config_.history ? total : config_.history;
  if (tail.size() != expected_tail) {
    return Status::InvalidArgument("snapshot raw tail size mismatch");
  }
  raw_.RestoreTail(total, tail);
  std::uint64_t thread_count = 0;
  SD_RETURN_NOT_OK(reader->U64(&thread_count));
  if (thread_count != threads_.size()) {
    return Status::InvalidArgument("snapshot level count mismatch");
  }
  for (LevelThread& thread : threads_) {
    SD_RETURN_NOT_OK(thread.RestoreFrom(reader));
  }
  return Status::OK();
}

std::size_t StreamSummarizer::TotalBoxCount() const {
  std::size_t total = 0;
  for (const LevelThread& thread : threads_) total += thread.box_count();
  return total;
}

Mbr StreamSummarizer::ComputeFeature(std::size_t level, std::uint64_t t) {
  const std::size_t w = config_.LevelWindow(level);
  const bool exact = level == 0 || config_.exact_levels ||
                     config_.LevelPeriod(level) > 1;
  if (exact) {
    const Status st = GetWindow(t, w, &scratch_);
    SD_CHECK(st.ok());
    return Mbr::FromPoint(ExactFeatureFromRaw(&scratch_));
  }
  // Incremental path: merge the level-(j-1) boxes holding the features of
  // the two halves (Algorithm 1, else-branch).
  const std::size_t half = w / 2;
  const FeatureBox* left = threads_[level - 1].Find(t - half);
  const FeatureBox* right = threads_[level - 1].Find(t);
  SD_CHECK(left != nullptr && right != nullptr);
  if (config_.transform == TransformKind::kAggregate) {
    return AggregateMergeExtents(config_.aggregate, left->extent,
                                 right->extent);
  }
  // Unit-sphere normalization divides by √w·R_max; the doubled window
  // needs an extra 1/√2 relative to its halves.
  const double rescale = config_.normalization == Normalization::kUnitSphere
                             ? 1.0 / std::sqrt(2.0)
                             : 1.0;
  return MergeMbrHalvesHaar(left->extent, right->extent, rescale);
}

void StreamSummarizer::ComputeFeatureInto(std::size_t level, std::uint64_t t,
                                          Mbr* out) {
  const std::size_t w = config_.LevelWindow(level);
  const bool exact = level == 0 || config_.exact_levels ||
                     config_.LevelPeriod(level) > 1;
  if (exact) {
    const std::uint64_t start = t + 1 - w;
    SD_DCHECK(start >= linear_base_);
    SD_DCHECK(start - linear_base_ + w <= linear_.size());
    ExactFeatureIntoFromSpan(
        linear_.data() + static_cast<std::size_t>(start - linear_base_), w,
        out);
    return;
  }
  const std::size_t half = w / 2;
  const FeatureBox* left = threads_[level - 1].Find(t - half);
  const FeatureBox* right = threads_[level - 1].Find(t);
  SD_CHECK(left != nullptr && right != nullptr);
  if (config_.transform == TransformKind::kAggregate) {
    AggregateMergeExtentsInto(config_.aggregate, left->extent, right->extent,
                              out);
    return;
  }
  const double rescale = config_.normalization == Normalization::kUnitSphere
                             ? 1.0 / std::sqrt(2.0)
                             : 1.0;
  MergeMbrHalvesHaarInto(left->extent, right->extent, rescale, out);
}

void StreamSummarizer::ExactFeatureIntoFromSpan(const double* window,
                                                std::size_t w, Mbr* out) {
  if (config_.transform == TransformKind::kAggregate) {
    AggregateExactFeatureInto(config_.aggregate, window, w, out);
    return;
  }
  scratch_.assign(window, window + w);
  NormalizeWindowInPlace(&scratch_, config_.normalization, config_.r_max);
  if (config_.normalization == Normalization::kZNorm) {
    // Same coefficient selection as ExactFeatureFromRaw (skip the zero DC
    // term), via the allocation-free DWT.
    const std::size_t f = config_.coefficients;
    HaarApproxInPlace(&scratch_, 2 * f);
    HaarDwtInto(scratch_, &dwt_out_, &dwt_scratch_);
    out->AssignPoint(dwt_out_.data() + 1, f);
    return;
  }
  HaarApproxInPlace(&scratch_, config_.coefficients);
  out->AssignPoint(scratch_.data(), config_.coefficients);
}

void StreamSummarizer::BeginRun(const double* values, std::size_t n) {
  SD_DCHECK(run_n_ == 0);
  SD_CHECK(n > 0);
  const std::uint64_t t_begin = raw_.size();
  // Stage [oldest value any window of the run can reach, end of run) as
  // one contiguous buffer. The largest window ending at the first run
  // arrival starts max_w - 1 values back.
  const std::size_t max_w = config_.LevelWindow(config_.num_levels - 1);
  std::uint64_t tail_lo = 0;
  if (t_begin >= max_w) tail_lo = t_begin - (max_w - 1);
  if (tail_lo < raw_.first_position()) tail_lo = raw_.first_position();
  const std::size_t tail_n = static_cast<std::size_t>(t_begin - tail_lo);
  linear_.resize(tail_n + n);
  // Two-segment ring copy — no per-element modulo.
  raw_.CopySpanTo(tail_lo, tail_n, linear_.data());
  std::copy(values, values + n, linear_.begin() + tail_n);
  // The ring only feeds the linear buffer (already copied) during the run,
  // so the whole run can be committed to it up front in two segments.
  raw_.PushSpan(values, n);
  linear_base_ = tail_lo;
  run_first_t_ = t_begin;
  run_n_ = n;
}

void StreamSummarizer::AppendRunStep(std::size_t i,
                                     std::vector<BoxRef>* sealed) {
  SD_DCHECK(i < run_n_);
  const std::uint64_t t = run_first_t_ + i;
  // Identical per-arrival schedule to Append; only the feature kernels and
  // the (deferred) expiration differ.
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    const std::size_t w = config_.LevelWindow(j);
    if (t + 1 < w) break;  // higher levels have even larger windows
    if ((t + 1 - w) % config_.LevelPeriod(j) != 0) continue;
    ComputeFeatureInto(j, t, &feature_scratch_);
    const FeatureBox* sealed_box = threads_[j].Append(t, feature_scratch_);
    if (sealed_box != nullptr && sealed != nullptr) {
      sealed->push_back({j, sealed_box->extent, sealed_box->seq});
    }
  }
}

void StreamSummarizer::EndRun(std::vector<BoxRef>* expired) {
  SD_DCHECK(run_n_ > 0);
  // Deferred expiration: ExpireBefore removes exactly the boxes whose last
  // feature time falls below the final min_time, and min_time is monotonic
  // in t, so expiring once at the end removes the same boxes the
  // per-arrival calls would have (grouped by level here).
  const std::uint64_t end = run_first_t_ + run_n_;
  if (end > config_.history) {
    const std::uint64_t min_time = end - config_.history;
    for (std::size_t j = 0; j < config_.num_levels; ++j) {
      threads_[j].ExpireBeforeFast(min_time, [&](const FeatureBox& box) {
        if (expired != nullptr) {
          expired->push_back({j, box.extent, box.seq});
        }
      });
    }
  }
  run_n_ = 0;
}

void StreamSummarizer::RunLevelPass(std::vector<BoxRef>* sealed) {
  SD_DCHECK(run_n_ > 0);
  SD_DCHECK(flat_eligible_);
  const std::size_t dims = config_.FeatureDims();
  const std::size_t n = run_n_;
  if (run_ring_lo_.size() != config_.num_levels) {
    run_ring_lo_.resize(config_.num_levels);
    run_ring_hi_.resize(config_.num_levels);
  }
  const AggregateKind kind = config_.aggregate;
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    const std::size_t w = config_.LevelWindow(j);
    // First run position whose arrival time satisfies t + 1 >= w; under
    // the uniform period-1 schedule every later arrival fires too.
    std::size_t i0 = 0;
    if (run_first_t_ + 1 < w) {
      const std::uint64_t skip = w - 1 - run_first_t_;
      if (skip >= n) break;  // higher levels have even larger windows
      i0 = static_cast<std::size_t>(skip);
    }
    run_ring_lo_[j].resize(n * dims);
    run_ring_hi_[j].resize(n * dims);
    double* ring_lo = run_ring_lo_[j].data();
    double* ring_hi = run_ring_hi_[j].data();
    LevelThread& thread = threads_[j];
    double flo[2], fhi[2];
    if (j == 0) {
      // Exact features: each window is a contiguous span of linear_,
      // sliding one value per arrival.
      const double* span =
          linear_.data() +
          static_cast<std::size_t>(run_first_t_ + i0 + 1 - w - linear_base_);
      for (std::size_t i = i0; i < n; ++i, ++span) {
        const std::uint64_t t = run_first_t_ + i;
        AggregateExactFeatureSpans(kind, span, w, flo, fhi);
        const FeatureBox* sealed_box =
            thread.AppendSpans(t, flo, fhi, ring_lo + i * dims,
                               ring_hi + i * dims);
        if (sealed_box != nullptr && sealed != nullptr) {
          sealed->push_back({j, sealed_box->extent, sealed_box->seq});
        }
      }
      continue;
    }
    // Incremental levels: left input is the level-(j-1) box covering
    // t - w/2 — final by arrival t (see FlatRunEligible), so the
    // post-pass deque extent is exactly what the arrival-major merge
    // read. Right input is level-(j-1)'s as-of snapshot for position i.
    // The left box advances every `capacity` arrivals; a countdown
    // cursor avoids re-running Find's deque arithmetic per arrival.
    const std::size_t half = w / 2;
    const LevelThread& prev = threads_[j - 1];
    const double* prev_lo = run_ring_lo_[j - 1].data();
    const double* prev_hi = run_ring_hi_[j - 1].data();
    const std::size_t cap = prev.capacity();
    const std::uint64_t anchor = prev.anchor_time();
    const FeatureBox* left = nullptr;
    std::size_t left_remaining = 0;
    for (std::size_t i = i0; i < n; ++i) {
      const std::uint64_t t = run_first_t_ + i;
      if (left_remaining == 0) {
        const std::uint64_t tl = t - half;
        left = prev.Find(tl);
        SD_CHECK(left != nullptr);
        left_remaining = cap - static_cast<std::size_t>((tl - anchor) % cap);
      }
      --left_remaining;
      AggregateMergeExtentSpans(kind, left->extent.lo().data(),
                                left->extent.hi().data(), prev_lo + i * dims,
                                prev_hi + i * dims, flo, fhi);
      const FeatureBox* sealed_box = thread.AppendSpans(
          t, flo, fhi, ring_lo + i * dims, ring_hi + i * dims);
      if (sealed_box != nullptr && sealed != nullptr) {
        sealed->push_back({j, sealed_box->extent, sealed_box->seq});
      }
    }
  }
}

void StreamSummarizer::RunExactLevelPass(std::vector<BoxRef>* sealed) {
  SD_DCHECK(run_n_ > 0);
  SD_DCHECK(exact_levels_only_);
  const std::size_t n = run_n_;
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    const std::size_t w = config_.LevelWindow(j);
    const std::size_t period = config_.LevelPeriod(j);
    // First firing position: the first i with t + 1 >= w and
    // (t + 1 - w) % period == 0 (at t + 1 == w the offset is 0, so the
    // level always fires there first).
    std::size_t i = 0;
    if (run_first_t_ + 1 < w) {
      const std::uint64_t skip = w - 1 - run_first_t_;
      if (skip >= n) break;  // higher levels have even larger windows
      i = static_cast<std::size_t>(skip);
    } else {
      const std::uint64_t rem = (run_first_t_ + 1 - w) % period;
      if (rem != 0) {
        const std::uint64_t skip = period - rem;
        if (skip >= n) continue;  // other levels may still fire this run
        i = static_cast<std::size_t>(skip);
      }
    }
    LevelThread& thread = threads_[j];
    for (; i < n; i += period) {
      const std::uint64_t t = run_first_t_ + i;
      ExactFeatureIntoFromSpan(
          linear_.data() + static_cast<std::size_t>(t + 1 - w - linear_base_),
          w, &feature_scratch_);
      const FeatureBox* sealed_box = thread.Append(t, feature_scratch_);
      if (sealed_box != nullptr && sealed != nullptr) {
        sealed->push_back({j, sealed_box->extent, sealed_box->seq});
      }
    }
  }
}

void StreamSummarizer::AppendRun(const double* values, std::size_t n,
                                 std::vector<BoxRef>* sealed,
                                 std::vector<BoxRef>* expired) {
  if (n == 0) return;
  BeginRun(values, n);
  if (flat_eligible_) {
    RunLevelPass(sealed);
  } else if (exact_levels_only_) {
    RunExactLevelPass(sealed);
  } else {
    for (std::size_t i = 0; i < n; ++i) AppendRunStep(i, sealed);
  }
  EndRun(expired);
}

void StreamSummarizer::Append(double value, std::vector<BoxRef>* sealed,
                              std::vector<BoxRef>* expired) {
  raw_.Push(value);
  const std::uint64_t t = raw_.size() - 1;
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    const std::size_t w = config_.LevelWindow(j);
    if (t + 1 < w) break;  // higher levels have even larger windows
    if ((t + 1 - w) % config_.LevelPeriod(j) != 0) continue;
    const Mbr feature = ComputeFeature(j, t);
    const FeatureBox* sealed_box = threads_[j].Append(t, feature);
    if (sealed_box != nullptr && sealed != nullptr) {
      sealed->push_back({j, sealed_box->extent, sealed_box->seq});
    }
    if (t + 1 > config_.history) {
      const std::uint64_t min_time = t + 1 - config_.history;
      threads_[j].ExpireBeforeFast(min_time, [&](const FeatureBox& box) {
        if (expired != nullptr) {
          expired->push_back({j, box.extent, box.seq});
        }
      });
    }
  }
}

}  // namespace stardust
