// Continuous aggregate monitoring over a set of query windows (§6.1).
//
// Drives a Stardust instance in its online aggregate configuration and, at
// every arrival, runs the Algorithm-2 filter for every monitored window:
// when the composed upper bound reaches the window's threshold a candidate
// alarm is raised, which is then verified against the exact aggregate. The
// exact aggregate is maintained incrementally (SlidingAggregateTracker) —
// semantically identical to Algorithm 2's "retrieve the subsequence and
// compute the true aggregate", but O(1) per check so that precision can be
// measured over hundreds of thousands of arrivals.
#ifndef STARDUST_CORE_AGGREGATE_MONITOR_H_
#define STARDUST_CORE_AGGREGATE_MONITOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/stardust.h"
#include "stream/threshold.h"
#include "transform/sliding_tracker.h"

namespace stardust {

/// Alarm counters for one monitored window (or aggregated over windows).
struct AlarmStats {
  std::uint64_t candidates = 0;
  std::uint64_t true_alarms = 0;
  std::uint64_t checks = 0;

  /// True alarms / total alarms raised; 1.0 when nothing was raised.
  double Precision() const {
    return candidates == 0
               ? 1.0
               : static_cast<double>(true_alarms) /
                     static_cast<double>(candidates);
  }
};

/// Monitors one stream for threshold crossings over many window sizes.
class AggregateMonitor {
 public:
  /// `config` must use TransformKind::kAggregate; every threshold window
  /// must be a positive multiple of config.base_window representable in
  /// config.num_levels bits, and history must cover the largest window.
  static Result<std::unique_ptr<AggregateMonitor>> Create(
      const StardustConfig& config,
      std::vector<WindowThreshold> thresholds);

  /// Feeds one value and runs every monitored window's check.
  Status Append(double value);

  /// Batched append: equivalent to n Append calls — every per-arrival
  /// check still runs against the summary state as of that arrival (via
  /// the summarizer's three-phase run), so the alarm counters, the
  /// tracker, and the serialized summary state are bit-identical to the
  /// per-value path. Runs containing non-finite values fall back to the
  /// per-value path, which stops at the offending value.
  Status AppendRun(const double* values, std::size_t n);

  std::size_t num_windows() const { return thresholds_.size(); }
  const WindowThreshold& threshold(std::size_t i) const {
    return thresholds_[i];
  }
  const AlarmStats& stats(std::size_t i) const { return stats_[i]; }
  /// Counters summed over all windows.
  AlarmStats TotalStats() const;

  const Stardust& stardust() const { return *stardust_; }

  /// Snapshot support (core/snapshot.cc): serializes the stream summary,
  /// the exact tracker, and the alarm counters. The configuration and
  /// thresholds are serialized by the owner.
  void SaveTo(Writer* writer) const;
  /// Restores a serialized monitor; the instance must have been created
  /// with the same configuration and thresholds the snapshot was taken
  /// with. On success, continued appends are bit-exact with an
  /// uninterrupted run.
  Status RestoreFrom(Reader* reader);

 private:
  AggregateMonitor(std::unique_ptr<Stardust> stardust,
                   std::vector<WindowThreshold> thresholds);

  /// Per-arrival threshold checks for a level-major run (the summarizer's
  /// RunLevelPass must have completed for the open run): composes each
  /// window's extent exactly like Stardust::AggregateIntervalAt, reading
  /// the lowest set bit's sub-aggregate from the as-of ring and the
  /// higher bits from final box extents — bit-identical to checking
  /// arrival by arrival (see StreamSummarizer::FlatRunEligible).
  Status RunChecksFlat(const StreamSummarizer& summarizer,
                       const double* values, std::size_t n);

  std::unique_ptr<Stardust> stardust_;
  std::vector<WindowThreshold> thresholds_;
  SlidingAggregateTracker tracker_;
  std::vector<AlarmStats> stats_;
  StreamId stream_ = 0;

  // Reused scratch for AppendRun (empty between runs).
  std::vector<BoxRef> run_sealed_;
  std::vector<BoxRef> run_expired_;
  Mbr extent_scratch_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_AGGREGATE_MONITOR_H_
