// Stardust configuration: the tunable parameters of Section 4.
#ifndef STARDUST_CORE_CONFIG_H_
#define STARDUST_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "transform/aggregate.h"
#include "transform/feature.h"

namespace stardust {

/// Which transform F extracts features (Section 4: "SUM for burst
/// detection, MAX-MIN for volatility detection, DWT for detecting
/// correlations and finding surprising patterns").
enum class TransformKind {
  kAggregate,
  kDwt,
};

/// How the update period scales across levels.
enum class UpdateSchedule {
  /// Every level refreshes every `update_period` arrivals (the paper's
  /// online and batch algorithms).
  kUniform,
  /// Level j refreshes every `update_period`·2^j arrivals — the schedule
  /// of the authors' earlier SWAT system ("a batch algorithm with
  /// T_j = 2^j"), giving O(log N) summary space for a stream of size N.
  kDyadic,
};

/// Stardust parameters. The per-item processing cost and space overhead are
/// tuned via the box capacity c and update period T (Theorem 4.3):
///   - online algorithm: T = 1, c free (aggregate monitoring);
///   - batch algorithm:  c = 1, T = W (patterns and correlations).
struct StardustConfig {
  TransformKind transform = TransformKind::kAggregate;

  /// Aggregate function (TransformKind::kAggregate only).
  AggregateKind aggregate = AggregateKind::kSum;

  /// Window normalization before DWT (TransformKind::kDwt only).
  Normalization normalization = Normalization::kUnitSphere;
  /// Number of DWT coefficients retained per feature: f.
  std::size_t coefficients = 2;
  /// Upper bound R_max of the value range (Equation 2).
  double r_max = 1.0;

  /// Sliding window size at the lowest resolution: W. Power of two for the
  /// DWT transform; any positive size for aggregates.
  std::size_t base_window = 16;
  /// Number of resolution levels J + 1; level j uses windows of W * 2^j.
  std::size_t num_levels = 4;
  /// History of interest N: features for windows ending more than N steps
  /// in the past are expired. Must cover the largest level window.
  std::size_t history = 1024;

  /// Box capacity c: features per MBR.
  std::size_t box_capacity = 1;
  /// Update period T: a new feature every T arrivals. T > 1 (batch)
  /// requires c == 1 and computes features exactly from the raw window.
  std::size_t update_period = 1;
  /// Per-level scaling of the update period (see UpdateSchedule). The
  /// dyadic schedule requires c == 1 (its levels are all batch-computed).
  UpdateSchedule update_schedule = UpdateSchedule::kUniform;

  /// Compute every level's features exactly from the raw window even when
  /// T == 1 (cost Θ(w_j) per item instead of Θ(f)). This is the MR-Index
  /// baseline configuration — an offline multi-resolution index — and the
  /// ablation axis for the paper's incremental-computation claim.
  bool exact_levels = false;

  /// Maintain per-level R*-trees over sealed boxes (needed by pattern and
  /// correlation queries; aggregate monitoring only needs the per-stream
  /// threads, Section 4).
  bool index_features = false;

  /// Sliding window size at level j: W * 2^j.
  std::size_t LevelWindow(std::size_t level) const {
    return base_window << level;
  }

  /// Update period at level j: T (uniform) or T * 2^j (dyadic).
  std::size_t LevelPeriod(std::size_t level) const {
    return update_schedule == UpdateSchedule::kDyadic
               ? update_period << level
               : update_period;
  }

  /// Dimensionality of a feature at every level.
  std::size_t FeatureDims() const {
    return transform == TransformKind::kDwt
               ? coefficients
               : AggregateFeatureDims(aggregate);
  }

  Status Validate() const;
};

/// Identifier of a stream within a Stardust instance.
using StreamId = std::uint32_t;

}  // namespace stardust

#endif  // STARDUST_CORE_CONFIG_H_
