#include "core/stardust.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/kernels.h"

namespace stardust {

std::size_t Stardust::ScalarRunCutoff() { return kernels::BatchedRunCutoff(); }

Result<std::unique_ptr<Stardust>> Stardust::Create(
    const StardustConfig& config) {
  const Status st = config.Validate();
  if (!st.ok()) return st;
  return std::unique_ptr<Stardust>(new Stardust(config));
}

Stardust::Stardust(const StardustConfig& config)
    : config_(config),
      indexed_levels_(config.num_levels, true),
      any_indexed_(config.index_features) {
  if (config_.index_features) {
    indexes_.reserve(config_.num_levels);
    for (std::size_t j = 0; j < config_.num_levels; ++j) {
      indexes_.push_back(
          std::make_unique<RTree>(config_.FeatureDims(), RTreeOptions{}));
    }
  }
}

StreamId Stardust::AddStream() {
  streams_.push_back(std::make_unique<StreamSummarizer>(config_));
  return static_cast<StreamId>(streams_.size() - 1);
}

Status Stardust::ResetStream(StreamId stream) {
  if (stream >= streams_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  streams_[stream] = std::make_unique<StreamSummarizer>(config_);
  if (any_indexed_) return RebuildIndexes();
  return Status::OK();
}

Status Stardust::Append(StreamId stream, double value) {
  if (stream >= streams_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  if (!std::isfinite(value)) {
    // A NaN/Inf would silently poison every box it is merged into.
    return Status::InvalidArgument("stream values must be finite");
  }
  if (!any_indexed_) {
    // No level index consumes the deltas: skip collecting them (each
    // BoxRef copies a box extent, measurable per tuple at c == 1).
    streams_[stream]->Append(value, nullptr, nullptr);
    return Status::OK();
  }
  sealed_scratch_.clear();
  expired_scratch_.clear();
  streams_[stream]->Append(value, &sealed_scratch_, &expired_scratch_);
  return ApplyRunIndexDeltas(stream, sealed_scratch_, expired_scratch_);
}

Status Stardust::AppendRun(StreamId stream, const double* values,
                           std::size_t n) {
  if (n == 0) return Status::OK();
  if (stream >= streams_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  if (n <= ScalarRunCutoff()) {
    // Cost-based dispatch: short runs never pay the staged-run setup.
    // Append also handles non-finite values, so the scan below is skipped.
    for (std::size_t i = 0; i < n; ++i) {
      SD_RETURN_NOT_OK(Append(stream, values[i]));
    }
    return Status::OK();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      // Fall back to the per-value path: the prefix before the bad value
      // is applied and the error surfaces on exactly the value Append
      // would have rejected. (The engine pre-splits runs at non-finite
      // values, so this is a correctness net, not a hot path.)
      for (std::size_t k = 0; k < n; ++k) {
        SD_RETURN_NOT_OK(Append(stream, values[k]));
      }
      SD_CHECK(false);  // the scan saw a non-finite value; Append rejects it
    }
  }
  const bool indexed = any_indexed_;
  sealed_scratch_.clear();
  expired_scratch_.clear();
  streams_[stream]->AppendRun(values, n, indexed ? &sealed_scratch_ : nullptr,
                              indexed ? &expired_scratch_ : nullptr);
  return ApplyRunIndexDeltas(stream, sealed_scratch_, expired_scratch_);
}

Status Stardust::ApplyRunIndexDeltas(StreamId stream,
                                     const std::vector<BoxRef>& sealed,
                                     const std::vector<BoxRef>& expired) {
  if (!config_.index_features) return Status::OK();
  if (sealed.empty() && expired.empty()) return Status::OK();
  // Steady state seals one box per expired box per level, so pair the
  // k-th expired box with the k-th sealed box of the same level and
  // replace the record in place: the tree keeps its shape and none of
  // the Delete condense / Insert overflow churn happens. Pair k's old
  // record is always present when processed — it either predates the run
  // or was itself pair (k - retained)'s replacement. Leftovers (warm-up
  // seals before anything expires, shrink-only runs) fall back to plain
  // Insert/Delete.
  for (std::size_t level = 0; level < config_.num_levels; ++level) {
    if (!indexed_levels_[level]) continue;
    std::size_t si = 0;
    std::size_t ei = 0;
    for (;;) {
      while (si < sealed.size() && sealed[si].level != level) ++si;
      while (ei < expired.size() && expired[ei].level != level) ++ei;
      const bool have_sealed = si < sealed.size();
      const bool have_expired = ei < expired.size();
      if (have_sealed && have_expired) {
        SD_RETURN_NOT_OK(indexes_[level]->Update(
            expired[ei].extent, MakeRecordId(stream, expired[ei].seq),
            sealed[si].extent, MakeRecordId(stream, sealed[si].seq)));
        ++si;
        ++ei;
      } else if (have_sealed) {
        SD_RETURN_NOT_OK(indexes_[level]->Insert(
            sealed[si].extent, MakeRecordId(stream, sealed[si].seq)));
        ++si;
      } else if (have_expired) {
        SD_RETURN_NOT_OK(indexes_[level]->Delete(
            expired[ei].extent, MakeRecordId(stream, expired[ei].seq)));
        ++ei;
      } else {
        break;
      }
    }
  }
  return Status::OK();
}

Status Stardust::RebuildLevelIndex(std::size_t level) {
  indexes_[level] =
      std::make_unique<RTree>(config_.FeatureDims(), RTreeOptions{});
  Status status = Status::OK();
  for (StreamId s = 0; s < streams_.size(); ++s) {
    streams_[s]->thread(level).ForEachBox([&](const FeatureBox& box) {
      if (!box.sealed || !status.ok()) return;
      const Status st =
          indexes_[level]->Insert(box.extent, MakeRecordId(s, box.seq));
      if (!st.ok()) status = st;
    });
  }
  return status;
}

Status Stardust::SetIndexedLevels(const std::vector<bool>& mask) {
  if (!config_.index_features) {
    return Status::InvalidArgument(
        "SetIndexedLevels requires index_features");
  }
  if (mask.size() != config_.num_levels) {
    return Status::InvalidArgument("indexed-level mask size mismatch");
  }
  for (std::size_t level = 0; level < config_.num_levels; ++level) {
    if (mask[level] == indexed_levels_[level]) continue;
    if (mask[level]) {
      // Turning on: rebuild from the live sealed boxes so probes see the
      // same records per-tuple maintenance would have accumulated.
      SD_RETURN_NOT_OK(RebuildLevelIndex(level));
    } else {
      indexes_[level] =
          std::make_unique<RTree>(config_.FeatureDims(), RTreeOptions{});
    }
    indexed_levels_[level] = mask[level];
  }
  any_indexed_ = false;
  for (std::size_t level = 0; level < config_.num_levels; ++level) {
    if (indexed_levels_[level]) any_indexed_ = true;
  }
  return Status::OK();
}

Status Stardust::RebuildIndexes() {
  if (!config_.index_features) return Status::OK();
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    if (indexed_levels_[j]) {
      SD_RETURN_NOT_OK(RebuildLevelIndex(j));
    } else {
      indexes_[j] =
          std::make_unique<RTree>(config_.FeatureDims(), RTreeOptions{});
    }
  }
  return Status::OK();
}

Result<ScalarInterval> Stardust::AggregateInterval(StreamId stream,
                                                   std::size_t window) const {
  // now() == 0 makes end_time wrap; end_time + 1 wraps back to 0 inside
  // AggregateIntervalAt's length check, so the short-stream error is still
  // reported before any box lookup.
  Mbr extent;
  const std::uint64_t end_time =
      stream < streams_.size() ? streams_[stream]->now() - 1 : 0;
  return AggregateIntervalAt(stream, window, end_time, &extent);
}

Result<ScalarInterval> Stardust::AggregateIntervalAt(
    StreamId stream, std::size_t window, std::uint64_t end_time,
    Mbr* extent_scratch) const {
  if (stream >= streams_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  if (config_.transform != TransformKind::kAggregate) {
    return Status::FailedPrecondition(
        "aggregate queries require an aggregate transform");
  }
  const std::size_t w_base = config_.base_window;
  if (window == 0 || window % w_base != 0) {
    return Status::InvalidArgument(
        "query window must be a positive multiple of the base window");
  }
  const std::size_t b = window / w_base;
  if (b >> config_.num_levels != 0) {
    return Status::InvalidArgument(
        "query window exceeds the largest indexed resolution");
  }
  const StreamSummarizer& summarizer = *streams_[stream];
  if (end_time + 1 < window) {
    return Status::OutOfRange("stream shorter than the query window");
  }
  // Algorithm 2: walk the ones of b from the least significant bit; the
  // smallest sub-window is anchored at the most recent data.
  std::uint64_t t = end_time;
  Mbr& extent = *extent_scratch;
  bool first = true;
  for (std::size_t j = 0; j < config_.num_levels; ++j) {
    if (((b >> j) & 1) == 0) continue;
    const FeatureBox* box = summarizer.thread(j).Find(t);
    if (box == nullptr) {
      return Status::OutOfRange("sub-aggregate not available at level " +
                                std::to_string(j));
    }
    if (first) {
      extent = box->extent;
      first = false;
    } else {
      AggregateMergeExtentsInto(config_.aggregate, box->extent, extent,
                                &extent);
    }
    t -= config_.LevelWindow(j);
  }
  SD_DCHECK(!first);
  return AggregateScalarBound(config_.aggregate, extent);
}

Result<Stardust::AggregateAnswer> Stardust::AggregateQuery(
    StreamId stream, std::size_t window, double threshold) const {
  Result<ScalarInterval> interval = AggregateInterval(stream, window);
  if (!interval.ok()) return interval.status();
  AggregateAnswer answer;
  answer.approx = interval.value();
  answer.exact = std::numeric_limits<double>::quiet_NaN();
  if (answer.approx.hi < threshold) return answer;
  answer.candidate = true;
  // Verification: retrieve the most recent subsequence of length w and
  // compute the true aggregate (Algorithm 2's post-check).
  const StreamSummarizer& summarizer = *streams_[stream];
  Result<Point> feature =
      summarizer.ExactFeature(summarizer.now() - 1, window);
  if (!feature.ok()) return feature.status();
  answer.exact = AggregateScalar(config_.aggregate, feature.value());
  answer.alarm = answer.exact >= threshold;
  return answer;
}

}  // namespace stardust
