#include "core/aggregate_monitor.h"

#include <utility>

namespace stardust {

namespace {

std::vector<std::size_t> WindowSizes(
    const std::vector<WindowThreshold>& thresholds) {
  std::vector<std::size_t> out;
  out.reserve(thresholds.size());
  for (const auto& wt : thresholds) out.push_back(wt.window);
  return out;
}

}  // namespace

Result<std::unique_ptr<AggregateMonitor>> AggregateMonitor::Create(
    const StardustConfig& config, std::vector<WindowThreshold> thresholds) {
  if (config.transform != TransformKind::kAggregate) {
    return Status::InvalidArgument(
        "aggregate monitoring requires an aggregate transform");
  }
  if (config.update_period != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    // Algorithm 2 composes sub-aggregates for every current time; strided
    // schedules only have features at aligned times.
    return Status::InvalidArgument(
        "continuous aggregate monitoring requires the online algorithm "
        "(uniform T == 1)");
  }
  if (thresholds.empty()) {
    return Status::InvalidArgument("no windows to monitor");
  }
  for (const auto& wt : thresholds) {
    if (wt.window == 0 || wt.window % config.base_window != 0) {
      return Status::InvalidArgument(
          "window sizes must be positive multiples of the base window");
    }
    const std::size_t b = wt.window / config.base_window;
    if (b >> config.num_levels != 0) {
      return Status::InvalidArgument(
          "window too large for the configured number of levels");
    }
    if (wt.window > config.history) {
      return Status::InvalidArgument("window exceeds the history");
    }
  }
  Result<std::unique_ptr<Stardust>> core = Stardust::Create(config);
  if (!core.ok()) return core.status();
  return std::unique_ptr<AggregateMonitor>(new AggregateMonitor(
      std::move(core).value(), std::move(thresholds)));
}

AggregateMonitor::AggregateMonitor(std::unique_ptr<Stardust> stardust,
                                   std::vector<WindowThreshold> thresholds)
    : stardust_(std::move(stardust)),
      thresholds_(std::move(thresholds)),
      tracker_(stardust_->config().aggregate, WindowSizes(thresholds_)),
      stats_(thresholds_.size()) {
  stream_ = stardust_->AddStream();
}

Status AggregateMonitor::Append(double value) {
  SD_RETURN_NOT_OK(stardust_->Append(stream_, value));
  tracker_.Push(value);
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    if (!tracker_.Ready(i)) continue;
    Result<ScalarInterval> interval =
        stardust_->AggregateInterval(stream_, thresholds_[i].window);
    if (!interval.ok()) return interval.status();
    AlarmStats& stats = stats_[i];
    ++stats.checks;
    if (interval.value().hi < thresholds_[i].threshold) continue;
    ++stats.candidates;
    if (tracker_.Current(i) >= thresholds_[i].threshold) {
      ++stats.true_alarms;
    }
  }
  return Status::OK();
}

void AggregateMonitor::SaveTo(Writer* writer) const {
  stardust_->summarizer(stream_).SaveTo(writer);
  tracker_.SaveTo(writer);
  writer->U64(stats_.size());
  for (const AlarmStats& s : stats_) {
    writer->U64(s.candidates);
    writer->U64(s.true_alarms);
    writer->U64(s.checks);
  }
}

Status AggregateMonitor::RestoreFrom(Reader* reader) {
  SD_RETURN_NOT_OK(stardust_->mutable_summarizer(stream_)->RestoreFrom(reader));
  SD_RETURN_NOT_OK(stardust_->RebuildIndexes());
  SD_RETURN_NOT_OK(tracker_.RestoreFrom(reader));
  if (tracker_.now() != stardust_->summarizer(stream_).now()) {
    return Status::InvalidArgument(
        "snapshot tracker and summary disagree on append count");
  }
  std::uint64_t num_stats = 0;
  SD_RETURN_NOT_OK(reader->U64(&num_stats));
  if (num_stats != stats_.size()) {
    return Status::InvalidArgument("snapshot alarm counter count mismatch");
  }
  for (AlarmStats& s : stats_) {
    SD_RETURN_NOT_OK(reader->U64(&s.candidates));
    SD_RETURN_NOT_OK(reader->U64(&s.true_alarms));
    SD_RETURN_NOT_OK(reader->U64(&s.checks));
  }
  return Status::OK();
}

AlarmStats AggregateMonitor::TotalStats() const {
  AlarmStats total;
  for (const AlarmStats& s : stats_) {
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
  }
  return total;
}

}  // namespace stardust
