#include "core/aggregate_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "transform/aggregate.h"

namespace stardust {

namespace {

std::vector<std::size_t> WindowSizes(
    const std::vector<WindowThreshold>& thresholds) {
  std::vector<std::size_t> out;
  out.reserve(thresholds.size());
  for (const auto& wt : thresholds) out.push_back(wt.window);
  return out;
}

}  // namespace

Result<std::unique_ptr<AggregateMonitor>> AggregateMonitor::Create(
    const StardustConfig& config, std::vector<WindowThreshold> thresholds) {
  if (config.transform != TransformKind::kAggregate) {
    return Status::InvalidArgument(
        "aggregate monitoring requires an aggregate transform");
  }
  if (config.update_period != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    // Algorithm 2 composes sub-aggregates for every current time; strided
    // schedules only have features at aligned times.
    return Status::InvalidArgument(
        "continuous aggregate monitoring requires the online algorithm "
        "(uniform T == 1)");
  }
  if (thresholds.empty()) {
    return Status::InvalidArgument("no windows to monitor");
  }
  for (const auto& wt : thresholds) {
    if (wt.window == 0 || wt.window % config.base_window != 0) {
      return Status::InvalidArgument(
          "window sizes must be positive multiples of the base window");
    }
    const std::size_t b = wt.window / config.base_window;
    if (b >> config.num_levels != 0) {
      return Status::InvalidArgument(
          "window too large for the configured number of levels");
    }
    if (wt.window > config.history) {
      return Status::InvalidArgument("window exceeds the history");
    }
  }
  Result<std::unique_ptr<Stardust>> core = Stardust::Create(config);
  if (!core.ok()) return core.status();
  return std::unique_ptr<AggregateMonitor>(new AggregateMonitor(
      std::move(core).value(), std::move(thresholds)));
}

AggregateMonitor::AggregateMonitor(std::unique_ptr<Stardust> stardust,
                                   std::vector<WindowThreshold> thresholds)
    : stardust_(std::move(stardust)),
      thresholds_(std::move(thresholds)),
      tracker_(stardust_->config().aggregate, WindowSizes(thresholds_)),
      stats_(thresholds_.size()) {
  stream_ = stardust_->AddStream();
}

Status AggregateMonitor::Append(double value) {
  SD_RETURN_NOT_OK(stardust_->Append(stream_, value));
  tracker_.Push(value);
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    if (!tracker_.Ready(i)) continue;
    Result<ScalarInterval> interval =
        stardust_->AggregateInterval(stream_, thresholds_[i].window);
    if (!interval.ok()) return interval.status();
    AlarmStats& stats = stats_[i];
    ++stats.checks;
    if (interval.value().hi < thresholds_[i].threshold) continue;
    ++stats.candidates;
    if (tracker_.Current(i) >= thresholds_[i].threshold) {
      ++stats.true_alarms;
    }
  }
  return Status::OK();
}

Status AggregateMonitor::AppendRun(const double* values, std::size_t n) {
  if (n == 0) return Status::OK();
  if (n <= Stardust::ScalarRunCutoff()) {
    // Cost-based dispatch: short runs never pay the staged-run setup
    // (see Stardust::ScalarRunCutoff). Append also rejects non-finite
    // values with the same per-value error, so no pre-scan is needed.
    for (std::size_t i = 0; i < n; ++i) {
      SD_RETURN_NOT_OK(Append(values[i]));
    }
    return Status::OK();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      // Per-value fallback: the prefix before the bad value is applied and
      // the error surfaces on exactly the value Append would reject.
      for (std::size_t k = 0; k < n; ++k) {
        SD_RETURN_NOT_OK(Append(values[k]));
      }
      SD_CHECK(false);  // unreachable: Append rejects the non-finite value
    }
  }
  const bool indexed = stardust_->config().index_features;
  StreamSummarizer* summarizer = stardust_->mutable_summarizer(stream_);
  run_sealed_.clear();
  run_expired_.clear();
  summarizer->BeginRun(values, n);
  if (summarizer->FlatRunEligible()) {
    // Two-phase form: all maintenance first (level-major, recording the
    // as-of extent rings), then the per-arrival checks composed from the
    // rings — same checks against the same values as the interleaved
    // loop below, with the per-arrival level dispatch amortized away.
    summarizer->RunLevelPass(indexed ? &run_sealed_ : nullptr);
    const Status checks = RunChecksFlat(*summarizer, values, n);
    summarizer->EndRun(indexed ? &run_expired_ : nullptr);
    SD_RETURN_NOT_OK(checks);
    return stardust_->ApplyRunIndexDeltas(stream_, run_sealed_,
                                          run_expired_);
  }
  for (std::size_t i = 0; i < n; ++i) {
    summarizer->AppendRunStep(i, indexed ? &run_sealed_ : nullptr);
    tracker_.Push(values[i]);
    const std::uint64_t t = summarizer->RunTime(i);
    for (std::size_t w = 0; w < thresholds_.size(); ++w) {
      if (!tracker_.Ready(w)) continue;
      // Same check as Append, composed at this arrival's time (now()
      // already reflects the whole staged run).
      Result<ScalarInterval> interval = stardust_->AggregateIntervalAt(
          stream_, thresholds_[w].window, t, &extent_scratch_);
      if (!interval.ok()) {
        summarizer->EndRun(indexed ? &run_expired_ : nullptr);
        return interval.status();
      }
      AlarmStats& stats = stats_[w];
      ++stats.checks;
      if (interval.value().hi < thresholds_[w].threshold) continue;
      ++stats.candidates;
      if (tracker_.Current(w) >= thresholds_[w].threshold) {
        ++stats.true_alarms;
      }
    }
  }
  summarizer->EndRun(indexed ? &run_expired_ : nullptr);
  return stardust_->ApplyRunIndexDeltas(stream_, run_sealed_, run_expired_);
}

Status AggregateMonitor::RunChecksFlat(const StreamSummarizer& summarizer,
                                       const double* values, std::size_t n) {
  const StardustConfig& config = stardust_->config();
  const AggregateKind kind = config.aggregate;
  const std::size_t dims = config.FeatureDims();
  const std::size_t w_base = config.base_window;
  for (std::size_t i = 0; i < n; ++i) {
    tracker_.Push(values[i]);
    const std::uint64_t t = summarizer.RunTime(i);
    for (std::size_t w = 0; w < thresholds_.size(); ++w) {
      if (!tracker_.Ready(w)) continue;
      // Same Algorithm-2 walk as Stardust::AggregateIntervalAt, with the
      // lowest set bit's sub-aggregate read from the as-of ring (the box
      // covering t as of this arrival) and every higher bit from a final
      // box extent (complete by arrival t under FlatRunEligible's
      // capacity bound). Merge operand order matches exactly: the box
      // extent is the left input, the accumulator the right.
      const std::size_t b = thresholds_[w].window / w_base;
      std::uint64_t tj = t;
      double acc_lo[2], acc_hi[2];
      bool first = true;
      bool composed = true;
      for (std::size_t j = 0; (b >> j) != 0; ++j) {
        if (((b >> j) & 1) == 0) continue;
        if (first) {
          const double* rl = summarizer.RunRingLo(j) + i * dims;
          const double* rh = summarizer.RunRingHi(j) + i * dims;
          for (std::size_t d = 0; d < dims; ++d) {
            acc_lo[d] = rl[d];
            acc_hi[d] = rh[d];
          }
          first = false;
        } else {
          const FeatureBox* box = summarizer.thread(j).Find(tj);
          if (box == nullptr) {
            composed = false;
            break;
          }
          AggregateMergeExtentSpans(kind, box->extent.lo().data(),
                                    box->extent.hi().data(), acc_lo, acc_hi,
                                    acc_lo, acc_hi);
        }
        tj -= config.LevelWindow(j);
      }
      ScalarInterval interval;
      if (composed) {
        // AggregateScalarBound on the accumulated extent.
        if (kind == AggregateKind::kSpread) {
          interval = {std::max(0.0, acc_lo[0] - acc_hi[1]),
                      acc_hi[0] - acc_lo[1]};
        } else {
          interval = {acc_lo[0], acc_hi[0]};
        }
      } else {
        // Defensive fallback (a box the walk needs is missing): compose
        // through the full-path lookup, which reports the precise error.
        Result<ScalarInterval> r = stardust_->AggregateIntervalAt(
            stream_, thresholds_[w].window, t, &extent_scratch_);
        if (!r.ok()) return r.status();
        interval = r.value();
      }
      AlarmStats& stats = stats_[w];
      ++stats.checks;
      if (interval.hi < thresholds_[w].threshold) continue;
      ++stats.candidates;
      if (tracker_.Current(w) >= thresholds_[w].threshold) {
        ++stats.true_alarms;
      }
    }
  }
  return Status::OK();
}

void AggregateMonitor::SaveTo(Writer* writer) const {
  stardust_->summarizer(stream_).SaveTo(writer);
  tracker_.SaveTo(writer);
  writer->U64(stats_.size());
  for (const AlarmStats& s : stats_) {
    writer->U64(s.candidates);
    writer->U64(s.true_alarms);
    writer->U64(s.checks);
  }
}

Status AggregateMonitor::RestoreFrom(Reader* reader) {
  SD_RETURN_NOT_OK(stardust_->mutable_summarizer(stream_)->RestoreFrom(reader));
  SD_RETURN_NOT_OK(stardust_->RebuildIndexes());
  SD_RETURN_NOT_OK(tracker_.RestoreFrom(reader));
  if (tracker_.now() != stardust_->summarizer(stream_).now()) {
    return Status::InvalidArgument(
        "snapshot tracker and summary disagree on append count");
  }
  std::uint64_t num_stats = 0;
  SD_RETURN_NOT_OK(reader->U64(&num_stats));
  if (num_stats != stats_.size()) {
    return Status::InvalidArgument("snapshot alarm counter count mismatch");
  }
  for (AlarmStats& s : stats_) {
    SD_RETURN_NOT_OK(reader->U64(&s.candidates));
    SD_RETURN_NOT_OK(reader->U64(&s.true_alarms));
    SD_RETURN_NOT_OK(reader->U64(&s.checks));
  }
  return Status::OK();
}

AlarmStats AggregateMonitor::TotalStats() const {
  AlarmStats total;
  for (const AlarmStats& s : stats_) {
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
  }
  return total;
}

}  // namespace stardust
