// Shared per-shard feature cache — the "compute once, serve every
// consumer" store of the unified framework.
//
// The correlation path needs, per monitored resolution level and stream,
// the DWT feature point and the exact z-normalized raw window at aligned
// feature times. Before this store existed the correlator recomputed the
// z-normalization from raw history on every round; now the shard's
// feature pipeline computes each entry exactly once when the batch that
// produced it is applied, and every consumer (the correlator thread, the
// metrics surface, checkpointing) reads the same columnar slabs.
//
// Layout is structure-of-arrays per level: one flat ring of `capacity`
// entries per stream, with times, feature coefficients, z-normalized
// windows, and z-normalization state (mean, squared norm) in separate
// contiguous slabs, so a correlator round streams through one column
// instead of chasing per-entry heap cells.
//
// Single-writer: all mutation happens on the owning shard's worker thread
// under the shard state mutex; readers take the same mutex (the store
// itself is not internally synchronized).
#ifndef STARDUST_CORE_FEATURE_STORE_H_
#define STARDUST_CORE_FEATURE_STORE_H_

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/serialize.h"
#include "common/status.h"
#include "core/config.h"

namespace stardust {

/// Columnar cache of per-level features keyed by (level, stream, time).
class FeatureStore {
 public:
  /// One monitored resolution level.
  struct LevelSpec {
    std::size_t level = 0;   // level index in the owning correlation core
    std::size_t window = 0;  // raw window length at that level
    std::size_t dims = 0;    // DWT feature dimensionality (coefficients)
  };

  /// Borrowed view of one cached entry; valid until the next mutation of
  /// the store.
  struct View {
    std::uint64_t time = 0;
    const double* feature = nullptr;  // `dims` coefficients
    const double* znormed = nullptr;  // `window` z-normalized values
    std::size_t dims = 0;
    std::size_t window = 0;
    double mean = 0.0;   // window mean (z-normalization state)
    double norm2 = 0.0;  // ‖x − μ‖₂² (z-normalization state)
  };

  /// `capacity` = number of aligned feature times retained per
  /// (level, stream); both must be positive.
  FeatureStore(std::size_t num_streams, std::size_t capacity);

  /// Reconfigures the monitored level set (plan adoption). Slabs whose
  /// spec is unchanged keep their cached entries; added or reshaped
  /// levels start empty, removed levels are dropped.
  void SetLevels(const std::vector<LevelSpec>& levels);

  std::size_t num_streams() const { return num_streams_; }
  std::size_t capacity() const { return capacity_; }
  const std::vector<LevelSpec>& levels() const { return specs_; }
  bool has_level(std::size_t level) const;

  /// Caches the entry of (`level`, `stream`) at aligned `time`. Times
  /// must be strictly increasing per (level, stream); once `capacity`
  /// entries are held the oldest is overwritten. `feature` must hold the
  /// level's `dims` values and `znormed` its `window` values. The level
  /// must be part of the current level set.
  void Put(std::size_t level, StreamId stream, std::uint64_t time,
           const double* feature, const double* znormed, double mean,
           double norm2);

  /// Looks up the entry of (`level`, `stream`) at exactly `time`.
  /// Returns false (a store miss) when the level is not monitored, the
  /// time was never cached, or it already rotated out of the ring.
  bool Find(std::size_t level, StreamId stream, std::uint64_t time,
            View* out) const;

  /// Latest cached time of (`level`, `stream`); false when empty.
  bool Latest(std::size_t level, StreamId stream,
              std::uint64_t* time) const;

  // --- Change tracking (correlator dirty epochs) -----------------------
  // Every Put stamps the entry's (level, stream) — and the level as a
  // whole — with the current epoch (the pipeline bumps the epoch at the
  // top of FinishBatch, before the batch's puts, so the stamp names the
  // batch that produced the entry). A consumer that recorded epoch() at
  // its last read can then skip a level (or stream) whose stamp has not
  // moved past that record: no put since the read means no new aligned
  // feature time, so nothing the consumer derived from the level changed.

  /// Epoch stamp of the newest put on `level`; 0 when the level is
  /// unmonitored or never written.
  std::uint64_t LevelPutEpoch(std::size_t level) const;
  /// Epoch stamp of the newest put on (`level`, `stream`); 0 when never
  /// written.
  std::uint64_t StreamPutEpoch(std::size_t level, StreamId stream) const;

  /// Drops every cached entry (level set and counters are kept).
  void Clear();

  // --- Elastic placement support (engine/shard.cc migration) -----------
  // Columns are stream-major (stream * capacity + ring), so growing the
  // stream count appends fresh rows at the tail of every column without
  // disturbing existing entries.

  /// Grows the store to `new_num_streams` (>= current); added streams
  /// start empty.
  void Grow(std::size_t new_num_streams);
  /// Drops every cached entry of one stream across all slabs (the
  /// tombstone half of a migration).
  void ClearStream(StreamId stream);
  /// Stamps one stream — and every slab — dirty at the current epoch,
  /// so consumers using the put-epoch short-circuit re-read state that
  /// changed without a Put (a migration installing or removing the
  /// stream's summarizer threads).
  void TouchStream(StreamId stream);
  /// Per-stream slice of SaveTo: one stream's ring rows across every
  /// slab, keyed by slab spec.
  void SaveStreamTo(StreamId stream, Writer* writer) const;
  /// Installs a SaveStreamTo slice. Rows whose spec matches a current
  /// slab are copied in; rows for levels this store no longer monitors
  /// are consumed and dropped (the consumer recomputes on miss). The
  /// capacity must match the serializing store's.
  Status RestoreStreamFrom(StreamId stream, Reader* reader);

  /// Store epoch: bumped by the owning pipeline once per applied batch,
  /// so consumers can tell whether two reads observed the same state.
  std::uint64_t epoch() const { return epoch_; }
  void BumpEpoch() { ++epoch_; }

  // --- Counters (exactly-once accounting, surfaced in metrics) ---------
  std::uint64_t puts() const { return puts_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Snapshot support: serializes the level set, every slab, and the
  /// epoch so a restored store serves the same views.
  void SaveTo(Writer* writer) const;
  /// Restores a store serialized with SaveTo; the instance must have been
  /// constructed with the same stream count and capacity. Structurally
  /// corrupt payloads are rejected without partial mutation of `this`.
  Status RestoreFrom(Reader* reader);

 private:
  /// All columns of one level, rings laid out stream-major.
  struct Slab {
    LevelSpec spec;
    std::vector<std::uint64_t> times;   // num_streams × capacity
    // 64-byte aligned (common/aligned.h): the correlator's kernels stream
    // straight over these columns with full-width vector loads.
    AlignedVector<double> features;     // num_streams × capacity × dims
    AlignedVector<double> znormed;      // num_streams × capacity × window
    AlignedVector<double> means;        // num_streams × capacity
    AlignedVector<double> norms;        // num_streams × capacity
    std::vector<std::uint32_t> heads;   // next write slot per stream
    std::vector<std::uint32_t> counts;  // cached entries per stream
    /// Dirty tracking (not serialized — a restore stamps everything with
    /// the restored epoch, which reads as "changed" to any consumer).
    std::vector<std::uint64_t> put_epochs;  // per stream
    std::uint64_t max_put_epoch = 0;
  };

  const Slab* FindSlab(std::size_t level) const;
  Slab MakeSlab(const LevelSpec& spec) const;

  std::size_t num_streams_ = 0;
  std::size_t capacity_ = 0;
  std::vector<LevelSpec> specs_;
  std::vector<Slab> slabs_;
  std::uint64_t epoch_ = 0;
  std::uint64_t puts_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

/// Cache-geometry helpers for sizing the store (engine/engine.cc derives
/// EngineConfig-default ring capacities from these).

/// Approximate bytes one cached entry of a level occupies across the
/// store's columns (time + feature + z-normalized window + z-norm state +
/// ring bookkeeping, amortized per entry).
std::size_t FeatureStoreEntryBytes(std::size_t window, std::size_t dims);

/// Probed L2 data-cache size in bytes; 0 when the platform does not
/// expose it (non-Linux, restricted sysfs, etc.).
std::size_t ProbedL2CacheBytes();

/// Ring capacity per (level, stream) such that a shard's hot store set
/// (streams × entry) fits in roughly half of `cache_bytes`, clamped to
/// [4, 64]. Any zero/unknown input falls back to the fixed default
/// (FeaturePipeline::kDefaultStoreCapacity == 8). Pure — unit-testable
/// without probing hardware.
std::size_t DeriveStoreCapacity(std::size_t streams, std::size_t entry_bytes,
                                std::size_t cache_bytes);

}  // namespace stardust

#endif  // STARDUST_CORE_FEATURE_STORE_H_
