// Stardust: the paper's unified stream-monitoring framework.
//
// A Stardust instance maintains, for M streams, multi-resolution feature
// summaries (StreamSummarizer per stream) and one R*-tree per resolution
// level combining the sealed boxes of all streams (Section 4). On top of
// this state sit the three query classes of Section 5:
//   - aggregate monitoring  (Algorithm 2; also core/aggregate_monitor.h),
//   - pattern monitoring    (Algorithms 3 and 4; core/pattern_query.h),
//   - correlation monitoring (Section 5.3; core/correlation_monitor.h).
#ifndef STARDUST_CORE_STARDUST_H_
#define STARDUST_CORE_STARDUST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/summarizer.h"
#include "rtree/rtree.h"

namespace stardust {

/// Packs (stream, box sequence number) into an R*-tree RecordId.
inline RecordId MakeRecordId(StreamId stream, std::uint64_t seq) {
  SD_DCHECK(seq < (std::uint64_t{1} << 32));
  return (static_cast<std::uint64_t>(stream) << 32) | seq;
}
inline StreamId RecordStream(RecordId id) {
  return static_cast<StreamId>(id >> 32);
}
inline std::uint64_t RecordSeq(RecordId id) {
  return id & 0xffffffffULL;
}

/// The framework facade.
class Stardust {
 public:
  /// Validates `config` and builds an instance with no streams yet.
  static Result<std::unique_ptr<Stardust>> Create(
      const StardustConfig& config);

  /// Registers a new stream and returns its id (dense, starting at 0).
  StreamId AddStream();

  /// Replaces one stream's summarizer with a fresh (empty) one — the
  /// tombstone half of a live stream migration. Any indexed levels are
  /// rebuilt so the departed stream's sealed boxes drop out of the
  /// R*-trees.
  Status ResetStream(StreamId stream);

  std::size_t num_streams() const { return streams_.size(); }
  const StardustConfig& config() const { return config_; }
  const StreamSummarizer& summarizer(StreamId stream) const {
    return *streams_[stream];
  }
  /// Level index (only maintained when config.index_features is set and
  /// the level is enabled — see SetIndexedLevels).
  const RTree& index(std::size_t level) const { return *indexes_[level]; }

  /// Restricts index maintenance to the levels marked true in `mask`
  /// (size num_levels; requires config.index_features). Levels turning
  /// off are emptied; levels turning on are rebuilt from the streams'
  /// live sealed boxes, so the index is immediately queryable. Callers
  /// that know which levels their queries probe (the engine's compiled
  /// plans probe only each pattern query's first-piece level) use this
  /// to stop paying per-tuple maintenance for levels nothing reads.
  Status SetIndexedLevels(const std::vector<bool>& mask);
  /// Whether `level`'s index is currently maintained.
  bool level_indexed(std::size_t level) const {
    return config_.index_features && indexed_levels_[level];
  }

  /// Feeds one value of one stream, maintaining threads and level indexes.
  Status Append(StreamId stream, double value);

  /// Runs at or below this length take the scalar Append path inside
  /// AppendRun: the staged-run machinery has a fixed per-run setup cost
  /// (BeginRun/EndRun, per-level state loads) that only amortizes across
  /// several values, and bench_feature showed length-1 runs paying ~1.7x
  /// the scalar cost through it. Shared by every AppendRun entry point
  /// (Stardust, AggregateMonitor, Shard) so dispatch stays consistent.
  /// The value is the per-kernel-backend calibrated crossover from
  /// kernels::BatchedRunCutoff() (STARDUST_RUN_CUTOFF overrides). Callers
  /// that dispatch many runs should read it once per run, not per level.
  static std::size_t ScalarRunCutoff();

  /// Batched append — the engine's columnar maintenance path. Produces
  /// summary state bit-identical to n Append calls (see
  /// StreamSummarizer::AppendRun); level indexes receive the same inserts
  /// and deletes (deletes grouped by level at the end of the run). A run
  /// containing a non-finite value falls back to the per-value path, which
  /// stops at the offending value with Append's error.
  Status AppendRun(StreamId stream, const double* values, std::size_t n);

  /// AggregateInterval with an explicit window end time and reusable
  /// extent scratch. The batched monitor path composes intervals for
  /// arrivals in the middle of an open summarizer run, where now() already
  /// reflects the whole run; results are bit-identical to
  /// AggregateInterval evaluated when `end_time` was the latest value.
  Result<ScalarInterval> AggregateIntervalAt(StreamId stream,
                                             std::size_t window,
                                             std::uint64_t end_time,
                                             Mbr* extent_scratch) const;

  /// Run-append support for owners that drive a summarizer's three-phase
  /// run directly (core/aggregate_monitor): applies a run's sealed and
  /// expired boxes to the level indexes. No-op unless
  /// config().index_features.
  Status ApplyRunIndexDeltas(StreamId stream,
                             const std::vector<BoxRef>& sealed,
                             const std::vector<BoxRef>& expired);

  /// Approximate aggregate over the window of size `window` ending at the
  /// stream's latest value — the composition step of Algorithm 2. `window`
  /// must be a positive multiple of W with w/W < 2^num_levels.
  Result<ScalarInterval> AggregateInterval(StreamId stream,
                                           std::size_t window) const;

  /// Outcome of one aggregate monitoring check.
  struct AggregateAnswer {
    ScalarInterval approx;
    /// True iff the upper bound reached the threshold (filter fired).
    bool candidate = false;
    /// True iff the verified exact aggregate reached the threshold.
    bool alarm = false;
    /// The exact aggregate (only computed when `candidate`).
    double exact = 0.0;
  };

  /// Full Algorithm 2: compose the approximate interval, and on a
  /// candidate retrieve the raw subsequence and verify exactly.
  Result<AggregateAnswer> AggregateQuery(StreamId stream, std::size_t window,
                                         double threshold) const;

  /// Snapshot support (core/snapshot.cc): mutable summarizer access and
  /// index reconstruction from the threads' sealed boxes.
  StreamSummarizer* mutable_summarizer(StreamId stream) {
    return streams_[stream].get();
  }
  Status RebuildIndexes();

 private:
  explicit Stardust(const StardustConfig& config);

  /// Rebuilds one level's index from the streams' live sealed boxes.
  Status RebuildLevelIndex(std::size_t level);

  StardustConfig config_;
  std::vector<std::unique_ptr<StreamSummarizer>> streams_;
  std::vector<std::unique_ptr<RTree>> indexes_;
  /// Per-level maintenance switch; all-true until SetIndexedLevels.
  std::vector<bool> indexed_levels_;
  /// True when any level index is maintained; lets the append paths skip
  /// sealed/expired delta collection entirely when nothing consumes it.
  bool any_indexed_ = false;
  std::vector<BoxRef> sealed_scratch_;
  std::vector<BoxRef> expired_scratch_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_STARDUST_H_
