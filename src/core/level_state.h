// Per-stream, per-level feature boxes ("threaded MBRs").
//
// At every resolution level the features of one stream are grouped, c at a
// time and in arrival order, into MBRs. The MBRs of a stream are threaded
// together (here: a deque) "to provide sequential access to the summary
// information about the stream ... resulting in a constant retrieval time
// of the MBRs" (Section 4). Retrieval by feature end-time is O(1) index
// arithmetic because feature times are evenly spaced by the update period.
#ifndef STARDUST_CORE_LEVEL_STATE_H_
#define STARDUST_CORE_LEVEL_STATE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "common/serialize.h"
#include "common/status.h"
#include "geom/mbr.h"

namespace stardust {

/// One MBR of up to c consecutive features at a level of one stream.
struct FeatureBox {
  /// Bounding box of the features currently in the box.
  Mbr extent;
  /// Feature end-time of the first feature in the box.
  std::uint64_t first_time = 0;
  /// Number of features in the box (== capacity once sealed).
  std::uint32_t count = 0;
  /// Sequence number of this box within its (stream, level) thread,
  /// counting from the beginning of the stream. Used to build RecordIds.
  std::uint64_t seq = 0;
  /// A box seals when it reaches capacity; sealed boxes are what the level
  /// index stores.
  bool sealed = false;
};

/// The thread of feature boxes of one stream at one level.
class LevelThread {
 public:
  /// `dims`: feature dimensionality; `capacity`: box capacity c;
  /// `stride`: update period T (spacing of feature end-times).
  LevelThread(std::size_t dims, std::size_t capacity, std::size_t stride);

  /// Appends the feature extent for feature end-time `t`. Times must be
  /// appended in increasing order, spaced exactly by the stride. Returns
  /// the box sealed by this append, or nullptr.
  const FeatureBox* Append(std::uint64_t t, const Mbr& feature);

  /// Append for the level-major batched path (StreamSummarizer's flat
  /// run): the feature extent arrives as raw lo/hi spans of dims() values
  /// and the box extent immediately after the append — the "as-of"
  /// snapshot run composition needs — is copied into snap_lo/snap_hi
  /// (also dims() values each). State transitions and every min/max are
  /// bit-identical to Append(t, Mbr(lo, hi)).
  const FeatureBox* AppendSpans(std::uint64_t t, const double* lo,
                                const double* hi, double* snap_lo,
                                double* snap_hi) {
    if (!has_first_) {
      has_first_ = true;
      anchor_time_ = t;
    } else {
      SD_DCHECK(t == last_time() + stride_);
    }
    if (boxes_.empty() || boxes_.back().sealed) {
      FeatureBox box;
      box.extent = TakeRecycledExtent();
      box.first_time = t;
      box.seq = next_seq_++;
      boxes_.push_back(std::move(box));
    }
    FeatureBox& box = boxes_.back();
    box.extent.ExpandSpans(lo, hi);
    ++box.count;
    const Point& blo = box.extent.lo();
    const Point& bhi = box.extent.hi();
    for (std::size_t d = 0; d < dims_; ++d) {
      snap_lo[d] = blo[d];
      snap_hi[d] = bhi[d];
    }
    if (box.count == capacity_) {
      box.sealed = true;
      return &box;
    }
    return nullptr;
  }

  /// The box covering feature end-time `t` (sealed or still filling), or
  /// nullptr if `t` is misaligned, expired, or not yet produced.
  const FeatureBox* Find(std::uint64_t t) const;

  /// End-time of the very first feature of the thread. Requires at least
  /// one feature to have been appended (used by the flat run path's box
  /// cursor, which only runs on levels that already fired).
  std::uint64_t anchor_time() const {
    SD_DCHECK(has_first_);
    return anchor_time_;
  }

  /// Box with the given sequence number, or nullptr if expired / unknown.
  const FeatureBox* FindBySeq(std::uint64_t seq) const;

  /// Removes boxes whose last feature time is < `min_time`; calls
  /// `on_remove` for each removed *sealed* box so the owner can delete it
  /// from the level index. The currently filling box is never removed.
  void ExpireBefore(std::uint64_t min_time,
                    const std::function<void(const FeatureBox&)>& on_remove);

  /// Hot-path form of ExpireBefore for the batched maintenance loop: the
  /// callback is a template parameter, so no std::function is constructed
  /// per call. Semantics are identical to ExpireBefore.
  template <typename Fn>
  void ExpireBeforeFast(std::uint64_t min_time, Fn&& on_remove) {
    while (!boxes_.empty()) {
      FeatureBox& front = boxes_.front();
      if (!front.sealed) break;  // never drop the box still filling
      const std::uint64_t last_feature_time =
          front.first_time +
          static_cast<std::uint64_t>(front.count - 1) * stride_;
      if (last_feature_time >= min_time) break;
      on_remove(front);
      RecycleExtent(&front.extent);
      boxes_.pop_front();
    }
  }

  /// The still-filling box (not yet in any level index), or nullptr when
  /// the most recent box is sealed. Range queries must consult it in
  /// addition to the index to see the freshest features.
  const FeatureBox* filling_box() const {
    if (boxes_.empty() || boxes_.back().sealed) return nullptr;
    return &boxes_.back();
  }

  /// Number of boxes currently retained (sealed + filling).
  std::size_t box_count() const { return boxes_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t stride() const { return stride_; }
  bool empty() const { return boxes_.empty(); }

  /// Feature end-time of the most recently appended feature. Requires
  /// !empty().
  std::uint64_t last_time() const;

  /// Invokes `fn` on every retained box, oldest first.
  void ForEachBox(const std::function<void(const FeatureBox&)>& fn) const;

  /// Snapshot support (core/snapshot.cc): serializes the thread state.
  void SaveTo(Writer* writer) const;
  /// Restores a serialized thread. Validates structural invariants
  /// (ordered times/seqs, box counts within capacity, only the last box
  /// unsealed); the thread's dims/capacity/stride must match the saved
  /// ones.
  Status RestoreFrom(Reader* reader);

 private:
  /// Expired boxes donate their extent storage to a small free list so
  /// steady-state appends never allocate: boxes expire at the same rate
  /// new ones open, so the list holds at most a couple of entries. Runtime
  /// only — never serialized, empty after RestoreFrom.
  Mbr TakeRecycledExtent() {
    if (extent_pool_.empty()) return Mbr(dims_);
    Mbr extent = std::move(extent_pool_.back());
    extent_pool_.pop_back();
    extent.ResetEmpty(dims_);
    return extent;
  }
  void RecycleExtent(Mbr* extent) {
    // Unbounded on purpose: the pool never exceeds the boxes churned by
    // one batched run at this level (at most run length / capacity + 1),
    // itself bounded by the retention the deque already pays for.
    extent_pool_.push_back(std::move(*extent));
  }

  std::size_t dims_;
  std::size_t capacity_;
  std::size_t stride_;
  std::deque<FeatureBox> boxes_;
  std::vector<Mbr> extent_pool_;
  bool has_first_ = false;
  /// End-time of the very first feature at this level (alignment anchor).
  std::uint64_t anchor_time_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_CORE_LEVEL_STATE_H_
