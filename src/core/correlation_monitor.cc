#include "core/correlation_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "transform/feature.h"

namespace stardust {

Result<std::unique_ptr<CorrelationMonitor>> CorrelationMonitor::Create(
    const StardustConfig& config, std::size_t num_streams, double radius,
    std::vector<std::size_t> monitor_levels) {
  if (config.transform != TransformKind::kDwt ||
      config.normalization != Normalization::kZNorm) {
    return Status::InvalidArgument(
        "correlation monitoring requires the z-normalized DWT transform");
  }
  if (config.update_period != config.base_window ||
      config.box_capacity != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    return Status::InvalidArgument(
        "correlation monitoring uses the batch algorithm "
        "(uniform T == W, c == 1)");
  }
  if (monitor_levels.empty()) {
    // The paper's setting: detect at resolution J where N = W * 2^J.
    if (config.LevelWindow(config.num_levels - 1) != config.history) {
      return Status::InvalidArgument(
          "top-level window must equal the history (N = W * 2^J)");
    }
    monitor_levels.push_back(config.num_levels - 1);
  }
  std::sort(monitor_levels.begin(), monitor_levels.end());
  monitor_levels.erase(
      std::unique(monitor_levels.begin(), monitor_levels.end()),
      monitor_levels.end());
  for (std::size_t level : monitor_levels) {
    if (level >= config.num_levels) {
      return Status::InvalidArgument("monitored level out of range");
    }
    if (config.LevelWindow(level) > config.history) {
      return Status::InvalidArgument(
          "history must cover every monitored window");
    }
  }
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  if (radius < 0.0) return Status::InvalidArgument("negative radius");
  Result<std::unique_ptr<Stardust>> core = Stardust::Create(config);
  if (!core.ok()) return core.status();
  return std::unique_ptr<CorrelationMonitor>(
      new CorrelationMonitor(std::move(core).value(), num_streams, radius,
                             std::move(monitor_levels)));
}

CorrelationMonitor::CorrelationMonitor(
    std::unique_ptr<Stardust> core, std::size_t num_streams, double radius,
    std::vector<std::size_t> monitor_levels)
    : core_(std::move(core)),
      radius_(radius),
      monitored_levels_(std::move(monitor_levels)) {
  levels_.reserve(monitored_levels_.size());
  for (std::size_t level : monitored_levels_) {
    levels_.emplace_back(level, core_->config().coefficients, num_streams);
  }
  for (std::size_t i = 0; i < num_streams; ++i) core_->AddStream();
}

Status CorrelationMonitor::AppendAll(const std::vector<double>& values) {
  if (values.size() != core_->num_streams()) {
    return Status::InvalidArgument("value count != stream count");
  }
  for (StreamId i = 0; i < values.size(); ++i) {
    SD_RETURN_NOT_OK(core_->Append(i, values[i]));
  }
  // Every batch level refreshes at the same tick boundary once its
  // window is full; detect when the smallest monitored window has data
  // and the boundary is aligned.
  const std::uint64_t now = core_->summarizer(0).now();
  const std::size_t w_step = core_->config().update_period;
  const std::size_t smallest =
      core_->config().LevelWindow(monitored_levels_.front());
  if (now >= smallest && now % w_step == 0) {
    SD_RETURN_NOT_OK(Detect(now - 1));
  }
  return Status::OK();
}

Status CorrelationMonitor::Detect(std::uint64_t t) {
  const std::size_t m = core_->num_streams();
  last_round_.clear();
  std::vector<RTreeEntry> hits;
  std::vector<double> window;
  for (LevelState& state : levels_) {
    const std::size_t w = core_->config().LevelWindow(state.level);
    if (t + 1 < w) continue;  // this level's window is not full yet
    // Refresh the current-feature index: replace each stream's point.
    for (StreamId i = 0; i < m; ++i) {
      const FeatureBox* box =
          core_->summarizer(i).thread(state.level).Find(t);
      SD_CHECK(box != nullptr);
      const Point& feature = box->extent.lo();  // c == 1: a point
      if (!state.previous[i].empty()) {
        SD_RETURN_NOT_OK(
            state.features.Delete(Mbr::FromPoint(state.previous[i]), i));
      }
      SD_RETURN_NOT_OK(state.features.Insert(Mbr::FromPoint(feature), i));
      state.previous[i] = feature;
    }
    // Range query around every stream's feature; count each pair once.
    // z-normalized windows are computed lazily, once per stream.
    std::vector<std::vector<double>> znormed(m);
    auto znorm_of = [&](StreamId s) -> Status {
      if (!znormed[s].empty()) return Status::OK();
      SD_RETURN_NOT_OK(core_->summarizer(s).GetWindow(t, w, &window));
      znormed[s] = ZNormalize(window);
      return Status::OK();
    };
    for (StreamId i = 0; i < m; ++i) {
      hits.clear();
      state.features.SearchWithin(state.previous[i], radius_, &hits);
      for (const RTreeEntry& hit : hits) {
        const StreamId j = static_cast<StreamId>(hit.id);
        if (j <= i) continue;
        ++state.stats.candidates;
        ++stats_.candidates;
        // Verify with the exact z-normalized window distance.
        SD_RETURN_NOT_OK(znorm_of(i));
        SD_RETURN_NOT_OK(znorm_of(j));
        const double d2 = Dist2(znormed[i], znormed[j]);
        const bool verified = d2 <= radius_ * radius_;
        if (verified) {
          ++state.stats.true_pairs;
          ++stats_.true_pairs;
        }
        last_round_.push_back(
            {i, j, state.level, w, std::sqrt(d2), verified});
      }
    }
  }
  return Status::OK();
}

Result<std::vector<CorrelationMonitor::ReportedPair>>
CorrelationMonitor::TopKPairs(std::size_t k) const {
  const std::size_t m = core_->num_streams();
  const LevelState& state = levels_.back();  // highest monitored level
  if (state.features.size() != m) {
    return Status::FailedPrecondition(
        "no detection round has completed yet");
  }
  std::vector<ReportedPair> result;
  if (k == 0 || m < 2) return result;
  const std::uint64_t t = core_->summarizer(0).now() - 1;
  // Exact z-normalized windows at the most recent refresh time.
  const std::size_t w = core_->config().LevelWindow(state.level);
  const std::size_t w_step = core_->config().update_period;
  const std::uint64_t t_round = t - ((t + 1) % w_step);
  std::vector<std::vector<double>> znormed(m);
  std::vector<double> window;
  for (StreamId s = 0; s < m; ++s) {
    SD_RETURN_NOT_OK(core_->summarizer(s).GetWindow(t_round, w, &window));
    znormed[s] = ZNormalize(window);
  }
  // Expanding-radius search: all true pairs within r have feature
  // distance within r, so once >= k verified pairs are found inside r,
  // the k smallest are the global top-k.
  double radius = 0.05;
  std::vector<RTreeEntry> hits;
  for (;;) {
    result.clear();
    for (StreamId i = 0; i < m; ++i) {
      hits.clear();
      state.features.SearchWithin(state.previous[i], radius, &hits);
      for (const RTreeEntry& hit : hits) {
        const StreamId j = static_cast<StreamId>(hit.id);
        if (j <= i) continue;
        const double d = std::sqrt(Dist2(znormed[i], znormed[j]));
        if (d <= radius) {
          result.push_back({i, j, state.level, w, d, true});
        }
      }
    }
    if (result.size() >= k || radius > 2.01) break;
    radius *= 2.0;
  }
  std::sort(result.begin(), result.end(),
            [](const ReportedPair& a, const ReportedPair& b) {
              return a.distance < b.distance;
            });
  if (result.size() > k) result.resize(k);
  return result;
}

}  // namespace stardust
