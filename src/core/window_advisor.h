// Window-size advisor — the paper's proposed extension (Section 7):
// "fitting incremental regression models in our framework in order to
// enable parameter estimation, e.g., determining the right window sizes
// to monitor".
//
// The advisor rides along an aggregate-mode stream: per resolution level
// it keeps O(1)-update statistics of the level's aggregate scalar —
// online moments (for thresholds μ + λσ and for the coefficient of
// variation) and an online linear regression against time (to separate
// drift from genuine burstiness). From these it can:
//   * estimate a threshold for any level without a training pass,
//   * estimate the alarm rate a given λ would produce at each level,
//   * rank window sizes by "interestingness" (drift-corrected relative
//     variability), which peaks at the timescale of the hidden events —
//     the quantity a monitoring operator wants when picking windows.
#ifndef STARDUST_CORE_WINDOW_ADVISOR_H_
#define STARDUST_CORE_WINDOW_ADVISOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "transform/aggregate.h"
#include "sketch/quantile.h"
#include "transform/regression.h"

namespace stardust {

/// Advice for one candidate window size.
struct WindowAdvice {
  std::size_t window = 0;
  /// Robust standardized peak excursion (max − median)/IQR of the
  /// window's aggregate — the advisor's interestingness score. Robust
  /// statistics keep the scale estimate noise-dominated even when bursts
  /// inflate the variance; for a burst of duration L over noisy
  /// background the detection signal-to-noise A·min(w, L)/√(μ₀w) then
  /// peaks at w ≈ L, so the top-scoring window matches the timescale of
  /// the hidden events.
  double score = 0.0;
  /// Robust threshold estimate for the requested λ:
  /// median + λ · IQR/1.349 (IQR/1.349 is the normal-consistent robust
  /// standard deviation, immune to the variance inflation the bursts
  /// themselves cause — a plain μ + λσ threshold trained on bursty data
  /// overshoots and misses the very bursts it should catch).
  double threshold = 0.0;
  /// Fraction of observed aggregates that exceeded that threshold.
  double alarm_rate = 0.0;
  /// Linear drift of the aggregate per arrival (regression slope).
  double drift = 0.0;
};

/// Tracks per-window statistics of a single stream's aggregates.
///
/// Usage: Append every stream value; Advise(λ) whenever parameter
/// estimates are needed. Window sizes are W·2^j for j in [0, levels).
class WindowAdvisor {
 public:
  /// `kind` is the monitored aggregate; windows are
  /// base_window · 2^j for j < num_levels.
  static Result<std::unique_ptr<WindowAdvisor>> Create(
      AggregateKind kind, std::size_t base_window, std::size_t num_levels);

  ~WindowAdvisor();

  /// Feeds one value; updates every level whose window is full.
  void Append(double value);

  std::uint64_t now() const { return count_; }
  std::size_t num_levels() const { return levels_.size(); }
  std::size_t window(std::size_t level) const {
    return base_window_ << level;
  }

  /// Current estimates for every window, ranked by descending score.
  /// λ controls the reported thresholds/alarm rates.
  std::vector<WindowAdvice> Advise(double lambda) const;

  /// The single recommended window: the highest-scoring level with at
  /// least `min_samples` observed aggregates. Returns FailedPrecondition
  /// until enough data has been seen.
  Result<std::size_t> RecommendWindow(std::uint64_t min_samples = 32) const;

  /// Per-level accumulators; public only for the implementation's free
  /// helper functions — not part of the stable API.
  struct LevelStats {
    OnlineMoments moments;
    OnlineLinearRegression trend;  // aggregate vs arrival index
    P2Quantile q25{0.25};
    P2Quantile q50{0.50};
    P2Quantile q75{0.75};
    double max_aggregate = 0.0;
    bool has_max = false;
    /// Exceedance counts against the running μ + λσ for the λ grid
    /// {0, 1, 2, 3, 4, 6, 8} (nearest point reported by Advise).
    std::vector<std::uint64_t> exceed_counts;
  };

 private:
  WindowAdvisor(AggregateKind kind, std::size_t base_window,
                std::size_t num_levels);

  static const std::vector<double>& LambdaGrid();

  AggregateKind kind_;
  std::size_t base_window_;
  std::vector<LevelStats> levels_;
  /// Exact sliding aggregates over every level window.
  std::unique_ptr<class SlidingAggregateTracker> tracker_;
  std::uint64_t count_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_CORE_WINDOW_ADVISOR_H_
