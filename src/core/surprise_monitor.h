// Surprise (novelty) monitoring — the query class the paper motivates as
// "finding surprising levels of a data stream" (§1, §2.2) and exercises
// as "monitoring for surprising patterns" (§6.2), turned around: instead
// of matching against a pattern database, report windows that match
// NOTHING seen before.
//
// A window ending at t at level j is *surprising* when its normalized
// distance to every disjoint earlier window of the recent history (all
// streams, or the same stream only) exceeds the threshold. The level
// R*-tree answers this with one range query per fresh feature — no hits
// within the threshold proves novelty outright (feature distances
// lower-bound window distances), and any hits are verified against the
// raw windows before the event is suppressed.
#ifndef STARDUST_CORE_SURPRISE_MONITOR_H_
#define STARDUST_CORE_SURPRISE_MONITOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/stardust.h"

namespace stardust {

/// A verified novelty event.
struct SurpriseEvent {
  StreamId stream = 0;
  std::size_t level = 0;
  std::size_t window = 0;
  /// End time of the surprising window.
  std::uint64_t end_time = 0;
  /// Exact normalized distance to the nearest disjoint earlier window
  /// that could be verified; +inf when the feature space already proved
  /// there is nothing within the threshold.
  double novelty = 0.0;
};

/// Counters for the surprise monitor.
struct SurpriseStats {
  /// Feature refreshes that ran the novelty check.
  std::uint64_t checks = 0;
  /// Range-query hits that had to be verified against raw windows.
  std::uint64_t verifications = 0;
  /// Verified novelty events.
  std::uint64_t events = 0;
};

/// Continuous novelty detection over M streams.
class SurpriseMonitor {
 public:
  /// `config` must be an online, unit-box (c == 1, T == 1) indexed DWT
  /// configuration so that every feature is an exact point. `threshold`
  /// is the minimum normalized distance for a window to count as novel.
  /// `monitor_levels` defaults to the top level. When `within_stream` is
  /// true, novelty is judged against the stream's own history only.
  static Result<std::unique_ptr<SurpriseMonitor>> Create(
      const StardustConfig& config, std::size_t num_streams,
      double threshold, std::vector<std::size_t> monitor_levels = {},
      bool within_stream = false);

  /// Feeds one value of one stream; novelty checks run for every level
  /// that produced a feature. New events append to `new_events`
  /// (optional).
  Status Append(StreamId stream, double value,
                std::vector<SurpriseEvent>* new_events = nullptr);

  const SurpriseStats& stats() const { return stats_; }
  const Stardust& stardust() const { return *core_; }
  double threshold() const { return threshold_; }

 private:
  SurpriseMonitor(std::unique_ptr<Stardust> core, double threshold,
                  std::vector<std::size_t> monitor_levels,
                  bool within_stream);

  /// Runs the novelty check for (stream, level) at end time t.
  Status Check(StreamId stream, std::size_t level, std::uint64_t t,
               std::vector<SurpriseEvent>* new_events);

  std::unique_ptr<Stardust> core_;
  double threshold_;
  std::vector<std::size_t> monitored_levels_;
  bool within_stream_;
  SurpriseStats stats_;
  /// Debounce state: last reported event time per (stream, level).
  struct LastEvent {
    bool has_value = false;
    std::uint64_t time = 0;
  };
  std::map<std::pair<StreamId, std::size_t>, LastEvent> last_event_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_SURPRISE_MONITOR_H_
