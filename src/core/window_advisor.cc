#include "core/window_advisor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "transform/sliding_tracker.h"

namespace stardust {

const std::vector<double>& WindowAdvisor::LambdaGrid() {
  static const std::vector<double>* kGrid =
      new std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0};
  return *kGrid;
}

Result<std::unique_ptr<WindowAdvisor>> WindowAdvisor::Create(
    AggregateKind kind, std::size_t base_window, std::size_t num_levels) {
  if (base_window == 0) {
    return Status::InvalidArgument("base_window must be positive");
  }
  if (num_levels == 0 || num_levels > 32) {
    return Status::InvalidArgument("num_levels out of range");
  }
  const std::size_t top = base_window << (num_levels - 1);
  if (top / base_window != (std::size_t{1} << (num_levels - 1))) {
    return Status::InvalidArgument("window overflow");
  }
  return std::unique_ptr<WindowAdvisor>(
      new WindowAdvisor(kind, base_window, num_levels));
}

WindowAdvisor::WindowAdvisor(AggregateKind kind, std::size_t base_window,
                             std::size_t num_levels)
    : kind_(kind), base_window_(base_window), levels_(num_levels) {
  std::vector<std::size_t> windows;
  windows.reserve(num_levels);
  for (std::size_t j = 0; j < num_levels; ++j) {
    windows.push_back(base_window << j);
    levels_[j].exceed_counts.assign(LambdaGrid().size(), 0);
  }
  tracker_ = std::make_unique<SlidingAggregateTracker>(kind, windows);
}

WindowAdvisor::~WindowAdvisor() = default;

void WindowAdvisor::Append(double value) {
  tracker_->Push(value);
  ++count_;
  for (std::size_t j = 0; j < levels_.size(); ++j) {
    if (!tracker_->Ready(j)) continue;
    const double aggregate = tracker_->Current(j);
    LevelStats& stats = levels_[j];
    // Exceedance against the *running* robust threshold — what a monitor
    // that set its thresholds from everything seen so far would have
    // alarmed on. Skip the warm-up where the quantiles are meaningless.
    if (stats.moments.count() >= 8) {
      const double median = stats.q50.Value();
      const double robust_sd =
          (stats.q75.Value() - stats.q25.Value()) / 1.349;
      const auto& grid = LambdaGrid();
      for (std::size_t g = 0; g < grid.size(); ++g) {
        if (aggregate > median + grid[g] * robust_sd) {
          ++stats.exceed_counts[g];
        }
      }
    }
    stats.moments.Add(aggregate);
    stats.trend.Add(static_cast<double>(count_), aggregate);
    stats.q25.Add(aggregate);
    stats.q50.Add(aggregate);
    stats.q75.Add(aggregate);
    if (!stats.has_max || aggregate > stats.max_aggregate) {
      stats.max_aggregate = aggregate;
      stats.has_max = true;
    }
  }
}

namespace {

/// Robust standardized peak excursion (max − median)/IQR; 0 while the
/// quantile estimators have too little data or the scale is degenerate.
double PeakScore(const WindowAdvisor::LevelStats& stats) {
  if (!stats.has_max || stats.q50.count() < 16) return 0.0;
  const double iqr = stats.q75.Value() - stats.q25.Value();
  if (iqr < 1e-12) return 0.0;
  return (stats.max_aggregate - stats.q50.Value()) / iqr;
}

}  // namespace

std::vector<WindowAdvice> WindowAdvisor::Advise(double lambda) const {
  std::vector<WindowAdvice> out;
  const auto& grid = LambdaGrid();
  for (std::size_t j = 0; j < levels_.size(); ++j) {
    const LevelStats& stats = levels_[j];
    WindowAdvice advice;
    advice.window = window(j);
    if (stats.moments.count() >= 2) {
      advice.score =
          PeakScore(stats);
      advice.threshold =
          stats.q50.Value() +
          lambda * (stats.q75.Value() - stats.q25.Value()) / 1.349;
      advice.drift = stats.trend.Slope();
      // Alarm rate at the nearest λ grid point.
      std::size_t nearest = 0;
      for (std::size_t g = 1; g < grid.size(); ++g) {
        if (std::abs(grid[g] - lambda) <
            std::abs(grid[nearest] - lambda)) {
          nearest = g;
        }
      }
      const std::uint64_t samples =
          stats.moments.count() > 8 ? stats.moments.count() - 8 : 0;
      advice.alarm_rate =
          samples == 0 ? 0.0
                       : static_cast<double>(stats.exceed_counts[nearest]) /
                             static_cast<double>(samples);
    }
    out.push_back(advice);
  }
  std::sort(out.begin(), out.end(),
            [](const WindowAdvice& a, const WindowAdvice& b) {
              return a.score > b.score;
            });
  return out;
}

Result<std::size_t> WindowAdvisor::RecommendWindow(
    std::uint64_t min_samples) const {
  double best_score = -1.0;
  std::size_t best_window = 0;
  for (std::size_t j = 0; j < levels_.size(); ++j) {
    const LevelStats& stats = levels_[j];
    if (stats.moments.count() < min_samples) continue;
    const double score =
        PeakScore(stats);
    if (score > best_score) {
      best_score = score;
      best_window = window(j);
    }
  }
  if (best_score < 0.0) {
    return Status::FailedPrecondition(
        "not enough aggregates observed at any level");
  }
  return best_window;
}

}  // namespace stardust
