#include "core/snapshot.h"

#include <fstream>
#include <sstream>

#include "common/serialize.h"

namespace stardust {

namespace {

constexpr char kMagic[4] = {'S', 'D', 'S', 'N'};
constexpr std::uint32_t kVersion = 1;

void SaveConfig(const StardustConfig& config, Writer* writer) {
  writer->U8(static_cast<std::uint8_t>(config.transform));
  writer->U8(static_cast<std::uint8_t>(config.aggregate));
  writer->U8(static_cast<std::uint8_t>(config.normalization));
  writer->U64(config.coefficients);
  writer->F64(config.r_max);
  writer->U64(config.base_window);
  writer->U64(config.num_levels);
  writer->U64(config.history);
  writer->U64(config.box_capacity);
  writer->U64(config.update_period);
  writer->U8(static_cast<std::uint8_t>(config.update_schedule));
  writer->U8(config.exact_levels ? 1 : 0);
  writer->U8(config.index_features ? 1 : 0);
}

Status LoadConfig(Reader* reader, StardustConfig* config) {
  std::uint8_t transform = 0, aggregate = 0, normalization = 0;
  std::uint8_t schedule = 0, exact = 0, indexed = 0;
  SD_RETURN_NOT_OK(reader->U8(&transform));
  SD_RETURN_NOT_OK(reader->U8(&aggregate));
  SD_RETURN_NOT_OK(reader->U8(&normalization));
  if (transform > 1 || aggregate > 3 || normalization > 2) {
    return Status::InvalidArgument("snapshot config enum out of range");
  }
  config->transform = static_cast<TransformKind>(transform);
  config->aggregate = static_cast<AggregateKind>(aggregate);
  config->normalization = static_cast<Normalization>(normalization);
  std::uint64_t value = 0;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->coefficients = value;
  SD_RETURN_NOT_OK(reader->F64(&config->r_max));
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->base_window = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->num_levels = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->history = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->box_capacity = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->update_period = value;
  SD_RETURN_NOT_OK(reader->U8(&schedule));
  if (schedule > 1) {
    return Status::InvalidArgument("snapshot schedule out of range");
  }
  config->update_schedule = static_cast<UpdateSchedule>(schedule);
  SD_RETURN_NOT_OK(reader->U8(&exact));
  SD_RETURN_NOT_OK(reader->U8(&indexed));
  config->exact_levels = exact != 0;
  config->index_features = indexed != 0;
  return Status::OK();
}

}  // namespace

std::string SerializeSnapshot(const Stardust& stardust) {
  Writer payload;
  SaveConfig(stardust.config(), &payload);
  payload.U64(stardust.num_streams());
  for (StreamId s = 0; s < stardust.num_streams(); ++s) {
    stardust.summarizer(s).SaveTo(&payload);
  }
  Writer envelope;
  envelope.Bytes(kMagic, sizeof(kMagic));
  envelope.U32(kVersion);
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());
  return std::move(envelope.TakeBuffer());
}

Result<std::unique_ptr<Stardust>> DeserializeSnapshot(
    const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 8) {
    return Status::InvalidArgument("snapshot too small");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a Stardust snapshot (bad magic)");
  }
  const std::string header(bytes.substr(sizeof(kMagic), 12));
  Reader header_reader(header);
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SD_RETURN_NOT_OK(header_reader.U32(&version));
  SD_RETURN_NOT_OK(header_reader.U64(&checksum));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  const std::string payload = bytes.substr(sizeof(kMagic) + 12);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument("snapshot checksum mismatch");
  }

  Reader reader(payload);
  StardustConfig config;
  SD_RETURN_NOT_OK(LoadConfig(&reader, &config));
  Result<std::unique_ptr<Stardust>> created = Stardust::Create(config);
  if (!created.ok()) return created.status();
  std::unique_ptr<Stardust> stardust = std::move(created).value();
  std::uint64_t num_streams = 0;
  SD_RETURN_NOT_OK(reader.U64(&num_streams));
  if (num_streams > (std::uint64_t{1} << 32)) {
    return Status::InvalidArgument("snapshot stream count out of range");
  }
  for (std::uint64_t s = 0; s < num_streams; ++s) {
    const StreamId id = stardust->AddStream();
    SD_RETURN_NOT_OK(stardust->mutable_summarizer(id)->RestoreFrom(&reader));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  SD_RETURN_NOT_OK(stardust->RebuildIndexes());
  return stardust;
}

Status SaveSnapshot(const Stardust& stardust, const std::string& path) {
  const std::string bytes = SerializeSnapshot(stardust);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Result<std::unique_ptr<Stardust>> LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeSnapshot(buffer.str());
}

}  // namespace stardust
