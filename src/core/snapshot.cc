#include "core/snapshot.h"

#include <cstring>
#include <utility>

#include "common/atomic_file.h"
#include "common/serialize.h"

namespace stardust {

namespace {

constexpr char kMagic[4] = {'S', 'D', 'S', 'N'};
constexpr std::uint32_t kVersionStardust = 1;
constexpr std::uint32_t kVersionFleet = 2;
/// Lower bound on the serialized size of one stream's summarizer (append
/// count + tail length + level count). Declared stream counts are bounded
/// by remaining-bytes / this, so a corrupt header cannot drive a
/// multi-gigabyte restore loop.
constexpr std::uint64_t kMinStreamBytes = 24;

void SaveConfig(const StardustConfig& config, Writer* writer) {
  writer->U8(static_cast<std::uint8_t>(config.transform));
  writer->U8(static_cast<std::uint8_t>(config.aggregate));
  writer->U8(static_cast<std::uint8_t>(config.normalization));
  writer->U64(config.coefficients);
  writer->F64(config.r_max);
  writer->U64(config.base_window);
  writer->U64(config.num_levels);
  writer->U64(config.history);
  writer->U64(config.box_capacity);
  writer->U64(config.update_period);
  writer->U8(static_cast<std::uint8_t>(config.update_schedule));
  writer->U8(config.exact_levels ? 1 : 0);
  writer->U8(config.index_features ? 1 : 0);
}

Status LoadConfig(Reader* reader, StardustConfig* config) {
  std::uint8_t transform = 0, aggregate = 0, normalization = 0;
  std::uint8_t schedule = 0, exact = 0, indexed = 0;
  SD_RETURN_NOT_OK(reader->U8(&transform));
  SD_RETURN_NOT_OK(reader->U8(&aggregate));
  SD_RETURN_NOT_OK(reader->U8(&normalization));
  if (transform > 1 || aggregate > 3 || normalization > 2) {
    return Status::InvalidArgument("snapshot config enum out of range");
  }
  config->transform = static_cast<TransformKind>(transform);
  config->aggregate = static_cast<AggregateKind>(aggregate);
  config->normalization = static_cast<Normalization>(normalization);
  std::uint64_t value = 0;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->coefficients = value;
  SD_RETURN_NOT_OK(reader->F64(&config->r_max));
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->base_window = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->num_levels = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->history = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->box_capacity = value;
  SD_RETURN_NOT_OK(reader->U64(&value));
  config->update_period = value;
  SD_RETURN_NOT_OK(reader->U8(&schedule));
  if (schedule > 1) {
    return Status::InvalidArgument("snapshot schedule out of range");
  }
  config->update_schedule = static_cast<UpdateSchedule>(schedule);
  SD_RETURN_NOT_OK(reader->U8(&exact));
  SD_RETURN_NOT_OK(reader->U8(&indexed));
  config->exact_levels = exact != 0;
  config->index_features = indexed != 0;
  return Status::OK();
}

std::string WrapEnvelope(std::uint32_t version, const std::string& payload) {
  Writer envelope;
  envelope.Bytes(kMagic, sizeof(kMagic));
  envelope.U32(version);
  envelope.U64(Fnv1a(payload));
  envelope.Bytes(payload.data(), payload.size());
  return std::move(envelope.TakeBuffer());
}

/// Validates magic and checksum, extracts the payload, and reports the
/// stored version so each deserializer can reject the wrong kind with a
/// pointed message.
Status UnwrapEnvelope(const std::string& bytes, std::uint32_t* version,
                      std::string* payload) {
  if (bytes.size() < sizeof(kMagic) + 4 + 8) {
    return Status::InvalidArgument("snapshot too small");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a Stardust snapshot (bad magic)");
  }
  const std::string header(bytes.substr(sizeof(kMagic), 12));
  Reader header_reader(header);
  std::uint64_t checksum = 0;
  SD_RETURN_NOT_OK(header_reader.U32(version));
  SD_RETURN_NOT_OK(header_reader.U64(&checksum));
  *payload = bytes.substr(sizeof(kMagic) + 12);
  if (Fnv1a(*payload) != checksum) {
    return Status::InvalidArgument("snapshot checksum mismatch");
  }
  return Status::OK();
}

}  // namespace

std::string SerializeSnapshot(const Stardust& stardust) {
  Writer payload;
  SaveConfig(stardust.config(), &payload);
  payload.U64(stardust.num_streams());
  for (StreamId s = 0; s < stardust.num_streams(); ++s) {
    stardust.summarizer(s).SaveTo(&payload);
  }
  return WrapEnvelope(kVersionStardust, payload.buffer());
}

Result<std::unique_ptr<Stardust>> DeserializeSnapshot(
    const std::string& bytes) {
  std::uint32_t version = 0;
  std::string payload;
  SD_RETURN_NOT_OK(UnwrapEnvelope(bytes, &version, &payload));
  if (version == kVersionFleet) {
    return Status::InvalidArgument(
        "snapshot holds a fleet monitor (v2); load it with "
        "LoadFleetSnapshot");
  }
  if (version != kVersionStardust) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }

  Reader reader(payload);
  StardustConfig config;
  SD_RETURN_NOT_OK(LoadConfig(&reader, &config));
  Result<std::unique_ptr<Stardust>> created = Stardust::Create(config);
  if (!created.ok()) return created.status();
  std::unique_ptr<Stardust> stardust = std::move(created).value();
  std::uint64_t num_streams = 0;
  SD_RETURN_NOT_OK(reader.U64(&num_streams));
  if (num_streams > (std::uint64_t{1} << 32) ||
      num_streams > reader.remaining() / kMinStreamBytes) {
    return Status::InvalidArgument("snapshot stream count out of range");
  }
  for (std::uint64_t s = 0; s < num_streams; ++s) {
    const StreamId id = stardust->AddStream();
    SD_RETURN_NOT_OK(stardust->mutable_summarizer(id)->RestoreFrom(&reader));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  SD_RETURN_NOT_OK(stardust->RebuildIndexes());
  return stardust;
}

std::string SerializeFleetSnapshot(const FleetAggregateMonitor& fleet) {
  Writer payload;
  SaveConfig(fleet.config(), &payload);
  payload.U64(fleet.num_windows());
  for (std::size_t i = 0; i < fleet.num_windows(); ++i) {
    payload.U64(fleet.threshold(i).window);
    payload.F64(fleet.threshold(i).threshold);
  }
  payload.U64(fleet.num_streams());
  fleet.SaveTo(&payload);
  return WrapEnvelope(kVersionFleet, payload.buffer());
}

Result<std::unique_ptr<FleetAggregateMonitor>> DeserializeFleetSnapshot(
    const std::string& bytes) {
  std::uint32_t version = 0;
  std::string payload;
  SD_RETURN_NOT_OK(UnwrapEnvelope(bytes, &version, &payload));
  if (version == kVersionStardust) {
    return Status::InvalidArgument(
        "snapshot holds a bare Stardust instance (v1); load it with "
        "LoadSnapshot");
  }
  if (version != kVersionFleet) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }

  Reader reader(payload);
  StardustConfig config;
  SD_RETURN_NOT_OK(LoadConfig(&reader, &config));
  std::uint64_t num_windows = 0;
  SD_RETURN_NOT_OK(reader.U64(&num_windows));
  if (num_windows > reader.remaining() / 16) {
    return Status::InvalidArgument("snapshot window count out of range");
  }
  std::vector<WindowThreshold> thresholds(num_windows);
  for (WindowThreshold& wt : thresholds) {
    std::uint64_t window = 0;
    SD_RETURN_NOT_OK(reader.U64(&window));
    wt.window = window;
    SD_RETURN_NOT_OK(reader.F64(&wt.threshold));
  }
  std::uint64_t num_streams = 0;
  SD_RETURN_NOT_OK(reader.U64(&num_streams));
  if (num_streams > (std::uint64_t{1} << 32) ||
      num_streams > reader.remaining() / kMinStreamBytes) {
    return Status::InvalidArgument("snapshot stream count out of range");
  }
  Result<std::unique_ptr<FleetAggregateMonitor>> created =
      FleetAggregateMonitor::Create(config, std::move(thresholds),
                                    num_streams);
  if (!created.ok()) return created.status();
  std::unique_ptr<FleetAggregateMonitor> fleet = std::move(created).value();
  SD_RETURN_NOT_OK(fleet->RestoreFrom(&reader));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  return fleet;
}

Status SaveSnapshot(const Stardust& stardust, const std::string& path) {
  return AtomicWriteFile(path, SerializeSnapshot(stardust));
}

Result<std::unique_ptr<Stardust>> LoadSnapshot(const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeSnapshot(bytes.value());
}

Status SaveFleetSnapshot(const FleetAggregateMonitor& fleet,
                         const std::string& path) {
  return AtomicWriteFile(path, SerializeFleetSnapshot(fleet));
}

Result<std::unique_ptr<FleetAggregateMonitor>> LoadFleetSnapshot(
    const std::string& path) {
  Result<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeFleetSnapshot(bytes.value());
}

}  // namespace stardust
