// Lagged correlation monitoring — an extension of Section 5.3 covering
// StatStream's "lag time" capability that the paper cites in Related
// Work: continuously report pairs (leader j, follower i, lag ℓ) whose
// windows satisfy  distance(ẑ_i[t−N+1 : t], ẑ_j[t−ℓ−N+1 : t−ℓ]) <= r,
// for every lag ℓ in {0, W, 2W, ..., max_lag}.
//
// Implementation: one R*-tree holds the feature points of the last
// max_lag/W + 1 detection rounds of every stream (RecordId encodes
// (stream, round)); each round inserts the fresh features, expires the
// ones that fell out of the lag horizon, and runs one range query per
// stream whose hits decode directly into (partner, lag) pairs.
#ifndef STARDUST_CORE_LAG_CORRELATION_H_
#define STARDUST_CORE_LAG_CORRELATION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/correlation_monitor.h"
#include "core/stardust.h"
#include "rtree/rtree.h"

namespace stardust {

/// A reported lagged pair: `follower`'s current window matches `leader`'s
/// window `lag` arrivals ago.
struct LaggedPair {
  StreamId leader = 0;
  StreamId follower = 0;
  std::size_t lag = 0;
  /// Exact z-normalized window distance.
  double distance = 0.0;
  bool verified = false;
};

/// Continuous lagged-correlation detection over M synchronized streams.
class LagCorrelationMonitor {
 public:
  /// `config`: a batch DWT/z-norm configuration whose top-level window is
  /// the correlation window N; `config.history` must be at least
  /// N + max_lag so lagged windows stay verifiable. `max_lag` must be a
  /// multiple of the base window W (lag granularity follows the feature
  /// refresh rate, as in StatStream).
  static Result<std::unique_ptr<LagCorrelationMonitor>> Create(
      const StardustConfig& config, std::size_t num_streams, double radius,
      std::size_t max_lag);

  /// Feeds one synchronized arrival; detection runs at feature refreshes.
  Status AppendAll(const std::vector<double>& values);

  const PairStats& stats() const { return stats_; }
  const std::vector<LaggedPair>& last_round() const { return last_round_; }
  double radius() const { return radius_; }
  std::size_t max_lag() const { return max_lag_; }
  const Stardust& stardust() const { return *core_; }

 private:
  LagCorrelationMonitor(std::unique_ptr<Stardust> core,
                        std::size_t num_streams, double radius,
                        std::size_t max_lag);

  Status Detect(std::uint64_t t);

  std::unique_ptr<Stardust> core_;
  RTree features_;
  double radius_;
  std::size_t max_lag_;
  std::size_t top_level_;
  std::uint64_t round_ = 0;  // detection round counter
  PairStats stats_;
  std::vector<LaggedPair> last_round_;
  /// Entries currently in the tree, oldest first, for expiry.
  struct LiveEntry {
    Point feature;
    StreamId stream;
    std::uint64_t round;
  };
  std::deque<LiveEntry> live_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_LAG_CORRELATION_H_
