// Correlation monitoring (Section 5.3, experiments §6.3).
//
// M synchronized streams are summarized with the batch algorithm (c = 1,
// T = W, z-normalization). Whenever fresh features are available at a
// monitored resolution level, each stream's feature replaces its previous
// one in that level's R*-tree over current feature points, and a range
// query with radius r around every stream's feature reports the candidate
// pairs, which are verified against the exact z-normalized window
// distance. The correlation threshold maps to the distance radius via
// corr >= 1 - r²/2  ⇔  d <= r (Section 2.4).
//
// Section 2.4 asks for pairs "correlated ... at some level of
// abstraction": by default the monitor detects at the top resolution
// J with window N = W·2^J (the paper's experimental setting, §6.3), but
// any subset of levels can be monitored simultaneously — pairs are then
// reported per level, i.e., per window size.
#ifndef STARDUST_CORE_CORRELATION_MONITOR_H_
#define STARDUST_CORE_CORRELATION_MONITOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/stardust.h"
#include "rtree/rtree.h"

namespace stardust {

/// Counters over reported correlated pairs.
struct PairStats {
  std::uint64_t candidates = 0;
  std::uint64_t true_pairs = 0;

  double Precision() const {
    return candidates == 0
               ? 1.0
               : static_cast<double>(true_pairs) /
                     static_cast<double>(candidates);
  }
};

/// Continuous correlation detection over M synchronized streams.
class CorrelationMonitor {
 public:
  /// `config` must be a batch DWT configuration with z-normalization
  /// whose history covers the largest monitored window. `radius` is the
  /// Euclidean distance threshold r on z-normalized windows.
  /// `monitor_levels` selects the resolutions to detect at; empty means
  /// the top level only (window = N, the paper's setting, which then
  /// must equal the history).
  static Result<std::unique_ptr<CorrelationMonitor>> Create(
      const StardustConfig& config, std::size_t num_streams, double radius,
      std::vector<std::size_t> monitor_levels = {});

  /// Feeds one synchronized arrival (values[i] is stream i's new value).
  /// Detection runs automatically whenever features refresh.
  Status AppendAll(const std::vector<double>& values);

  /// Counters summed over all monitored levels.
  const PairStats& stats() const { return stats_; }
  /// Counters of one monitored level (indexed as in monitored_levels()).
  const PairStats& level_stats(std::size_t i) const {
    return levels_[i].stats;
  }
  const std::vector<std::size_t>& monitored_levels() const {
    return monitored_levels_;
  }
  const Stardust& stardust() const { return *core_; }
  double radius() const { return radius_; }

  /// Pairs reported by the most recent detection round (candidates, with
  /// verification outcome).
  struct ReportedPair {
    StreamId a = 0;
    StreamId b = 0;
    /// Resolution level the pair was detected at.
    std::size_t level = 0;
    /// Window size of that level (W · 2^level).
    std::size_t window = 0;
    /// Exact z-normalized window distance.
    double distance = 0.0;
    bool verified = false;
  };
  const std::vector<ReportedPair>& last_round() const { return last_round_; }

  /// The k most correlated pairs right now at the highest monitored
  /// level (smallest exact z-normalized distances), independent of the
  /// monitoring radius — an extension built on expanding-radius range
  /// search over the current features (sound: feature distance
  /// lower-bounds window distance). Requires a completed detection round.
  Result<std::vector<ReportedPair>> TopKPairs(std::size_t k) const;

 private:
  struct LevelState {
    std::size_t level = 0;
    RTree features;
    std::vector<Point> previous;  // empty until the stream has a feature
    PairStats stats;

    LevelState(std::size_t level_index, std::size_t dims,
               std::size_t num_streams)
        : level(level_index), features(dims), previous(num_streams) {}
  };

  CorrelationMonitor(std::unique_ptr<Stardust> core, std::size_t num_streams,
                     double radius, std::vector<std::size_t> monitor_levels);

  /// One detection round at time `t` (the shared current end time).
  Status Detect(std::uint64_t t);

  std::unique_ptr<Stardust> core_;
  double radius_;
  std::vector<std::size_t> monitored_levels_;
  std::vector<LevelState> levels_;
  PairStats stats_;
  std::vector<ReportedPair> last_round_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_CORRELATION_MONITOR_H_
