#include "core/fleet_monitor.h"

#include "common/check.h"

namespace stardust {

Result<std::unique_ptr<FleetAggregateMonitor>> FleetAggregateMonitor::Create(
    const StardustConfig& config, std::vector<WindowThreshold> thresholds,
    std::size_t num_streams) {
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  std::vector<std::unique_ptr<AggregateMonitor>> monitors;
  monitors.reserve(num_streams);
  for (std::size_t i = 0; i < num_streams; ++i) {
    Result<std::unique_ptr<AggregateMonitor>> monitor =
        AggregateMonitor::Create(config, thresholds);
    if (!monitor.ok()) return monitor.status();
    monitors.push_back(std::move(monitor).value());
  }
  return std::unique_ptr<FleetAggregateMonitor>(
      new FleetAggregateMonitor(std::move(monitors)));
}

FleetAggregateMonitor::FleetAggregateMonitor(
    std::vector<std::unique_ptr<AggregateMonitor>> monitors)
    : monitors_(std::move(monitors)) {}

Status FleetAggregateMonitor::Append(StreamId stream, double value) {
  if (stream >= monitors_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  return monitors_[stream]->Append(value);
}

Status FleetAggregateMonitor::AppendRun(StreamId stream, const double* values,
                                        std::size_t n) {
  if (stream >= monitors_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  return monitors_[stream]->AppendRun(values, n);
}

Status FleetAggregateMonitor::AppendAll(const std::vector<double>& values) {
  if (values.size() != monitors_.size()) {
    return Status::InvalidArgument("value count != stream count");
  }
  for (StreamId i = 0; i < values.size(); ++i) {
    SD_RETURN_NOT_OK(monitors_[i]->Append(values[i]));
  }
  return Status::OK();
}

void FleetAggregateMonitor::SaveTo(Writer* writer) const {
  for (const auto& monitor : monitors_) monitor->SaveTo(writer);
}

Status FleetAggregateMonitor::RestoreFrom(Reader* reader) {
  for (auto& monitor : monitors_) {
    SD_RETURN_NOT_OK(monitor->RestoreFrom(reader));
  }
  return Status::OK();
}

std::uint64_t FleetAggregateMonitor::AppendCount(StreamId stream) const {
  SD_DCHECK(stream < monitors_.size());
  return monitors_[stream]->stardust().summarizer(0).now();
}

Result<StreamId> FleetAggregateMonitor::AddStream() {
  std::vector<WindowThreshold> thresholds;
  thresholds.reserve(num_windows());
  for (std::size_t w = 0; w < num_windows(); ++w) {
    thresholds.push_back(threshold(w));
  }
  Result<std::unique_ptr<AggregateMonitor>> monitor =
      AggregateMonitor::Create(config(), std::move(thresholds));
  if (!monitor.ok()) return monitor.status();
  monitors_.push_back(std::move(monitor).value());
  return static_cast<StreamId>(monitors_.size() - 1);
}

Status FleetAggregateMonitor::ResetStream(StreamId stream) {
  if (stream >= monitors_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  std::vector<WindowThreshold> thresholds;
  thresholds.reserve(num_windows());
  for (std::size_t w = 0; w < num_windows(); ++w) {
    thresholds.push_back(threshold(w));
  }
  Result<std::unique_ptr<AggregateMonitor>> monitor =
      AggregateMonitor::Create(config(), std::move(thresholds));
  if (!monitor.ok()) return monitor.status();
  monitors_[stream] = std::move(monitor).value();
  return Status::OK();
}

Status FleetAggregateMonitor::SaveStreamTo(StreamId stream,
                                           Writer* writer) const {
  if (stream >= monitors_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  monitors_[stream]->SaveTo(writer);
  return Status::OK();
}

Status FleetAggregateMonitor::RestoreStreamFrom(StreamId stream,
                                                Reader* reader) {
  if (stream >= monitors_.size()) {
    return Status::InvalidArgument("unknown stream");
  }
  return monitors_[stream]->RestoreFrom(reader);
}

AlarmStats FleetAggregateMonitor::FleetTotal() const {
  AlarmStats total;
  for (const auto& monitor : monitors_) {
    const AlarmStats s = monitor->TotalStats();
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
  }
  return total;
}

Result<std::vector<StreamId>> FleetAggregateMonitor::CurrentlyAlarming(
    std::size_t window_index) const {
  if (window_index >= num_windows()) {
    return Status::InvalidArgument("unknown window");
  }
  std::vector<StreamId> alarming;
  for (StreamId i = 0; i < monitors_.size(); ++i) {
    const AggregateMonitor& monitor = *monitors_[i];
    const WindowThreshold& wt = monitor.threshold(window_index);
    Result<Stardust::AggregateAnswer> answer =
        monitor.stardust().AggregateQuery(0, wt.window, wt.threshold);
    if (!answer.ok()) {
      if (answer.status().code() == StatusCode::kOutOfRange) {
        continue;  // stream shorter than the window: not alarming
      }
      return answer.status();
    }
    if (answer.value().alarm) alarming.push_back(i);
  }
  return alarming;
}

}  // namespace stardust
