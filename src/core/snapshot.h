// Snapshot / recovery of a Stardust instance.
//
// A monitoring system that may run for weeks needs restartability: the
// snapshot captures the full framework state — configuration, the raw
// tail of every stream, every level thread — behind a versioned,
// checksummed envelope, and restore rebuilds the per-level R*-trees from
// the sealed boxes. After a restore, continued appends produce bit-exact
// identical summaries and query answers to an uninterrupted run (tested
// in tests/snapshot_test.cc).
#ifndef STARDUST_CORE_SNAPSHOT_H_
#define STARDUST_CORE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/stardust.h"

namespace stardust {

/// Serializes a Stardust instance into a self-contained byte string
/// (magic + version + FNV-1a checksum + payload).
std::string SerializeSnapshot(const Stardust& stardust);

/// Reconstructs a Stardust instance from SerializeSnapshot output.
/// Rejects bad magic, unsupported versions, checksum mismatches, and any
/// structurally inconsistent payload.
Result<std::unique_ptr<Stardust>> DeserializeSnapshot(
    const std::string& bytes);

/// File convenience wrappers.
Status SaveSnapshot(const Stardust& stardust, const std::string& path);
Result<std::unique_ptr<Stardust>> LoadSnapshot(const std::string& path);

}  // namespace stardust

#endif  // STARDUST_CORE_SNAPSHOT_H_
