// Snapshot / recovery of Stardust state.
//
// A monitoring system that may run for weeks needs restartability. Two
// snapshot payloads share one envelope (magic + version + FNV-1a checksum):
//
//   v1 — a bare Stardust instance: configuration, the raw tail of every
//        stream, every level thread. Restore rebuilds the per-level
//        R*-trees from the sealed boxes.
//   v2 — a FleetAggregateMonitor: the v1 state of every stream's monitor
//        plus the monitoring layer around it — window thresholds, alarm
//        counters, and the exact sliding-aggregate trackers — so a
//        restored fleet resumes monitoring bit-exactly.
//
// After a restore, continued appends produce bit-exact identical
// summaries, query answers, and alarm decisions to an uninterrupted run
// (tested in tests/snapshot_test.cc). File saves are atomic and durable
// (common/atomic_file.h): a crash mid-save leaves the previous snapshot
// intact, never a torn file.
#ifndef STARDUST_CORE_SNAPSHOT_H_
#define STARDUST_CORE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/fleet_monitor.h"
#include "core/stardust.h"

namespace stardust {

/// Serializes a Stardust instance into a self-contained byte string
/// (magic + version 1 + FNV-1a checksum + payload).
std::string SerializeSnapshot(const Stardust& stardust);

/// Reconstructs a Stardust instance from SerializeSnapshot output.
/// Rejects bad magic, unsupported versions, checksum mismatches, and any
/// structurally inconsistent payload.
Result<std::unique_ptr<Stardust>> DeserializeSnapshot(
    const std::string& bytes);

/// Serializes a fleet monitor into a version-2 snapshot: configuration,
/// thresholds, and the full per-stream monitoring state.
std::string SerializeFleetSnapshot(const FleetAggregateMonitor& fleet);

/// Reconstructs a fleet monitor from SerializeFleetSnapshot output, with
/// the same rejection guarantees as DeserializeSnapshot.
Result<std::unique_ptr<FleetAggregateMonitor>> DeserializeFleetSnapshot(
    const std::string& bytes);

/// File convenience wrappers. Saves are atomic (write temp, fsync,
/// rename); loads reject anything a crash or corruption could have left.
Status SaveSnapshot(const Stardust& stardust, const std::string& path);
Result<std::unique_ptr<Stardust>> LoadSnapshot(const std::string& path);
Status SaveFleetSnapshot(const FleetAggregateMonitor& fleet,
                         const std::string& path);
Result<std::unique_ptr<FleetAggregateMonitor>> LoadFleetSnapshot(
    const std::string& path);

}  // namespace stardust

#endif  // STARDUST_CORE_SNAPSHOT_H_
