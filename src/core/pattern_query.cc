#include "core/pattern_query.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "transform/feature.h"

namespace stardust {

namespace {

/// Unnormalized-budget scale of a sub-window of length w: a normalized
/// squared distance d²_norm over that window contributes
/// d²_norm · scale to the unnormalized squared distance.
double BudgetScale(const StardustConfig& config, std::size_t w) {
  if (config.normalization == Normalization::kUnitSphere) {
    return static_cast<double>(w) * config.r_max * config.r_max;
  }
  return 1.0;
}

double TotalBudget(const StardustConfig& config, std::size_t query_len,
                   double radius) {
  return radius * radius * BudgetScale(config, query_len);
}

}  // namespace

void PatternQueryEngine::VerifyPositions(
    const std::vector<double>& query_norm, double radius,
    std::vector<std::pair<StreamId, std::uint64_t>>* positions,
    PatternResult* result) const {
  std::sort(positions->begin(), positions->end());
  positions->erase(std::unique(positions->begin(), positions->end()),
                   positions->end());
  const StardustConfig& config = core_.config();
  const double r2 = radius * radius;
  std::vector<double> window;
  for (const auto& [stream, end_time] : *positions) {
    const Status st = core_.summarizer(stream).GetWindow(
        end_time, query_norm.size(), &window);
    if (!st.ok()) {
      ++result->unverifiable;
      continue;
    }
    ++result->candidates;
    NormalizeWindowInPlace(&window, config.normalization, config.r_max);
    const double d2 = Dist2(query_norm, window);
    if (d2 <= r2) {
      result->matches.push_back({stream, end_time, std::sqrt(d2)});
    }
  }
}

Result<CompiledPatternQuery> CompilePatternQuery(
    const StardustConfig& config, const std::vector<double>& query,
    double radius) {
  if (config.transform != TransformKind::kDwt || !config.index_features) {
    return Status::FailedPrecondition(
        "pattern queries require an indexed DWT configuration");
  }
  if (config.update_period != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    return Status::FailedPrecondition(
        "QueryOnline requires the online algorithm (uniform T == 1)");
  }
  if (radius < 0.0) return Status::InvalidArgument("negative radius");
  const std::size_t W = config.base_window;
  if (query.empty() || query.size() % W != 0) {
    return Status::InvalidArgument(
        "query length must be a positive multiple of the base window");
  }
  const std::size_t b = query.size() / W;
  if (b >> config.num_levels != 0) {
    return Status::InvalidArgument(
        "query longer than the largest indexed resolution");
  }

  CompiledPatternQuery compiled;
  compiled.query = query;
  compiled.query_norm =
      NormalizeWindow(query, config.normalization, config.r_max);
  compiled.radius = radius;
  compiled.total_budget = TotalBudget(config, query.size(), radius);

  // Partition the query by the ones of b, most recent piece first
  // (Algorithm 3 / Figure 2). piece[i] = (level, feature of the piece,
  // offset from the query end to the piece's end).
  std::size_t offset = 0;
  for (std::size_t j = 0; j < config.num_levels; ++j) {
    if (((b >> j) & 1) == 0) continue;
    const std::size_t w = config.LevelWindow(j);
    const std::size_t piece_end = query.size() - offset;
    std::vector<double> piece(query.begin() + (piece_end - w),
                              query.begin() + piece_end);
    const std::vector<double> normalized =
        NormalizeWindow(piece, config.normalization, config.r_max);
    compiled.pieces.push_back(
        {j, DwtFeature(normalized, config.coefficients), offset,
         BudgetScale(config, w)});
    offset += w;
  }
  SD_DCHECK(offset == query.size());
  return compiled;
}

Result<PatternResult> PatternQueryEngine::QueryOnline(
    const std::vector<double>& query, double radius) const {
  Result<CompiledPatternQuery> compiled =
      CompilePatternQuery(core_.config(), query, radius);
  if (!compiled.ok()) return compiled.status();
  return QueryCompiled(compiled.value());
}

Result<PatternResult> PatternQueryEngine::QueryCompiled(
    const CompiledPatternQuery& compiled,
    const std::uint64_t* min_end) const {
  const StardustConfig& config = core_.config();
  if (config.transform != TransformKind::kDwt || !config.index_features ||
      config.update_period != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    return Status::FailedPrecondition(
        "QueryCompiled requires the online algorithm (uniform T == 1)");
  }
  if (compiled.pieces.empty() ||
      compiled.pieces.back().level >= config.num_levels) {
    return Status::FailedPrecondition(
        "compiled query does not match this configuration");
  }
  const double total_budget = compiled.total_budget;
  using Piece = CompiledPatternQuery::Piece;
  const std::vector<Piece>& pieces = compiled.pieces;

  // Seed candidates with a range query at the first piece's level.
  const Piece& first = pieces.front();
  const double r1 = std::sqrt(total_budget / first.scale);
  std::vector<RTreeEntry> entries;
  core_.index(first.level).SearchWithin(first.feature, r1, &entries);

  std::vector<Candidate> candidates;
  candidates.reserve(entries.size());
  auto seed_candidate = [&](StreamId stream, const FeatureBox& box) {
    std::uint64_t end_lo = box.first_time;
    const std::uint64_t end_hi = box.first_time + box.count - 1;
    if (min_end != nullptr && min_end[stream] > end_lo) {
      // Every position in the run below the stream's reportable floor
      // would be discarded after verification; clamp before paying for
      // refinement, and drop runs that are entirely historical.
      if (min_end[stream] > end_hi) return;
      end_lo = min_end[stream];
    }
    const double cost = box.extent.MinDist2(first.feature) * first.scale;
    if (cost > total_budget) return;
    Candidate cand;
    cand.stream = stream;
    cand.end_lo = end_lo;
    cand.end_hi = end_hi;
    cand.budget = total_budget - cost;
    candidates.push_back(cand);
  };
  for (const RTreeEntry& entry : entries) {
    const StreamId stream = RecordStream(entry.id);
    const FeatureBox* box =
        core_.summarizer(stream).thread(first.level).FindBySeq(
            RecordSeq(entry.id));
    SD_CHECK(box != nullptr);
    seed_candidate(stream, *box);
  }
  // The index only holds sealed boxes; the freshest features live in each
  // stream's still-filling box, which must be probed directly.
  for (StreamId stream = 0; stream < core_.num_streams(); ++stream) {
    const FeatureBox* filling =
        core_.summarizer(stream).thread(first.level).filling_box();
    if (filling != nullptr) seed_candidate(stream, *filling);
  }

  // Hierarchical radius refinement over the remaining pieces, following
  // the per-stream threads.
  for (std::size_t pi = 1; pi < pieces.size(); ++pi) {
    const Piece& piece = pieces[pi];
    const std::size_t w = config.LevelWindow(piece.level);
    const std::uint64_t anchor = w - 1;  // first feature time at the level
    std::vector<Candidate> next;
    next.reserve(candidates.size());
    for (const Candidate& cand : candidates) {
      // Match ends below piece.offset + anchor have no feature for this
      // piece (their windows would start before the stream): clamp the
      // candidate run to the valid range rather than dropping it.
      const std::uint64_t floor_end = piece.offset + anchor;
      const std::uint64_t lo_end = std::max(cand.end_lo, floor_end);
      if (lo_end > cand.end_hi) continue;
      const std::uint64_t tf_lo = lo_end - piece.offset;
      const std::uint64_t tf_hi = cand.end_hi - piece.offset;
      const LevelThread& thread =
          core_.summarizer(cand.stream).thread(piece.level);
      const std::uint64_t seq_lo = (tf_lo - anchor) / config.box_capacity;
      const std::uint64_t seq_hi = (tf_hi - anchor) / config.box_capacity;
      for (std::uint64_t seq = seq_lo; seq <= seq_hi; ++seq) {
        const FeatureBox* box = thread.FindBySeq(seq);
        if (box == nullptr) continue;  // expired or not yet produced
        const double cost =
            box->extent.MinDist2(piece.feature) * piece.scale;
        if (cost > cand.budget) continue;
        // Map the box's feature times back to match-end positions and
        // intersect with the candidate's range.
        const std::uint64_t box_lo = box->first_time + piece.offset;
        const std::uint64_t box_hi =
            box->first_time + box->count - 1 + piece.offset;
        const std::uint64_t new_lo = std::max(box_lo, lo_end);
        const std::uint64_t new_hi = std::min(box_hi, cand.end_hi);
        if (new_lo > new_hi) continue;
        next.push_back(
            {cand.stream, new_lo, new_hi, cand.budget - cost});
      }
    }
    candidates = std::move(next);
  }

  // Expand candidate runs into positions, then verify.
  std::vector<std::pair<StreamId, std::uint64_t>> positions;
  for (const Candidate& cand : candidates) {
    for (std::uint64_t t = cand.end_lo; t <= cand.end_hi; ++t) {
      positions.emplace_back(cand.stream, t);
    }
  }
  PatternResult result;
  VerifyPositions(compiled.query_norm, compiled.radius, &positions, &result);
  return result;
}

Result<PatternResult> PatternQueryEngine::QueryCompiledIncremental(
    const CompiledPatternQuery& compiled, std::uint64_t* eval_floor) const {
  const StardustConfig& config = core_.config();
  if (config.transform != TransformKind::kDwt || !config.index_features ||
      config.update_period != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    return Status::FailedPrecondition(
        "QueryCompiledIncremental requires the online algorithm (uniform "
        "T == 1)");
  }
  if (compiled.pieces.empty() ||
      compiled.pieces.back().level >= config.num_levels) {
    return Status::FailedPrecondition(
        "compiled query does not match this configuration");
  }
  using Piece = CompiledPatternQuery::Piece;
  const std::vector<Piece>& pieces = compiled.pieces;

  std::vector<std::pair<StreamId, std::uint64_t>> positions;
  std::vector<const LevelThread*> threads(pieces.size());
  for (StreamId stream = 0; stream < core_.num_streams(); ++stream) {
    // Newest position whose every piece feature has been produced; its
    // match result is final (see header). Positions beyond it are left
    // for the batch that completes them.
    std::uint64_t t_max = std::numeric_limits<std::uint64_t>::max();
    bool have_all = true;
    for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
      const LevelThread& thread =
          core_.summarizer(stream).thread(pieces[pi].level);
      if (thread.empty()) {
        have_all = false;
        break;
      }
      threads[pi] = &thread;
      t_max = std::min(t_max, thread.last_time() + pieces[pi].offset);
    }
    if (!have_all) continue;
    std::uint64_t t = eval_floor[stream];
    for (; t <= t_max; ++t) {
      // The same d_min budget chain as the full search, probing each
      // piece's box directly by time instead of via a range query:
      // Find() returning null (expired / pre-anchor) drops the position
      // exactly like the index search and FindBySeq refinement would.
      double budget = compiled.total_budget;
      bool alive = true;
      for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
        const Piece& piece = pieces[pi];
        if (t < piece.offset) {
          alive = false;
          break;
        }
        const FeatureBox* box = threads[pi]->Find(t - piece.offset);
        if (box == nullptr) {
          alive = false;
          break;
        }
        const double cost =
            box->extent.MinDist2(piece.feature) * piece.scale;
        if (cost > budget) {
          alive = false;
          break;
        }
        budget -= cost;
      }
      if (alive) positions.emplace_back(stream, t);
    }
    eval_floor[stream] = t;
  }

  PatternResult result;
  VerifyPositions(compiled.query_norm, compiled.radius, &positions, &result);
  return result;
}

Result<std::vector<PatternMatch>> PatternQueryEngine::TopKOnline(
    const std::vector<double>& query, std::size_t k) const {
  if (k == 0) return std::vector<PatternMatch>{};
  const StardustConfig& config = core_.config();
  // Validate via a zero-radius probe (shares QueryOnline's checks).
  Result<PatternResult> probe = QueryOnline(query, 0.0);
  if (!probe.ok()) return probe.status();

  // Seed: the k-th nearest box to the first sub-query's feature gives a
  // sound lower bound on the k-th best match distance (every position in
  // a box is at least MinDist away in the first piece alone).
  std::size_t first_level = 0;
  {
    const std::size_t b = query.size() / config.base_window;
    while (((b >> first_level) & 1) == 0) ++first_level;
  }
  const std::size_t w1 = config.LevelWindow(first_level);
  std::vector<double> piece(query.end() - w1, query.end());
  const std::vector<double> normalized =
      NormalizeWindow(piece, config.normalization, config.r_max);
  const Point feature = DwtFeature(normalized, config.coefficients);
  std::vector<RTreeEntry> nearest;
  core_.index(first_level).SearchKNearest(feature, k, &nearest);
  double radius = 1e-6;
  if (!nearest.empty()) {
    const double d2 = nearest.back().box.MinDist2(feature);
    const double lower = std::sqrt(
        d2 * static_cast<double>(w1) / static_cast<double>(query.size()));
    radius = std::max(radius, lower);
  }

  // Expand until at least k verified matches (or the radius exceeds any
  // possible normalized distance).
  const double max_radius =
      config.normalization == Normalization::kNone ? 1e30 : 2.01;
  for (;;) {
    Result<PatternResult> result = QueryOnline(query, radius);
    if (!result.ok()) return result.status();
    std::vector<PatternMatch> matches = std::move(result.value().matches);
    if (matches.size() >= k || radius > max_radius) {
      std::sort(matches.begin(), matches.end(),
                [](const PatternMatch& a, const PatternMatch& b) {
                  return a.distance < b.distance;
                });
      if (matches.size() > k) matches.resize(k);
      return matches;
    }
    radius *= 2.0;
  }
}

Result<PatternResult> PatternQueryEngine::QueryBatch(
    const std::vector<double>& query, double radius) const {
  const StardustConfig& config = core_.config();
  if (config.transform != TransformKind::kDwt || !config.index_features) {
    return Status::FailedPrecondition(
        "pattern queries require an indexed DWT configuration");
  }
  if (config.update_period != config.base_window ||
      config.box_capacity != 1 ||
      config.update_schedule != UpdateSchedule::kUniform) {
    return Status::FailedPrecondition(
        "QueryBatch requires the batch algorithm (uniform T == W, c == 1)");
  }
  if (radius < 0.0) return Status::InvalidArgument("negative radius");
  const std::size_t W = config.base_window;
  if (query.size() < 2 * W - 1) {
    return Status::InvalidArgument(
        "query must be at least 2W - 1 values long");
  }

  // Largest level whose window fits every alignment: 2^j W + W - 1 <= |Q|.
  std::size_t level = 0;
  while (level + 1 < config.num_levels &&
         config.LevelWindow(level + 1) + W - 1 <= query.size()) {
    ++level;
  }
  const std::size_t w = config.LevelWindow(level);
  const std::size_t p = (query.size() - W + 1) / w;
  SD_CHECK(p >= 1);
  const double r_piece2 =
      radius * radius * BudgetScale(config, query.size()) /
      (static_cast<double>(p) * BudgetScale(config, w));
  const double r_piece = std::sqrt(r_piece2);

  // Gather every prefix/disjoint piece feature into the query MBR
  // (Algorithm 4's double loop) and keep the features for the alignment
  // filter below.
  struct QueryPiece {
    std::size_t start;  // offset of the piece within the query
    Point feature;
  };
  std::vector<QueryPiece> query_pieces;
  Mbr query_box(config.coefficients);
  for (std::size_t i = 0; i < W; ++i) {
    for (std::size_t k = 0; i + (k + 1) * w <= query.size(); ++k) {
      const std::size_t start = i + k * w;
      std::vector<double> piece(query.begin() + start,
                                query.begin() + start + w);
      const std::vector<double> normalized =
          NormalizeWindow(piece, config.normalization, config.r_max);
      Point feature = DwtFeature(normalized, config.coefficients);
      query_box.Expand(feature);
      query_pieces.push_back({start, std::move(feature)});
    }
  }
  query_box.Inflate(r_piece);

  std::vector<RTreeEntry> entries;
  core_.index(level).SearchIntersects(query_box, &entries);

  // Reconstruct alignments: a data window starting at s = seq·W matched
  // against query piece at offset `start` implies a match ending at
  // s - start + |Q| - 1.
  std::vector<std::pair<StreamId, std::uint64_t>> positions;
  for (const RTreeEntry& entry : entries) {
    const StreamId stream = RecordStream(entry.id);
    const std::uint64_t s = RecordSeq(entry.id) * W;
    const Point& feature = entry.box.lo();  // c == 1: degenerate box
    const std::uint64_t now = core_.summarizer(stream).now();
    for (const QueryPiece& qp : query_pieces) {
      if (s < qp.start) continue;
      const std::uint64_t end = s - qp.start + query.size() - 1;
      if (end >= now) continue;
      if (Dist2(feature, qp.feature) > r_piece2) continue;
      positions.emplace_back(stream, end);
    }
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());

  // Multi-piece radius refinement (Faloutsos et al., as used by
  // Algorithm 4): for each alignment, the squared distances of ALL its
  // disjoint pieces add up, so the summed feature distances must fit the
  // total unnormalized budget.
  std::vector<const Point*> piece_at(query.size(), nullptr);
  for (const QueryPiece& qp : query_pieces) {
    piece_at[qp.start] = &qp.feature;
  }
  const double total_budget = TotalBudget(config, query.size(), radius);
  const double piece_scale = BudgetScale(config, w);
  std::vector<std::pair<StreamId, std::uint64_t>> refined;
  refined.reserve(positions.size());
  for (const auto& [stream, end] : positions) {
    const std::uint64_t t0 = end + 1 - query.size();
    // Offset of the first contained data window within the query.
    const std::size_t i_star =
        static_cast<std::size_t>((W - (t0 % W)) % W);
    const LevelThread& thread = core_.summarizer(stream).thread(level);
    double used = 0.0;
    bool pruned = false;
    for (std::size_t o = i_star; o + w <= query.size(); o += w) {
      SD_DCHECK(piece_at[o] != nullptr);
      const std::uint64_t seq = (t0 + o) / W;
      const FeatureBox* box = thread.FindBySeq(seq);
      if (box == nullptr) continue;  // expired: no contribution
      used += Dist2(box->extent.lo(), *piece_at[o]) * piece_scale;
      if (used > total_budget) {
        pruned = true;
        break;
      }
    }
    if (!pruned) refined.emplace_back(stream, end);
  }

  PatternResult result;
  const std::vector<double> query_norm =
      NormalizeWindow(query, config.normalization, config.r_max);
  VerifyPositions(query_norm, radius, &refined, &result);
  return result;
}

}  // namespace stardust
