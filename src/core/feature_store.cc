#include "core/feature_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/check.h"

namespace stardust {

namespace {

/// Ring slot never written yet.
constexpr std::uint64_t kNoTime = ~static_cast<std::uint64_t>(0);

}  // namespace

FeatureStore::FeatureStore(std::size_t num_streams, std::size_t capacity)
    : num_streams_(num_streams), capacity_(capacity) {
  SD_CHECK(num_streams_ > 0);
  SD_CHECK(capacity_ > 0);
}

FeatureStore::Slab FeatureStore::MakeSlab(const LevelSpec& spec) const {
  SD_CHECK(spec.window > 0 && spec.dims > 0);
  Slab slab;
  slab.spec = spec;
  slab.times.assign(num_streams_ * capacity_, kNoTime);
  slab.features.assign(num_streams_ * capacity_ * spec.dims, 0.0);
  slab.znormed.assign(num_streams_ * capacity_ * spec.window, 0.0);
  slab.means.assign(num_streams_ * capacity_, 0.0);
  slab.norms.assign(num_streams_ * capacity_, 0.0);
  slab.heads.assign(num_streams_, 0);
  slab.counts.assign(num_streams_, 0);
  slab.put_epochs.assign(num_streams_, 0);
  return slab;
}

void FeatureStore::SetLevels(const std::vector<LevelSpec>& levels) {
  std::vector<Slab> next;
  next.reserve(levels.size());
  for (const LevelSpec& spec : levels) {
    Slab* kept = nullptr;
    for (Slab& slab : slabs_) {
      if (slab.spec.level == spec.level && slab.spec.window == spec.window &&
          slab.spec.dims == spec.dims) {
        kept = &slab;
        break;
      }
    }
    next.push_back(kept != nullptr ? std::move(*kept) : MakeSlab(spec));
    if (kept != nullptr) {
      // Leave a moved-from marker so a duplicate spec cannot steal twice.
      kept->spec.window = 0;
    }
  }
  slabs_ = std::move(next);
  specs_ = levels;
}

const FeatureStore::Slab* FeatureStore::FindSlab(std::size_t level) const {
  for (const Slab& slab : slabs_) {
    if (slab.spec.level == level) return &slab;
  }
  return nullptr;
}

bool FeatureStore::has_level(std::size_t level) const {
  return FindSlab(level) != nullptr;
}

void FeatureStore::Put(std::size_t level, StreamId stream,
                       std::uint64_t time, const double* feature,
                       const double* znormed, double mean, double norm2) {
  Slab* slab = const_cast<Slab*>(FindSlab(level));
  SD_CHECK(slab != nullptr);
  SD_CHECK(stream < num_streams_);
  SD_CHECK(time != kNoTime);
  const std::size_t slot =
      stream * capacity_ + slab->heads[stream];
  SD_DCHECK(slab->counts[stream] == 0 ||
            slab->times[stream * capacity_ +
                        (slab->heads[stream] + capacity_ - 1) % capacity_] <
                time);
  slab->times[slot] = time;
  std::memcpy(&slab->features[slot * slab->spec.dims], feature,
              slab->spec.dims * sizeof(double));
  std::memcpy(&slab->znormed[slot * slab->spec.window], znormed,
              slab->spec.window * sizeof(double));
  slab->means[slot] = mean;
  slab->norms[slot] = norm2;
  slab->heads[stream] =
      static_cast<std::uint32_t>((slab->heads[stream] + 1) % capacity_);
  slab->counts[stream] = static_cast<std::uint32_t>(
      std::min<std::size_t>(slab->counts[stream] + 1, capacity_));
  // Stamp with the epoch this write is visible at. The owning pipeline
  // bumps the store epoch at the top of FinishBatch, before its puts, so
  // `epoch_` already names the batch that produced this entry; a reader
  // that later records epoch() sees these stamps as <= its record.
  slab->put_epochs[stream] = epoch_;
  slab->max_put_epoch = epoch_;
  ++puts_;
}

bool FeatureStore::Find(std::size_t level, StreamId stream,
                        std::uint64_t time, View* out) const {
  const Slab* slab = FindSlab(level);
  if (slab == nullptr || stream >= num_streams_) {
    ++misses_;
    return false;
  }
  const std::size_t count = slab->counts[stream];
  // Newest first: correlator rounds chase the freshest aligned time.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t ring =
        (slab->heads[stream] + capacity_ - 1 - i) % capacity_;
    const std::size_t slot = stream * capacity_ + ring;
    if (slab->times[slot] != time) continue;
    if (out != nullptr) {
      out->time = time;
      out->feature = &slab->features[slot * slab->spec.dims];
      out->znormed = &slab->znormed[slot * slab->spec.window];
      out->dims = slab->spec.dims;
      out->window = slab->spec.window;
      out->mean = slab->means[slot];
      out->norm2 = slab->norms[slot];
    }
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

std::uint64_t FeatureStore::LevelPutEpoch(std::size_t level) const {
  const Slab* slab = FindSlab(level);
  return slab == nullptr ? 0 : slab->max_put_epoch;
}

std::uint64_t FeatureStore::StreamPutEpoch(std::size_t level,
                                           StreamId stream) const {
  const Slab* slab = FindSlab(level);
  if (slab == nullptr || stream >= num_streams_) return 0;
  return slab->put_epochs[stream];
}

bool FeatureStore::Latest(std::size_t level, StreamId stream,
                          std::uint64_t* time) const {
  const Slab* slab = FindSlab(level);
  if (slab == nullptr || stream >= num_streams_) return false;
  if (slab->counts[stream] == 0) return false;
  const std::size_t ring = (slab->heads[stream] + capacity_ - 1) % capacity_;
  if (time != nullptr) *time = slab->times[stream * capacity_ + ring];
  return true;
}

void FeatureStore::Clear() {
  for (Slab& slab : slabs_) {
    std::fill(slab.times.begin(), slab.times.end(), kNoTime);
    std::fill(slab.heads.begin(), slab.heads.end(), 0);
    std::fill(slab.counts.begin(), slab.counts.end(), 0);
  }
}

void FeatureStore::Grow(std::size_t new_num_streams) {
  SD_CHECK(new_num_streams >= num_streams_);
  if (new_num_streams == num_streams_) return;
  for (Slab& slab : slabs_) {
    slab.times.resize(new_num_streams * capacity_, kNoTime);
    slab.features.resize(new_num_streams * capacity_ * slab.spec.dims, 0.0);
    slab.znormed.resize(new_num_streams * capacity_ * slab.spec.window, 0.0);
    slab.means.resize(new_num_streams * capacity_, 0.0);
    slab.norms.resize(new_num_streams * capacity_, 0.0);
    slab.heads.resize(new_num_streams, 0);
    slab.counts.resize(new_num_streams, 0);
    slab.put_epochs.resize(new_num_streams, 0);
  }
  num_streams_ = new_num_streams;
}

void FeatureStore::ClearStream(StreamId stream) {
  SD_CHECK(stream < num_streams_);
  for (Slab& slab : slabs_) {
    std::fill(slab.times.begin() + stream * capacity_,
              slab.times.begin() + (stream + 1) * capacity_, kNoTime);
    slab.heads[stream] = 0;
    slab.counts[stream] = 0;
  }
}

void FeatureStore::TouchStream(StreamId stream) {
  SD_CHECK(stream < num_streams_);
  for (Slab& slab : slabs_) {
    slab.put_epochs[stream] = epoch_;
    slab.max_put_epoch = std::max(slab.max_put_epoch, epoch_);
  }
}

void FeatureStore::SaveStreamTo(StreamId stream, Writer* writer) const {
  SD_CHECK(stream < num_streams_);
  writer->U64(capacity_);
  writer->U64(slabs_.size());
  for (const Slab& slab : slabs_) {
    writer->U64(slab.spec.level);
    writer->U64(slab.spec.window);
    writer->U64(slab.spec.dims);
    writer->U32(slab.heads[stream]);
    writer->U32(slab.counts[stream]);
    const std::size_t row = stream * capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      writer->U64(slab.times[row + i]);
    }
    for (std::size_t i = 0; i < capacity_ * slab.spec.dims; ++i) {
      writer->F64(slab.features[row * slab.spec.dims + i]);
    }
    for (std::size_t i = 0; i < capacity_ * slab.spec.window; ++i) {
      writer->F64(slab.znormed[row * slab.spec.window + i]);
    }
    for (std::size_t i = 0; i < capacity_; ++i) {
      writer->F64(slab.means[row + i]);
    }
    for (std::size_t i = 0; i < capacity_; ++i) {
      writer->F64(slab.norms[row + i]);
    }
  }
}

Status FeatureStore::RestoreStreamFrom(StreamId stream, Reader* reader) {
  SD_CHECK(stream < num_streams_);
  std::uint64_t capacity = 0, num_slabs = 0;
  SD_RETURN_NOT_OK(reader->U64(&capacity));
  if (capacity != capacity_) {
    return Status::InvalidArgument("feature store slice capacity mismatch");
  }
  SD_RETURN_NOT_OK(reader->U64(&num_slabs));
  if (num_slabs * 24 > reader->remaining()) {
    return Status::InvalidArgument("feature store slice slab count corrupt");
  }
  for (std::uint64_t i = 0; i < num_slabs; ++i) {
    std::uint64_t level = 0, window = 0, dims = 0;
    std::uint32_t head = 0, count = 0;
    SD_RETURN_NOT_OK(reader->U64(&level));
    SD_RETURN_NOT_OK(reader->U64(&window));
    SD_RETURN_NOT_OK(reader->U64(&dims));
    SD_RETURN_NOT_OK(reader->U32(&head));
    SD_RETURN_NOT_OK(reader->U32(&count));
    if (window == 0 || dims == 0 || head >= capacity_ || count > capacity_) {
      return Status::InvalidArgument("feature store slice corrupt");
    }
    if (capacity_ * window * 8 > reader->remaining()) {
      return Status::InvalidArgument("feature store slice truncated");
    }
    Slab* slab = nullptr;
    for (Slab& candidate : slabs_) {
      if (candidate.spec.level == level && candidate.spec.window == window &&
          candidate.spec.dims == dims) {
        slab = &candidate;
        break;
      }
    }
    // An unmatched slab (the target monitors a different level set) still
    // consumes its bytes: the stream simply re-warms on its new shard.
    const std::size_t row = stream * capacity_;
    for (std::size_t j = 0; j < capacity_; ++j) {
      std::uint64_t t = kNoTime;
      SD_RETURN_NOT_OK(reader->U64(&t));
      if (slab != nullptr) slab->times[row + j] = t;
    }
    for (std::size_t j = 0; j < capacity_ * dims; ++j) {
      double v = 0.0;
      SD_RETURN_NOT_OK(reader->F64(&v));
      if (slab != nullptr) slab->features[row * dims + j] = v;
    }
    for (std::size_t j = 0; j < capacity_ * window; ++j) {
      double v = 0.0;
      SD_RETURN_NOT_OK(reader->F64(&v));
      if (slab != nullptr) slab->znormed[row * window + j] = v;
    }
    for (std::size_t j = 0; j < capacity_; ++j) {
      double v = 0.0;
      SD_RETURN_NOT_OK(reader->F64(&v));
      if (slab != nullptr) slab->means[row + j] = v;
    }
    for (std::size_t j = 0; j < capacity_; ++j) {
      double v = 0.0;
      SD_RETURN_NOT_OK(reader->F64(&v));
      if (slab != nullptr) slab->norms[row + j] = v;
    }
    if (slab != nullptr) {
      slab->heads[stream] = head;
      slab->counts[stream] = count;
      slab->put_epochs[stream] = epoch_;
      slab->max_put_epoch = std::max(slab->max_put_epoch, epoch_);
    }
  }
  return Status::OK();
}

void FeatureStore::SaveTo(Writer* writer) const {
  writer->U64(num_streams_);
  writer->U64(capacity_);
  writer->U64(epoch_);
  writer->U64(puts_);
  writer->U64(slabs_.size());
  for (const Slab& slab : slabs_) {
    writer->U64(slab.spec.level);
    writer->U64(slab.spec.window);
    writer->U64(slab.spec.dims);
    for (std::uint64_t t : slab.times) writer->U64(t);
    for (double v : slab.features) writer->F64(v);
    for (double v : slab.znormed) writer->F64(v);
    for (double v : slab.means) writer->F64(v);
    for (double v : slab.norms) writer->F64(v);
    for (std::uint32_t h : slab.heads) writer->U32(h);
    for (std::uint32_t c : slab.counts) writer->U32(c);
  }
}

Status FeatureStore::RestoreFrom(Reader* reader) {
  std::uint64_t num_streams = 0, capacity = 0, epoch = 0, puts = 0;
  SD_RETURN_NOT_OK(reader->U64(&num_streams));
  SD_RETURN_NOT_OK(reader->U64(&capacity));
  if (num_streams != num_streams_ || capacity != capacity_) {
    return Status::InvalidArgument("feature store shape mismatch");
  }
  SD_RETURN_NOT_OK(reader->U64(&epoch));
  SD_RETURN_NOT_OK(reader->U64(&puts));
  std::uint64_t num_slabs = 0;
  SD_RETURN_NOT_OK(reader->U64(&num_slabs));
  // Every slab carries at least its spec plus one u64 per ring slot.
  if (num_slabs * 24 > reader->remaining()) {
    return Status::InvalidArgument("feature store slab count corrupt");
  }
  std::vector<LevelSpec> specs;
  std::vector<Slab> slabs;
  specs.reserve(num_slabs);
  slabs.reserve(num_slabs);
  for (std::uint64_t i = 0; i < num_slabs; ++i) {
    LevelSpec spec;
    std::uint64_t level = 0, window = 0, dims = 0;
    SD_RETURN_NOT_OK(reader->U64(&level));
    SD_RETURN_NOT_OK(reader->U64(&window));
    SD_RETURN_NOT_OK(reader->U64(&dims));
    if (window == 0 || dims == 0) {
      return Status::InvalidArgument("feature store slab spec corrupt");
    }
    // The znormed column alone needs streams·capacity·window doubles.
    if (num_streams_ * capacity_ * window * 8 > reader->remaining()) {
      return Status::InvalidArgument("feature store slab truncated");
    }
    spec.level = static_cast<std::size_t>(level);
    spec.window = static_cast<std::size_t>(window);
    spec.dims = static_cast<std::size_t>(dims);
    Slab slab = MakeSlab(spec);
    for (std::uint64_t& t : slab.times) SD_RETURN_NOT_OK(reader->U64(&t));
    for (double& v : slab.features) SD_RETURN_NOT_OK(reader->F64(&v));
    for (double& v : slab.znormed) SD_RETURN_NOT_OK(reader->F64(&v));
    for (double& v : slab.means) SD_RETURN_NOT_OK(reader->F64(&v));
    for (double& v : slab.norms) SD_RETURN_NOT_OK(reader->F64(&v));
    for (std::uint32_t& h : slab.heads) {
      SD_RETURN_NOT_OK(reader->U32(&h));
      if (h >= capacity_) {
        return Status::InvalidArgument("feature store head out of range");
      }
    }
    for (std::uint32_t& c : slab.counts) {
      SD_RETURN_NOT_OK(reader->U32(&c));
      if (c > capacity_) {
        return Status::InvalidArgument("feature store count out of range");
      }
    }
    // Dirty stamps are not serialized; mark every restored stream that
    // holds entries as changed-at-restore so consumers re-read it.
    for (StreamId s = 0; s < num_streams_; ++s) {
      if (slab.counts[s] == 0) continue;
      slab.put_epochs[s] = epoch;
      slab.max_put_epoch = epoch;
    }
    specs.push_back(spec);
    slabs.push_back(std::move(slab));
  }
  specs_ = std::move(specs);
  slabs_ = std::move(slabs);
  epoch_ = epoch;
  puts_ = puts;
  return Status::OK();
}

std::size_t FeatureStoreEntryBytes(std::size_t window, std::size_t dims) {
  // Per entry across the slab columns: time (u64), `dims` feature
  // coefficients, `window` z-normalized values, mean + norm2, plus the
  // per-stream head/count bookkeeping amortized over the ring.
  return sizeof(std::uint64_t) + (dims + window + 2) * sizeof(double) +
         2 * sizeof(std::uint32_t);
}

std::size_t ProbedL2CacheBytes() {
#if defined(__linux__) && defined(_SC_LEVEL2_CACHE_SIZE)
  const long bytes = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (bytes > 0) return static_cast<std::size_t>(bytes);
#endif
  return 0;
}

std::size_t DeriveStoreCapacity(std::size_t streams, std::size_t entry_bytes,
                                std::size_t cache_bytes) {
  constexpr std::size_t kMinCapacity = 4;
  constexpr std::size_t kMaxCapacity = 64;
  constexpr std::size_t kFallback = 8;  // FeaturePipeline::kDefaultStoreCapacity
  if (streams == 0 || entry_bytes == 0 || cache_bytes == 0) return kFallback;
  // Budget half the cache for the store's hot set; the other half stays
  // with raw history, summarizer state, and code.
  const std::size_t budget = cache_bytes / 2;
  const std::size_t per_slot = streams * entry_bytes;
  std::size_t capacity = per_slot == 0 ? kFallback : budget / per_slot;
  if (capacity < kMinCapacity) capacity = kMinCapacity;
  if (capacity > kMaxCapacity) capacity = kMaxCapacity;
  return capacity;
}

}  // namespace stardust
