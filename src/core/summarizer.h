// Per-stream multi-resolution feature computation — Algorithm 1 of the
// paper (Compute_Coefficients).
//
// On each arrival (or every T arrivals in batch mode) a feature is
// produced at every live level j:
//   - level 0 computes F(y) directly on the raw window y of size W;
//   - level j > 0 merges the level-(j-1) boxes containing the features of
//     the two halves of its window (Lemmas 4.1/4.2 and A.1/A.2), in Θ(f)
//     time — or computes exactly from raw when `exact_levels` is set
//     (the MR-Index baseline configuration).
// Features land in per-level LevelThreads; the summarizer reports newly
// sealed and newly expired boxes so the owner can maintain level indexes.
#ifndef STARDUST_CORE_SUMMARIZER_H_
#define STARDUST_CORE_SUMMARIZER_H_

#include <cstdint>
#include <vector>

#include "common/ring_buffer.h"
#include "common/status.h"
#include "core/config.h"
#include "core/level_state.h"

namespace stardust {

/// A sealed or expired box surfaced to the index owner.
struct BoxRef {
  std::size_t level = 0;
  Mbr extent;
  std::uint64_t seq = 0;
};

/// Summary state of a single stream: raw tail + one LevelThread per level.
class StreamSummarizer {
 public:
  /// `config` must have been validated by the caller.
  explicit StreamSummarizer(const StardustConfig& config);

  /// Feeds one value. Newly sealed boxes are appended to `sealed` and
  /// expired sealed boxes to `expired` (either may be nullptr).
  void Append(double value, std::vector<BoxRef>* sealed,
              std::vector<BoxRef>* expired);

  /// Number of values consumed so far; the latest value has time now()-1.
  std::uint64_t now() const { return raw_.size(); }

  const RingBuffer<double>& raw() const { return raw_; }
  const LevelThread& thread(std::size_t level) const {
    return threads_[level];
  }
  const StardustConfig& config() const { return config_; }

  /// Copies the raw window of `length` values ending at time `end_time`
  /// into `out`. Fails if any part of the window has left the buffer.
  Status GetWindow(std::uint64_t end_time, std::size_t length,
                   std::vector<double>* out) const;

  /// The exact feature of the raw window of `length` ending at `end_time`
  /// under this summarizer's transform (used for verification and tests).
  Result<Point> ExactFeature(std::uint64_t end_time,
                             std::size_t length) const;

  /// Number of feature boxes currently retained across all levels — the
  /// summary's space (Theorem 4.3: Θ(Σ_j 2^j W / (c·T_j)) boxes).
  std::size_t TotalBoxCount() const;

  /// Snapshot support (core/snapshot.cc): serializes the raw tail and
  /// every level thread. The configuration is serialized by the owner.
  void SaveTo(Writer* writer) const;
  /// Restores a serialized summarizer; the instance must have been
  /// constructed with the same configuration the snapshot was taken with.
  Status RestoreFrom(Reader* reader);

 private:
  /// Feature extent for level `level` ending at time t (Algorithm 1 body).
  Mbr ComputeFeature(std::size_t level, std::uint64_t t);
  /// Point feature computed exactly from the raw window; consumes the
  /// buffer (in-place normalization and transform — the hot path).
  Point ExactFeatureFromRaw(std::vector<double>* window) const;

  StardustConfig config_;
  RingBuffer<double> raw_;
  std::vector<LevelThread> threads_;
  std::vector<double> scratch_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_SUMMARIZER_H_
