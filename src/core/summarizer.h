// Per-stream multi-resolution feature computation — Algorithm 1 of the
// paper (Compute_Coefficients).
//
// On each arrival (or every T arrivals in batch mode) a feature is
// produced at every live level j:
//   - level 0 computes F(y) directly on the raw window y of size W;
//   - level j > 0 merges the level-(j-1) boxes containing the features of
//     the two halves of its window (Lemmas 4.1/4.2 and A.1/A.2), in Θ(f)
//     time — or computes exactly from raw when `exact_levels` is set
//     (the MR-Index baseline configuration).
// Features land in per-level LevelThreads; the summarizer reports newly
// sealed and newly expired boxes so the owner can maintain level indexes.
#ifndef STARDUST_CORE_SUMMARIZER_H_
#define STARDUST_CORE_SUMMARIZER_H_

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/ring_buffer.h"
#include "common/status.h"
#include "core/config.h"
#include "core/level_state.h"

namespace stardust {

/// A sealed or expired box surfaced to the index owner.
struct BoxRef {
  std::size_t level = 0;
  Mbr extent;
  std::uint64_t seq = 0;
};

/// Summary state of a single stream: raw tail + one LevelThread per level.
class StreamSummarizer {
 public:
  /// `config` must have been validated by the caller.
  explicit StreamSummarizer(const StardustConfig& config);

  /// Feeds one value. Newly sealed boxes are appended to `sealed` and
  /// expired sealed boxes to `expired` (either may be nullptr).
  void Append(double value, std::vector<BoxRef>* sealed,
              std::vector<BoxRef>* expired);

  /// Batched append — the engine's columnar maintenance path. Equivalent
  /// to n Append calls: the resulting summary state (raw tail, level
  /// threads, serialized bytes) is bit-identical, and `sealed` receives
  /// the same boxes with the same extents and sequence numbers. Within a
  /// level, sealed boxes arrive in seal order; across levels the order may
  /// differ from Append's arrival interleaving (the flat level-major path
  /// below groups them by level, which Stardust::ApplyRunIndexDeltas —
  /// a per-level pairing scan — is insensitive to). Expiration is
  /// deferred to the end of the run (the retained set only depends on the
  /// final time, so the final state and the union of expired boxes are
  /// unchanged; `expired` is grouped by level instead of interleaved by
  /// arrival).
  ///
  /// The speedup comes from staging the run in one contiguous buffer
  /// (every exact-feature window is a plain span — no per-element ring
  /// modulo), from allocation-free feature kernels (transform/aggregate,
  /// dwt/mbr_transform) writing into reused scratch, and — for uniform
  /// T == 1 aggregate configurations — from the flat level-major pass
  /// (RunLevelPass), which walks the run one level at a time on raw
  /// double spans instead of re-dispatching the level loop per arrival.
  void AppendRun(const double* values, std::size_t n,
                 std::vector<BoxRef>* sealed, std::vector<BoxRef>* expired);

  /// Three-phase form of AppendRun for owners that interleave per-arrival
  /// work with maintenance (core/aggregate_monitor checks thresholds after
  /// every value): BeginRun stages the run and bulk-pushes the raw values,
  /// AppendRunStep(i) applies arrival i (must be called for i = 0..n-1 in
  /// order), EndRun applies the deferred expiration and ends the run.
  /// While a run is open, now() already reflects the whole run; per-level
  /// Find/extent state advances arrival by arrival exactly as under
  /// Append.
  void BeginRun(const double* values, std::size_t n);
  void AppendRunStep(std::size_t i, std::vector<BoxRef>* sealed);
  void EndRun(std::vector<BoxRef>* expired);

  /// Time of arrival i of the open run (BeginRun .. EndRun).
  std::uint64_t RunTime(std::size_t i) const { return run_first_t_ + i; }

  /// True when this configuration takes the flat level-major run path:
  /// aggregate transform, incremental levels, uniform period-1 schedule,
  /// and box capacity at most the base window. The capacity bound makes
  /// every level-(j-1) box feeding the left half of a level-j merge fully
  /// populated by that merge's arrival time (its last feature time is at
  /// most t - w/2 + c - 1 <= t), so the left input can be read from the
  /// post-pass deque while the right input comes from the per-arrival
  /// as-of ring — bit-identical to the arrival-major merge order.
  bool FlatRunEligible() const { return flat_eligible_; }

  /// Level-major maintenance of the whole open run (BeginRun .. EndRun;
  /// requires FlatRunEligible()): processes all arrivals of level 0, then
  /// level 1, ... Appends exactly the features AppendRunStep(0..n-1)
  /// would, producing bit-identical thread state; `sealed` is grouped by
  /// level (see AppendRun). Also records, per level and run position, the
  /// extent of the box covering that arrival immediately after its append
  /// — the snapshot RunRingLo/RunRingHi expose for interval composition
  /// at mid-run times (core/aggregate_monitor).
  void RunLevelPass(std::vector<BoxRef>* sealed);

  /// Level-major maintenance for configurations where every level computes
  /// its feature exactly from the raw window (exact_levels, or a strided
  /// schedule where every level's period exceeds 1). Each level visits
  /// only its firing positions (stride = LevelPeriod), skipping the
  /// per-arrival no-op dispatch the arrival-major loop pays; features and
  /// thread state are bit-identical to AppendRunStep(0..n-1), with
  /// `sealed` grouped by level (see AppendRun).
  void RunExactLevelPass(std::vector<BoxRef>* sealed);

  /// As-of extent snapshots recorded by RunLevelPass: entry i (of the
  /// config's FeatureDims() doubles) is the extent of the level-`level`
  /// box covering RunTime(i), as of that arrival. Valid for positions
  /// where the level had fired (RunTime(i) + 1 >= LevelWindow(level))
  /// until the next BeginRun.
  const double* RunRingLo(std::size_t level) const {
    return run_ring_lo_[level].data();
  }
  const double* RunRingHi(std::size_t level) const {
    return run_ring_hi_[level].data();
  }

  /// Number of values consumed so far; the latest value has time now()-1.
  std::uint64_t now() const { return raw_.size(); }

  const RingBuffer<double>& raw() const { return raw_; }
  const LevelThread& thread(std::size_t level) const {
    return threads_[level];
  }
  const StardustConfig& config() const { return config_; }

  /// Copies the raw window of `length` values ending at time `end_time`
  /// into `out`. Fails if any part of the window has left the buffer.
  Status GetWindow(std::uint64_t end_time, std::size_t length,
                   std::vector<double>* out) const;

  /// The exact feature of the raw window of `length` ending at `end_time`
  /// under this summarizer's transform (used for verification and tests).
  Result<Point> ExactFeature(std::uint64_t end_time,
                             std::size_t length) const;

  /// Number of feature boxes currently retained across all levels — the
  /// summary's space (Theorem 4.3: Θ(Σ_j 2^j W / (c·T_j)) boxes).
  std::size_t TotalBoxCount() const;

  /// Snapshot support (core/snapshot.cc): serializes the raw tail and
  /// every level thread. The configuration is serialized by the owner.
  void SaveTo(Writer* writer) const;
  /// Restores a serialized summarizer; the instance must have been
  /// constructed with the same configuration the snapshot was taken with.
  Status RestoreFrom(Reader* reader);

 private:
  /// Feature extent for level `level` ending at time t (Algorithm 1 body).
  Mbr ComputeFeature(std::size_t level, std::uint64_t t);
  /// Point feature computed exactly from the raw window; consumes the
  /// buffer (in-place normalization and transform — the hot path).
  Point ExactFeatureFromRaw(std::vector<double>* window) const;

  /// Allocation-free ComputeFeature for the batched path: exact windows
  /// are read from linear_, results land in `out` (reused storage).
  /// Bit-identical to ComputeFeature.
  void ComputeFeatureInto(std::size_t level, std::uint64_t t, Mbr* out);
  /// Allocation-free ExactFeatureFromRaw over a contiguous window span.
  void ExactFeatureIntoFromSpan(const double* window, std::size_t w,
                                Mbr* out);

  StardustConfig config_;
  RingBuffer<double> raw_;
  std::vector<LevelThread> threads_;
  std::vector<double> scratch_;
  bool flat_eligible_ = false;
  bool exact_levels_only_ = false;  // every level exact: RunExactLevelPass

  // Run staging (BeginRun .. EndRun): linear_ holds the raw tail required
  // by the largest window followed by the run itself, so every exact
  // window of every arrival in the run is one contiguous span. 64-byte
  // aligned so reduction kernels can use full-width vector loads.
  AlignedVector<double> linear_;
  std::uint64_t linear_base_ = 0;  // time of linear_[0]
  std::uint64_t run_first_t_ = 0;  // time of the run's first value
  std::size_t run_n_ = 0;
  Mbr feature_scratch_;
  std::vector<double> dwt_out_;
  std::vector<double> dwt_scratch_;
  // Flat-path as-of extent snapshots, one ring per level, FeatureDims()
  // doubles per run position (see RunRingLo/RunRingHi).
  std::vector<AlignedVector<double>> run_ring_lo_;
  std::vector<AlignedVector<double>> run_ring_hi_;
};

}  // namespace stardust

#endif  // STARDUST_CORE_SUMMARIZER_H_
