// AVX2 backend of the kernel dispatch table (common/kernels.h).
//
// This translation unit is compiled with -mavx2 but WITHOUT -mfma and with
// -ffp-contract=off: the bit-equivalence gate requires (a + b) * s to round
// exactly like the scalar reference, which an FMA contraction would break.
// Vector bodies process full 4-lane blocks; remainders run the scalar
// expression verbatim, so every lane count n >= 1 is covered.
#include "common/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace stardust {
namespace kernels {

namespace {

// out[k] = (in[2k] + in[2k+1]) * scale. In-place safe: the k-th vector
// iteration loads in[2k, 2k+8) before storing out[k, k+4), and later
// iterations read from 2(k+4) >= k+8, past everything already written.
void HaarDownAvx2(const double* in, std::size_t half, double scale,
                  double* out) {
  const __m256d vscale = _mm256_set1_pd(scale);
  std::size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    const __m256d x0 = _mm256_loadu_pd(in + 2 * k);
    const __m256d x1 = _mm256_loadu_pd(in + 2 * k + 4);
    // hadd gives [s0, s2, s1, s3] (per-128-lane pairs); permute restores
    // element order. The additions are the same (in[2k] + in[2k+1]) as the
    // scalar loop, so each lane is bit-identical.
    const __m256d sums = _mm256_hadd_pd(x0, x1);
    const __m256d ordered =
        _mm256_permute4x64_pd(sums, _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(out + k, _mm256_mul_pd(ordered, vscale));
  }
  for (; k < half; ++k) {
    out[k] = (in[2 * k] + in[2 * k + 1]) * scale;
  }
}

void HaarStepAvx2(const double* in, std::size_t half, double scale,
                  double* approx, double* detail) {
  const __m256d vscale = _mm256_set1_pd(scale);
  std::size_t k = 0;
  for (; k + 4 <= half; k += 4) {
    const __m256d x0 = _mm256_loadu_pd(in + 2 * k);
    const __m256d x1 = _mm256_loadu_pd(in + 2 * k + 4);
    const __m256d sums = _mm256_permute4x64_pd(_mm256_hadd_pd(x0, x1),
                                               _MM_SHUFFLE(3, 1, 2, 0));
    const __m256d diffs = _mm256_permute4x64_pd(_mm256_hsub_pd(x0, x1),
                                                _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(detail + k, _mm256_mul_pd(diffs, vscale));
    _mm256_storeu_pd(approx + k, _mm256_mul_pd(sums, vscale));
  }
  for (; k < half; ++k) {
    const double sum = (in[2 * k] + in[2 * k + 1]) * scale;
    detail[k] = (in[2 * k] - in[2 * k + 1]) * scale;
    approx[k] = sum;
  }
}

double ReduceMaxScalarRef(const double* v, std::size_t n) {
  double mx = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (mx < v[i]) mx = v[i];
  }
  return mx;
}

double ReduceMinScalarRef(const double* v, std::size_t n) {
  double mn = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < mn) mn = v[i];
  }
  return mn;
}

// Finite inputs make max/min order-insensitive up to ties, and tied finite
// doubles are bit-identical except ±0.0. A zero result therefore may have
// picked the wrong zero sign for the reference tie order; rerun the scalar
// loop in that (rare) case to restore it.
double ReduceMaxAvx2(const double* v, std::size_t n) {
  if (n < 8) return ReduceMaxScalarRef(v, n);
  __m256d acc = _mm256_loadu_pd(v);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double mx = lanes[0];
  if (mx < lanes[1]) mx = lanes[1];
  if (mx < lanes[2]) mx = lanes[2];
  if (mx < lanes[3]) mx = lanes[3];
  for (; i < n; ++i) {
    if (mx < v[i]) mx = v[i];
  }
  if (mx == 0.0) return ReduceMaxScalarRef(v, n);
  return mx;
}

double ReduceMinAvx2(const double* v, std::size_t n) {
  if (n < 8) return ReduceMinScalarRef(v, n);
  __m256d acc = _mm256_loadu_pd(v);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_min_pd(acc, _mm256_loadu_pd(v + i));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double mn = lanes[0];
  if (lanes[1] < mn) mn = lanes[1];
  if (lanes[2] < mn) mn = lanes[2];
  if (lanes[3] < mn) mn = lanes[3];
  for (; i < n; ++i) {
    if (v[i] < mn) mn = v[i];
  }
  if (mn == 0.0) return ReduceMinScalarRef(v, n);
  return mn;
}

void ReduceSpreadScalarRef(const double* v, std::size_t n, double* mx,
                           double* mn) {
  double hi = v[0];
  double lo = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double x = v[i];
    if (!(x < hi)) hi = x;  // last maximum (minmax_element tie order)
    if (x < lo) lo = x;     // first minimum
  }
  *mx = hi;
  *mn = lo;
}

void ReduceSpreadAvx2(const double* v, std::size_t n, double* mx,
                      double* mn) {
  if (n < 8) {
    ReduceSpreadScalarRef(v, n, mx, mn);
    return;
  }
  __m256d amax = _mm256_loadu_pd(v);
  __m256d amin = amax;
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    amax = _mm256_max_pd(amax, x);
    amin = _mm256_min_pd(amin, x);
  }
  double lmax[4], lmin[4];
  _mm256_storeu_pd(lmax, amax);
  _mm256_storeu_pd(lmin, amin);
  double hi = lmax[0];
  double lo = lmin[0];
  for (int l = 1; l < 4; ++l) {
    if (!(lmax[l] < hi)) hi = lmax[l];
    if (lmin[l] < lo) lo = lmin[l];
  }
  for (; i < n; ++i) {
    if (!(v[i] < hi)) hi = v[i];
    if (v[i] < lo) lo = v[i];
  }
  if (hi == 0.0 || lo == 0.0) {
    ReduceSpreadScalarRef(v, n, mx, mn);
    return;
  }
  *mx = hi;
  *mn = lo;
}

// Reassociating: one vector accumulator, lanes folded left-to-right, tail
// appended scalar. Deterministic for a given (backend, n), but rounds
// differently from the scalar left-to-right loop — gated behind the fast-
// reduction opt-in (see kernels.h).
double ReduceSumAvx2(const double* v, std::size_t n) {
  double sum = 0.0;
  std::size_t i = 0;
  if (n >= 4) {
    __m256d acc = _mm256_loadu_pd(v);
    for (i = 4; i + 4 <= n; i += 4) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
    }
    double lanes[4];
    _mm256_storeu_pd(lanes, acc);
    sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  }
  for (; i < n; ++i) sum += v[i];
  return sum;
}

void ZNormApplyAvx2(const double* src, std::size_t n, double mean,
                    double scale, double* dst) {
  const __m256d vmean = _mm256_set1_pd(mean);
  const __m256d vscale = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i,
                     _mm256_mul_pd(_mm256_sub_pd(x, vmean), vscale));
  }
  for (; i < n; ++i) dst[i] = (src[i] - mean) * scale;
}

void ZNormMomentsAvx2(const double* src, std::size_t n, double* mean,
                      double* norm2) {
  const double m = ReduceSumAvx2(src, n) / static_cast<double>(n);
  const __m256d vmean = _mm256_set1_pd(m);
  double s = 0.0;
  std::size_t i = 0;
  if (n >= 4) {
    __m256d acc = _mm256_setzero_pd();
    for (; i + 4 <= n; i += 4) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(src + i), vmean);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    double lanes[4];
    _mm256_storeu_pd(lanes, acc);
    s = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  }
  for (; i < n; ++i) {
    const double d = src[i] - m;
    s += d * d;
  }
  *mean = m;
  *norm2 = s;
}

void CopyAvx2(const double* src, std::size_t n, double* dst) {
  std::memcpy(dst, src, n * sizeof(double));
}

}  // namespace

extern const KernelTable kAvx2Table;
const KernelTable kAvx2Table = {
    HaarDownAvx2,   HaarStepAvx2,   ReduceMaxAvx2,
    ReduceMinAvx2,  ReduceSpreadAvx2, ReduceSumAvx2,
    ZNormApplyAvx2, ZNormMomentsAvx2, CopyAvx2,
};

}  // namespace kernels
}  // namespace stardust

#else  // !defined(__AVX2__)

// Toolchain/arch without AVX2: alias the tier to scalar semantics so the
// dispatch table still links (SetBackend clamps via MaxSupportedBackend,
// so this table is only reachable on such builds anyway).
namespace stardust {
namespace kernels {

namespace {

void HaarDownFallback(const double* in, std::size_t half, double scale,
                      double* out) {
  for (std::size_t k = 0; k < half; ++k) {
    out[k] = (in[2 * k] + in[2 * k + 1]) * scale;
  }
}
void HaarStepFallback(const double* in, std::size_t half, double scale,
                      double* approx, double* detail) {
  for (std::size_t k = 0; k < half; ++k) {
    const double sum = (in[2 * k] + in[2 * k + 1]) * scale;
    detail[k] = (in[2 * k] - in[2 * k + 1]) * scale;
    approx[k] = sum;
  }
}
double ReduceMaxFallback(const double* v, std::size_t n) {
  double mx = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (mx < v[i]) mx = v[i];
  }
  return mx;
}
double ReduceMinFallback(const double* v, std::size_t n) {
  double mn = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < mn) mn = v[i];
  }
  return mn;
}
void ReduceSpreadFallback(const double* v, std::size_t n, double* mx,
                          double* mn) {
  double hi = v[0];
  double lo = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double x = v[i];
    if (!(x < hi)) hi = x;
    if (x < lo) lo = x;
  }
  *mx = hi;
  *mn = lo;
}
double ReduceSumFallback(const double* v, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}
void ZNormApplyFallback(const double* src, std::size_t n, double mean,
                        double scale, double* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = (src[i] - mean) * scale;
}
void ZNormMomentsFallback(const double* src, std::size_t n, double* mean,
                          double* norm2) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m += src[i];
  m /= static_cast<double>(n);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = src[i] - m;
    s += d * d;
  }
  *mean = m;
  *norm2 = s;
}
void CopyFallback(const double* src, std::size_t n, double* dst) {
  std::memcpy(dst, src, n * sizeof(double));
}

}  // namespace

extern const KernelTable kAvx2Table;
const KernelTable kAvx2Table = {
    HaarDownFallback,   HaarStepFallback,   ReduceMaxFallback,
    ReduceMinFallback,  ReduceSpreadFallback, ReduceSumFallback,
    ZNormApplyFallback, ZNormMomentsFallback, CopyFallback,
};

}  // namespace kernels
}  // namespace stardust

#endif  // __AVX2__
