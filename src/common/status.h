// Status and Result<T>: exception-free error propagation in the style of
// Arrow / RocksDB. Library code never throws; fallible operations return a
// Status (or Result<T> when they also produce a value).
#ifndef STARDUST_COMMON_STATUS_H_
#define STARDUST_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace stardust {

/// Broad failure categories used across the library.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kAborted = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled on
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors absl::StatusOr.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Requires ok(). The stored value.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// OK when ok(), otherwise the stored error.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace stardust

/// Propagates a non-OK Status to the caller.
#define SD_RETURN_NOT_OK(expr)             \
  do {                                     \
    ::stardust::Status _st = (expr);       \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // STARDUST_COMMON_STATUS_H_
