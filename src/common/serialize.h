// Minimal binary (de)serialization substrate for snapshots.
//
// Fixed-width little-endian encoding, bounds-checked reads, and an FNV-1a
// payload checksum at the envelope level (core/snapshot.h). No exceptions:
// every read returns Status.
#ifndef STARDUST_COMMON_SERIALIZE_H_
#define STARDUST_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace stardust {

/// Appends primitives to a growing byte buffer.
class Writer {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  /// Allocator-generic so over-aligned hot arrays (common/aligned.h)
  /// serialize identically to plain vectors.
  template <typename Alloc>
  void DoubleVector(const std::vector<double, Alloc>& values) {
    U64(values.size());
    for (double v : values) F64(v);
  }

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked sequential reader over a byte buffer.
class Reader {
 public:
  explicit Reader(const std::string& buffer) : buffer_(buffer) {}

  std::size_t remaining() const { return buffer_.size() - offset_; }
  bool AtEnd() const { return remaining() == 0; }

  Status U8(std::uint8_t* out) {
    if (remaining() < 1) return Truncated();
    *out = static_cast<std::uint8_t>(buffer_[offset_++]);
    return Status::OK();
  }

  Status U32(std::uint32_t* out) {
    if (remaining() < 4) return Truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(buffer_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 4;
    *out = v;
    return Status::OK();
  }

  Status U64(std::uint64_t* out) {
    if (remaining() < 8) return Truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(buffer_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 8;
    *out = v;
    return Status::OK();
  }

  Status F64(double* out) {
    std::uint64_t bits = 0;
    SD_RETURN_NOT_OK(U64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  /// Reads a length-prefixed vector with a sanity cap against corrupt
  /// lengths blowing up memory. Allocator-generic (see Writer).
  template <typename Alloc>
  Status DoubleVector(std::vector<double, Alloc>* out,
                      std::uint64_t max_size = (1ULL << 32)) {
    std::uint64_t size = 0;
    SD_RETURN_NOT_OK(U64(&size));
    if (size > max_size || size * 8 > remaining()) return Truncated();
    out->resize(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      SD_RETURN_NOT_OK(F64(&(*out)[i]));
    }
    return Status::OK();
  }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("snapshot truncated or corrupt");
  }

  const std::string& buffer_;
  std::size_t offset_ = 0;
};

/// FNV-1a 64-bit checksum.
inline std::uint64_t Fnv1a(const std::string& data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace stardust

#endif  // STARDUST_COMMON_SERIALIZE_H_
