// Runtime-dispatched SIMD backends for the batched maintenance kernels.
//
// One binary carries three implementations of every hot kernel — scalar,
// AVX2, and AVX-512 — behind a per-kernel function-pointer table resolved
// once at startup from CPUID. The `STARDUST_KERNELS` environment variable
// (scalar | avx2 | avx512) or an explicit SetBackend call forces a tier for
// testing; requests above what the CPU supports clamp down, so forced-
// backend test matrices pass on any machine.
//
// Bit-equivalence contract (the FNV-1a state-digest cross-check in
// bench_feature and golden_replay_test depends on it):
//   - Elementwise kernels (haar_down, haar_step, znorm_apply, copy) produce
//     bit-identical results on every backend: each output lane evaluates
//     the same expression over the same inputs, and the SIMD translation
//     units are compiled without FMA contraction (-ffp-contract=off, no
//     -mfma), so (a + b) * s rounds identically to the scalar code.
//   - Order-sensitive reductions over *equal-priority* comparisons
//     (reduce_max, reduce_min, reduce_spread) are bit-identical because
//     equal finite doubles have equal bit patterns — except ±0.0 ties,
//     which the vector paths detect (result == 0.0) and resolve with a
//     scalar rescan reproducing the reference tie order exactly.
//   - Reassociating reductions (reduce_sum, znorm_moments) round
//     differently under vectorization. They are OFF by default — callers
//     keep the scalar left-to-right loops — and only engage behind the
//     explicit SetFastReductions / STARDUST_FAST_REDUCE=1 opt-in, with a
//     ULP-bounded equivalence test (tests/kernels_test.cc) instead of the
//     digest gate.
//
// All kernels require finite inputs: the append paths reject or split
// around NaN/±inf before any kernel runs (Stardust::Append pre-validates,
// the run paths pre-scan), so no kernel needs NaN-propagation semantics.
#ifndef STARDUST_COMMON_KERNELS_H_
#define STARDUST_COMMON_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace stardust {
namespace kernels {

/// ISA tiers, ordered: a machine supporting tier k supports all tiers < k.
enum class Backend : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar" / "avx2" / "avx512".
const char* BackendName(Backend backend);

/// Highest tier this CPU can execute (CPUID, resolved once).
Backend MaxSupportedBackend();

/// The tier the dispatch table currently points at.
Backend SelectedBackend();

/// Forces a tier by name ("scalar" | "avx2" | "avx512"; "" or "auto" means
/// best-supported). Unsupported requests clamp to MaxSupportedBackend().
/// Returns false (and changes nothing) for an unknown name. Not meant to be
/// called concurrently with running kernels: configure at startup or
/// between test phases.
bool SetBackend(const std::string& name);

/// Reassociating-reduction opt-in (see file comment). Also set at startup
/// from STARDUST_FAST_REDUCE=1. The getter is inline (one relaxed atomic
/// load) — it sits inside per-arrival exact-feature loops.
bool FastReductionsEnabled();
void SetFastReductions(bool enabled);

/// Per-kernel invocation counter indices (metrics JSON "kernels" section).
enum KernelId : std::size_t {
  kIdHaarDown = 0,
  kIdHaarStep,
  kIdReduceMax,
  kIdReduceMin,
  kIdReduceSpread,
  kIdReduceSum,
  kIdZNormApply,
  kIdZNormMoments,
  kIdCopy,
  kNumKernels,
};

/// Stable snake_case name of a kernel id (JSON keys).
const char* KernelName(std::size_t id);
std::uint64_t KernelCount(std::size_t id);
void ResetKernelCounters();

/// The dispatch table. One instance per backend; the active one is picked
/// at startup. Pointers, not virtuals: resolved once, no per-call vtable.
struct KernelTable {
  /// out[k] = (in[2k] + in[2k+1]) * scale for k in [0, half).
  /// In-place operation (out == in) is allowed: iteration k only reads
  /// indices >= 2k, which later iterations never overwrite.
  void (*haar_down)(const double* in, std::size_t half, double scale,
                    double* out);
  /// approx[k] = (in[2k] + in[2k+1]) * scale and
  /// detail[k] = (in[2k] - in[2k+1]) * scale. `approx` may alias `in`;
  /// `detail` must not overlap in[0, 2*half).
  void (*haar_step)(const double* in, std::size_t half, double scale,
                    double* approx, double* detail);
  /// First maximum under `if (mx < v)` — std::max_element tie order.
  double (*reduce_max)(const double* v, std::size_t n);
  /// First minimum under `if (v < mn)` — std::min_element tie order.
  double (*reduce_min)(const double* v, std::size_t n);
  /// minmax_element tie order: *last* maximum (`if (!(v < mx))`), first
  /// minimum.
  void (*reduce_spread)(const double* v, std::size_t n, double* mx,
                        double* mn);
  /// Reassociating sum (fast path only; default callers keep their scalar
  /// left-to-right loops).
  double (*reduce_sum)(const double* v, std::size_t n);
  /// dst[i] = (src[i] - mean) * scale; dst == src allowed.
  void (*znorm_apply)(const double* src, std::size_t n, double mean,
                      double scale, double* dst);
  /// Reassociating mean / centered norm² (fast path only).
  void (*znorm_moments)(const double* src, std::size_t n, double* mean,
                        double* norm2);
  /// dst[0, n) = src[0, n); ranges must not overlap.
  void (*copy)(const double* src, std::size_t n, double* dst);
};

namespace internal {
// Constant-initialized to the scalar table so kernels invoked from other
// translation units' static initializers are always valid; re-pointed to
// the CPUID-selected tier by this TU's initializer. Atomic so SetBackend
// in one thread and kernel calls in another stay data-race-free (tests
// under TSan force backends around live engines).
extern std::atomic<const KernelTable*> g_active;
extern std::atomic<std::uint64_t> g_counts[kNumKernels];
// Resolved dispatch knobs, kept here so their getters inline into hot
// loops: g_fast_reductions is the reassociating-reduction opt-in;
// g_run_cutoff is the already-resolved run-length crossover (override or
// per-backend calibration — updated by Select/SetRunCutoff in kernels.cc).
extern std::atomic<bool> g_fast_reductions;
extern std::atomic<std::size_t> g_run_cutoff;

inline const KernelTable& Active(KernelId id) {
  g_counts[id].fetch_add(1, std::memory_order_relaxed);
  return *g_active.load(std::memory_order_relaxed);
}
}  // namespace internal

inline bool FastReductionsEnabled() {
  return internal::g_fast_reductions.load(std::memory_order_relaxed);
}

// Hot-path entry points: count the invocation, then jump through the table.
inline void HaarDown(const double* in, std::size_t half, double scale,
                     double* out) {
  internal::Active(kIdHaarDown).haar_down(in, half, scale, out);
}
inline void HaarStep(const double* in, std::size_t half, double scale,
                     double* approx, double* detail) {
  internal::Active(kIdHaarStep).haar_step(in, half, scale, approx, detail);
}
inline double ReduceMax(const double* v, std::size_t n) {
  return internal::Active(kIdReduceMax).reduce_max(v, n);
}
inline double ReduceMin(const double* v, std::size_t n) {
  return internal::Active(kIdReduceMin).reduce_min(v, n);
}
inline void ReduceSpread(const double* v, std::size_t n, double* mx,
                         double* mn) {
  internal::Active(kIdReduceSpread).reduce_spread(v, n, mx, mn);
}
inline double ReduceSum(const double* v, std::size_t n) {
  return internal::Active(kIdReduceSum).reduce_sum(v, n);
}
inline void ZNormApply(const double* src, std::size_t n, double mean,
                       double scale, double* dst) {
  internal::Active(kIdZNormApply).znorm_apply(src, n, mean, scale, dst);
}
inline void ZNormMoments(const double* src, std::size_t n, double* mean,
                         double* norm2) {
  internal::Active(kIdZNormMoments).znorm_moments(src, n, mean, norm2);
}
inline void Copy(const double* src, std::size_t n, double* dst) {
  internal::Active(kIdCopy).copy(src, n, dst);
}

/// Cost-based run-length dispatch: runs of at most this many values take
/// the per-value append path; longer runs pay the staged-run setup
/// (BeginRun/EndRun, per-level flat state) that only amortizes across
/// several values. The crossover was calibrated per backend against
/// bench_feature's run-length sweep (the per-kernel microbench section in
/// BENCH_FEATURE.json documents the measurement); STARDUST_RUN_CUTOFF
/// overrides it for experiments. Every AppendRun entry point (Shard,
/// FleetMonitor, AggregateMonitor, Stardust) reads the same value, so the
/// decision is made once per run at the outermost layer and the inner
/// checks agree with it by construction. Inline: one relaxed atomic load
/// of the pre-resolved value.
inline std::size_t BatchedRunCutoff() {
  return internal::g_run_cutoff.load(std::memory_order_relaxed);
}

}  // namespace kernels
}  // namespace stardust

#endif  // STARDUST_COMMON_KERNELS_H_
