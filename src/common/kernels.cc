#include "common/kernels.h"

#include <cstdlib>
#include <cstring>

namespace stardust {
namespace kernels {

// ---------------------------------------------------------------------------
// Scalar reference backend. Every other backend must match these loops
// bit-for-bit (elementwise and comparison kernels) or within the documented
// ULP bound (reassociating reductions).

namespace {

void HaarDownScalar(const double* in, std::size_t half, double scale,
                    double* out) {
  for (std::size_t k = 0; k < half; ++k) {
    out[k] = (in[2 * k] + in[2 * k + 1]) * scale;
  }
}

void HaarStepScalar(const double* in, std::size_t half, double scale,
                    double* approx, double* detail) {
  for (std::size_t k = 0; k < half; ++k) {
    const double sum = (in[2 * k] + in[2 * k + 1]) * scale;
    detail[k] = (in[2 * k] - in[2 * k + 1]) * scale;
    approx[k] = sum;
  }
}

double ReduceMaxScalar(const double* v, std::size_t n) {
  double mx = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (mx < v[i]) mx = v[i];
  }
  return mx;
}

double ReduceMinScalar(const double* v, std::size_t n) {
  double mn = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < mn) mn = v[i];
  }
  return mn;
}

void ReduceSpreadScalar(const double* v, std::size_t n, double* mx,
                        double* mn) {
  double hi = v[0];
  double lo = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double x = v[i];
    if (!(x < hi)) hi = x;
    if (x < lo) lo = x;
  }
  *mx = hi;
  *mn = lo;
}

double ReduceSumScalar(const double* v, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}

void ZNormApplyScalar(const double* src, std::size_t n, double mean,
                      double scale, double* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = (src[i] - mean) * scale;
}

void ZNormMomentsScalar(const double* src, std::size_t n, double* mean,
                        double* norm2) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m += src[i];
  m /= static_cast<double>(n);
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = src[i] - m;
    s += d * d;
  }
  *mean = m;
  *norm2 = s;
}

void CopyScalar(const double* src, std::size_t n, double* dst) {
  std::memcpy(dst, src, n * sizeof(double));
}

constexpr KernelTable kScalarTable = {
    HaarDownScalar,   HaarStepScalar,   ReduceMaxScalar,
    ReduceMinScalar,  ReduceSpreadScalar, ReduceSumScalar,
    ZNormApplyScalar, ZNormMomentsScalar, CopyScalar,
};

}  // namespace

// Defined in kernels_avx2.cc / kernels_avx512.cc (compiled with the
// matching -m flags; declared here so this TU needs no ISA flags).
extern const KernelTable kAvx2Table;
extern const KernelTable kAvx512Table;

namespace internal {
std::atomic<const KernelTable*> g_active{&kScalarTable};
std::atomic<std::uint64_t> g_counts[kNumKernels] = {};
std::atomic<bool> g_fast_reductions{false};
// Constant-initialized to the scalar-tier crossover; Select() re-resolves
// it whenever the backend or the override changes.
std::atomic<std::size_t> g_run_cutoff{2};
}  // namespace internal

namespace {

std::atomic<Backend> g_selected{Backend::kScalar};
// Calibrated per-backend run-length crossovers (see BatchedRunCutoff()).
// Index by static_cast<int>(Backend). The staged-run setup cost is
// dominated by per-run bookkeeping, not kernel width, so the crossover is
// the same on every measured tier; the table keeps the knob per-backend so
// a recalibration can differentiate them without touching call sites.
constexpr std::size_t kRunCutoff[3] = {2, 2, 2};
std::atomic<std::size_t> g_run_cutoff_override{0};  // 0 = use kRunCutoff

const KernelTable* TableFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarTable;
    case Backend::kAvx2:
      return &kAvx2Table;
    case Backend::kAvx512:
      return &kAvx512Table;
  }
  return &kScalarTable;
}

void Select(Backend backend) {
  if (backend > MaxSupportedBackend()) backend = MaxSupportedBackend();
  g_selected.store(backend, std::memory_order_relaxed);
  internal::g_active.store(TableFor(backend), std::memory_order_relaxed);
  const std::size_t forced =
      g_run_cutoff_override.load(std::memory_order_relaxed);
  internal::g_run_cutoff.store(
      forced != 0 ? forced : kRunCutoff[static_cast<int>(backend)],
      std::memory_order_relaxed);
}

// Startup resolution: CPUID pick, then the env overrides. Runs at static
// initialization of this TU; kernels called before that (static init in
// other TUs) safely use the constant-initialized scalar table.
struct StartupResolver {
  StartupResolver() {
    const char* forced = std::getenv("STARDUST_KERNELS");
    if (forced == nullptr || !SetBackend(forced)) {
      Select(MaxSupportedBackend());
    }
    const char* fast = std::getenv("STARDUST_FAST_REDUCE");
    if (fast != nullptr && fast[0] == '1') SetFastReductions(true);
    const char* cutoff = std::getenv("STARDUST_RUN_CUTOFF");
    if (cutoff != nullptr) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(cutoff, &end, 10);
      if (end != cutoff && *end == '\0' && v != 0) {
        g_run_cutoff_override.store(static_cast<std::size_t>(v),
                                    std::memory_order_relaxed);
        internal::g_run_cutoff.store(static_cast<std::size_t>(v),
                                     std::memory_order_relaxed);
      }
    }
  }
};
const StartupResolver g_startup_resolver;

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "?";
}

Backend MaxSupportedBackend() {
#if defined(__x86_64__) || defined(__i386__)
  static const Backend max = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return Backend::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
    return Backend::kScalar;
  }();
  return max;
#else
  return Backend::kScalar;
#endif
}

Backend SelectedBackend() {
  return g_selected.load(std::memory_order_relaxed);
}

bool SetBackend(const std::string& name) {
  if (name.empty() || name == "auto") {
    Select(MaxSupportedBackend());
    return true;
  }
  if (name == "scalar") {
    Select(Backend::kScalar);
    return true;
  }
  if (name == "avx2") {
    Select(Backend::kAvx2);
    return true;
  }
  if (name == "avx512") {
    Select(Backend::kAvx512);
    return true;
  }
  return false;
}

void SetFastReductions(bool enabled) {
  internal::g_fast_reductions.store(enabled, std::memory_order_relaxed);
}

const char* KernelName(std::size_t id) {
  switch (id) {
    case kIdHaarDown:
      return "haar_down";
    case kIdHaarStep:
      return "haar_step";
    case kIdReduceMax:
      return "reduce_max";
    case kIdReduceMin:
      return "reduce_min";
    case kIdReduceSpread:
      return "reduce_spread";
    case kIdReduceSum:
      return "reduce_sum";
    case kIdZNormApply:
      return "znorm_apply";
    case kIdZNormMoments:
      return "znorm_moments";
    case kIdCopy:
      return "copy";
    default:
      return "?";
  }
}

std::uint64_t KernelCount(std::size_t id) {
  if (id >= kNumKernels) return 0;
  return internal::g_counts[id].load(std::memory_order_relaxed);
}

void ResetKernelCounters() {
  for (auto& c : internal::g_counts) {
    c.store(0, std::memory_order_relaxed);
  }
}

}  // namespace kernels
}  // namespace stardust
