// Over-aligned allocation for vector-kernel operands.
//
// The SIMD backends in common/kernels.h use unaligned loads (correct on any
// pointer), but loads that straddle a cache line cost an extra line fill on
// every iteration. The hot double arrays the kernels stream over —
// FeatureStore slabs, the sliding tracker's ring, the summarizer's staged
// run buffer — are therefore allocated on 64-byte boundaries so a
// vector-width access never splits a line (64 bytes = one x86 cache line =
// one AVX-512 register).
#ifndef STARDUST_COMMON_ALIGNED_H_
#define STARDUST_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace stardust {

/// Minimal C++17 allocator handing out `Alignment`-aligned storage.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// Cache-line aligned vector — the type of every kernel-facing double array.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

static_assert(sizeof(AlignedVector<double>) == sizeof(std::vector<double>),
              "the aligned allocator must stay stateless");

}  // namespace stardust

#endif  // STARDUST_COMMON_ALIGNED_H_
