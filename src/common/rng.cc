#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace stardust {

namespace {

inline std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& s : s_) s = mix.Next();
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  SD_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  SD_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return lo + static_cast<std::int64_t>(NextUint64(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double rate) {
  SD_DCHECK(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace stardust
