// Fixed-capacity ring buffer over the most recent values of a stream.
// Stardust keeps the raw tail of each stream (history of interest, size N)
// here so that candidate alarms and candidate matches can be verified
// exactly against the original data (paper, Algorithm 2 post-check).
#ifndef STARDUST_COMMON_RING_BUFFER_H_
#define STARDUST_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace stardust {

/// Ring buffer indexed by the global, monotonically increasing position of
/// each appended element. Element at global position p is retrievable while
/// p >= size() - capacity (i.e., it is among the `capacity` most recent).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity), data_(capacity) {
    SD_CHECK(capacity > 0);
  }

  /// Appends a value; the oldest value is overwritten once full.
  void Push(const T& value) {
    data_[size_ % capacity_] = value;
    ++size_;
  }

  /// Total number of values ever appended.
  std::uint64_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Global position of the oldest retrievable element.
  std::uint64_t first_position() const {
    return size_ > capacity_ ? size_ - capacity_ : 0;
  }

  /// True if the element at global position `pos` is still buffered.
  bool Contains(std::uint64_t pos) const {
    return pos < size_ && pos >= first_position();
  }

  /// Element at global position `pos`. Requires Contains(pos).
  const T& At(std::uint64_t pos) const {
    SD_DCHECK(Contains(pos));
    return data_[pos % capacity_];
  }

  /// Copies the window [first, first + count) into `out` (resized).
  /// Requires the whole window to be buffered.
  void CopyWindow(std::uint64_t first, std::size_t count,
                  std::vector<T>* out) const {
    SD_DCHECK(count == 0 || (Contains(first) && Contains(first + count - 1)));
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      (*out)[i] = data_[(first + i) % capacity_];
    }
  }

  /// Rebuilds the buffer to the state where `total_count` values were
  /// ever appended and `tail` (oldest first) holds the most recent
  /// min(total_count, capacity) of them. Used by snapshot restore.
  void RestoreTail(std::uint64_t total_count, const std::vector<T>& tail) {
    SD_CHECK(tail.size() ==
             (total_count < capacity_ ? total_count : capacity_));
    size_ = total_count - tail.size();
    for (const T& v : tail) Push(v);
    SD_DCHECK(size_ == total_count);
  }

 private:
  std::size_t capacity_;
  std::uint64_t size_ = 0;
  std::vector<T> data_;
};

}  // namespace stardust

#endif  // STARDUST_COMMON_RING_BUFFER_H_
