// Fixed-capacity ring buffers.
//
// RingBuffer: the single-threaded history window of a stream. Stardust
// keeps the raw tail of each stream (history of interest, size N) here so
// that candidate alarms and candidate matches can be verified exactly
// against the original data (paper, Algorithm 2 post-check).
//
// SpscRing: the atomic variant used by the sharded ingestion engine
// (src/engine) to hand (stream, value) tuples from a producer thread to a
// shard worker without locks.
#ifndef STARDUST_COMMON_RING_BUFFER_H_
#define STARDUST_COMMON_RING_BUFFER_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace stardust {

/// Ring buffer indexed by the global, monotonically increasing position of
/// each appended element. Element at global position p is retrievable while
/// p >= size() - capacity (i.e., it is among the `capacity` most recent).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity), data_(capacity) {
    SD_CHECK(capacity > 0);
  }

  /// Appends a value; the oldest value is overwritten once full.
  void Push(const T& value) {
    data_[size_ % capacity_] = value;
    ++size_;
  }

  /// Appends `count` values in order, equivalent to calling Push once per
  /// value but touching the size counter once and copying in at most two
  /// contiguous segments (no per-element modulo).
  void PushSpan(const T* values, std::size_t count) {
    SD_DCHECK(values != nullptr || count == 0);
    if (count >= capacity_) {
      // Only the last `capacity_` values survive; lay them out so that
      // position p lands at slot p % capacity_.
      const T* tail = values + (count - capacity_);
      const std::uint64_t first = size_ + (count - capacity_);
      for (std::size_t i = 0; i < capacity_; ++i) {
        data_[(first + i) % capacity_] = tail[i];
      }
      size_ += count;
      return;
    }
    const std::size_t start = static_cast<std::size_t>(size_ % capacity_);
    const std::size_t head = capacity_ - start < count ? capacity_ - start
                                                       : count;
    for (std::size_t i = 0; i < head; ++i) data_[start + i] = values[i];
    for (std::size_t i = head; i < count; ++i) {
      data_[i - head] = values[i];
    }
    size_ += count;
  }

  /// Total number of values ever appended.
  std::uint64_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  /// Global position of the oldest retrievable element.
  std::uint64_t first_position() const {
    return size_ > capacity_ ? size_ - capacity_ : 0;
  }

  /// True if the element at global position `pos` is still buffered.
  bool Contains(std::uint64_t pos) const {
    return pos < size_ && pos >= first_position();
  }

  /// Element at global position `pos`. Requires Contains(pos).
  const T& At(std::uint64_t pos) const {
    SD_DCHECK(Contains(pos));
    return data_[pos % capacity_];
  }

  /// Copies the window [first, first + count) into `out` (at least
  /// `count` slots) in at most two contiguous segments — no per-element
  /// modulo. Requires the whole window to be buffered.
  void CopySpanTo(std::uint64_t first, std::size_t count, T* out) const {
    SD_DCHECK(count == 0 || (Contains(first) && Contains(first + count - 1)));
    const std::size_t start = static_cast<std::size_t>(first % capacity_);
    const std::size_t head =
        capacity_ - start < count ? capacity_ - start : count;
    std::copy(data_.begin() + start, data_.begin() + start + head, out);
    std::copy(data_.begin(), data_.begin() + (count - head), out + head);
  }

  /// Copies the window [first, first + count) into `out` (resized).
  /// Requires the whole window to be buffered.
  void CopyWindow(std::uint64_t first, std::size_t count,
                  std::vector<T>* out) const {
    SD_DCHECK(count == 0 || (Contains(first) && Contains(first + count - 1)));
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      (*out)[i] = data_[(first + i) % capacity_];
    }
  }

  /// Rebuilds the buffer to the state where `total_count` values were
  /// ever appended and `tail` (oldest first) holds the most recent
  /// min(total_count, capacity) of them. Used by snapshot restore.
  void RestoreTail(std::uint64_t total_count, const std::vector<T>& tail) {
    SD_CHECK(tail.size() ==
             (total_count < capacity_ ? total_count : capacity_));
    size_ = total_count - tail.size();
    for (const T& v : tail) Push(v);
    SD_DCHECK(size_ == total_count);
  }

 private:
  std::size_t capacity_;
  std::uint64_t size_ = 0;
  std::vector<T> data_;
};

/// Bounded lock-free queue for exactly one producer thread. Pushes are
/// wait-free plain stores (no CAS on the hot path); pops are guarded by a
/// compare-and-swap on the head index so that, besides the single consumer,
/// the producer may also reclaim the oldest slot when the queue is full —
/// the mechanism behind the ingestion engine's kDropOldest overload policy.
/// Per-slot sequence numbers (Vyukov-style) make that contention safe.
///
/// Capacity is rounded up to a power of two. T must be trivially copyable
/// in spirit: a popped value is copied out of its slot before the slot is
/// released for reuse.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    SD_CHECK(min_capacity > 0);
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer only. False when the ring is full.
  bool TryPush(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[tail & mask_];
    if (slot.seq.load(std::memory_order_acquire) != tail) {
      return false;  // the oldest occupant has not been consumed yet
    }
    slot.value = value;
    slot.seq.store(tail + 1, std::memory_order_release);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer (or the producer stealing the oldest entry under
  /// kDropOldest). False when the ring is empty.
  bool TryPop(T* out) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[head & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const std::int64_t ready =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(head + 1);
      if (ready == 0) {
        if (head_.compare_exchange_weak(head, head + 1,
                                        std::memory_order_relaxed)) {
          *out = slot.value;
          slot.seq.store(head + capacity(), std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `head`; retry with the new value.
      } else if (ready < 0) {
        return false;  // empty
      } else {
        head = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Racy size estimate for metrics (queue depth high-water marks).
  std::size_t ApproxSize() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool ApproxEmpty() const { return ApproxSize() == 0; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  // Producer and consumer indexes live on separate cache lines so a busy
  // producer does not invalidate the consumer's line on every push.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_COMMON_RING_BUFFER_H_
