// Deterministic pseudo-random number generation. All stochastic components
// of the library (stream generators, query workloads) draw from these
// engines with explicit seeds so every experiment is reproducible.
#ifndef STARDUST_COMMON_RNG_H_
#define STARDUST_COMMON_RNG_H_

#include <cstdint>

namespace stardust {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, deterministic PRNG
/// (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Exponential variate with the given rate (rate > 0).
  double NextExponential(double rate);

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace stardust

#endif  // STARDUST_COMMON_RNG_H_
