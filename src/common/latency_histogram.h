// Fixed-bucket latency histogram with atomic counters. The ingestion
// engine records one sample per monitor append; benches and the metrics
// JSON exporter read counts and percentiles while workers keep writing.
// Buckets are powers of two in nanoseconds, so recording is a handful of
// relaxed atomic instructions — cheap enough for a per-append hot path.
#ifndef STARDUST_COMMON_LATENCY_HISTOGRAM_H_
#define STARDUST_COMMON_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace stardust {

/// Concurrent histogram over [0, ~8.6s) of nanosecond samples. Bucket i
/// covers [2^i, 2^(i+1)) ns (bucket 0 covers [0, 2)); samples beyond the
/// last bound land in the overflow bucket. All methods are thread-safe;
/// readers see a racy-but-monotonic view, which is fine for metrics.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 34;  // 2^33 ns ~ 8.6 s

  LatencyHistogram() = default;

  /// Records one sample. Thread-safe, lock-free.
  void Record(std::uint64_t nanos);

  /// Records `count` samples of `nanos` each with a single set of atomic
  /// updates. Batched appenders use this to charge a run's per-value cost
  /// without one atomic round-trip per value.
  void RecordN(std::uint64_t nanos, std::uint64_t count);

  /// Total number of recorded samples.
  std::uint64_t Count() const;
  /// Sum of all recorded samples (saturating view; relaxed counters).
  std::uint64_t TotalNanos() const;
  /// Mean sample in nanoseconds; 0 when empty.
  double MeanNanos() const;

  /// Upper bound (exclusive) of bucket i in nanoseconds.
  static std::uint64_t BucketBound(std::size_t i) {
    return std::uint64_t{1} << (i + 1);
  }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Smallest bucket upper bound below which at least `p` (0..1] of the
  /// samples fall — a conservative percentile estimate. 0 when empty.
  std::uint64_t PercentileNanos(double p) const;

  /// Clears every counter. Not linearizable against concurrent Record;
  /// call when workers are quiesced (e.g. after Flush) for exact numbers.
  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_nanos_{0};
};

}  // namespace stardust

#endif  // STARDUST_COMMON_LATENCY_HISTOGRAM_H_
