// Wall-clock stopwatch used by the benchmark harnesses to report the
// maintenance + query times the paper measures (Section 6).
#ifndef STARDUST_COMMON_STOPWATCH_H_
#define STARDUST_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace stardust {

/// Accumulating wall-clock timer. Start/Stop may be called repeatedly;
/// elapsed time across all completed intervals is summed.
class Stopwatch {
 public:
  Stopwatch() = default;

  void Start();
  /// Stops the current interval and adds it to the accumulated total.
  void Stop();
  /// Clears the accumulated total.
  void Reset();

  /// Accumulated elapsed time, excluding a currently running interval.
  double ElapsedSeconds() const;
  std::int64_t ElapsedMillis() const;
  std::int64_t ElapsedMicros() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  Clock::duration accumulated_{Clock::duration::zero()};
  bool running_ = false;
};

}  // namespace stardust

#endif  // STARDUST_COMMON_STOPWATCH_H_
