// Overflow behavior of bounded producer/consumer queues. Shared by the
// ingestion engine's shard rings (src/engine) and the alert bus
// (src/query) so both layers speak the same backpressure vocabulary.
#ifndef STARDUST_COMMON_OVERLOAD_POLICY_H_
#define STARDUST_COMMON_OVERLOAD_POLICY_H_

namespace stardust {

/// What a producer does when a bounded queue is full (the explicit
/// ingestion policies of feed-style systems: spill == block here, discard
/// drops; see docs/ENGINE.md).
enum class OverloadPolicy {
  /// Spin/yield until the consumer frees a slot. No data loss; producers
  /// inherit the consumer's pace (backpressure).
  kBlock,
  /// Drop the incoming item. The queued (older) data survives.
  kDropNewest,
  /// Reclaim the oldest queued item and enqueue the incoming one. The
  /// freshest data survives — the usual choice for live dashboards.
  kDropOldest,
};

inline const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kDropNewest: return "drop_newest";
    case OverloadPolicy::kDropOldest: return "drop_oldest";
  }
  return "unknown";
}

}  // namespace stardust

#endif  // STARDUST_COMMON_OVERLOAD_POLICY_H_
