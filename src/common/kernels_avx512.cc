// AVX-512 backend of the kernel dispatch table (common/kernels.h).
//
// Compiled with -mavx512f -mavx512dq -mavx512vl, no -mfma, and
// -ffp-contract=off — same bit-equivalence rules as the AVX2 backend
// (kernels_avx2.cc): elementwise lanes evaluate the scalar expression
// exactly; comparison reductions resolve ±0.0 ties with a scalar rescan;
// reassociating sums are opt-in only.
#include "common/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <cstring>

namespace stardust {
namespace kernels {

namespace {

// Deinterleave selectors: evens/odds of the concatenation [a | b].
const __m512i kEvenIdx =
    _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
const __m512i kOddIdx =
    _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);

void HaarDownAvx512(const double* in, std::size_t half, double scale,
                    double* out) {
  const __m512d vscale = _mm512_set1_pd(scale);
  std::size_t k = 0;
  // In-place safe: iteration k loads in[2k, 2k+16) before storing
  // out[k, k+8); later iterations read from 2(k+8) >= k+16.
  for (; k + 8 <= half; k += 8) {
    const __m512d z0 = _mm512_loadu_pd(in + 2 * k);
    const __m512d z1 = _mm512_loadu_pd(in + 2 * k + 8);
    const __m512d even = _mm512_permutex2var_pd(z0, kEvenIdx, z1);
    const __m512d odd = _mm512_permutex2var_pd(z0, kOddIdx, z1);
    _mm512_storeu_pd(out + k,
                     _mm512_mul_pd(_mm512_add_pd(even, odd), vscale));
  }
  for (; k < half; ++k) {
    out[k] = (in[2 * k] + in[2 * k + 1]) * scale;
  }
}

void HaarStepAvx512(const double* in, std::size_t half, double scale,
                    double* approx, double* detail) {
  const __m512d vscale = _mm512_set1_pd(scale);
  std::size_t k = 0;
  for (; k + 8 <= half; k += 8) {
    const __m512d z0 = _mm512_loadu_pd(in + 2 * k);
    const __m512d z1 = _mm512_loadu_pd(in + 2 * k + 8);
    const __m512d even = _mm512_permutex2var_pd(z0, kEvenIdx, z1);
    const __m512d odd = _mm512_permutex2var_pd(z0, kOddIdx, z1);
    _mm512_storeu_pd(detail + k,
                     _mm512_mul_pd(_mm512_sub_pd(even, odd), vscale));
    _mm512_storeu_pd(approx + k,
                     _mm512_mul_pd(_mm512_add_pd(even, odd), vscale));
  }
  for (; k < half; ++k) {
    const double sum = (in[2 * k] + in[2 * k + 1]) * scale;
    detail[k] = (in[2 * k] - in[2 * k + 1]) * scale;
    approx[k] = sum;
  }
}

double ReduceMaxScalarRef(const double* v, std::size_t n) {
  double mx = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (mx < v[i]) mx = v[i];
  }
  return mx;
}

double ReduceMinScalarRef(const double* v, std::size_t n) {
  double mn = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < mn) mn = v[i];
  }
  return mn;
}

double ReduceMaxAvx512(const double* v, std::size_t n) {
  if (n < 16) return ReduceMaxScalarRef(v, n);
  __m512d acc = _mm512_loadu_pd(v);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_max_pd(acc, _mm512_loadu_pd(v + i));
  }
  double lanes[8];
  _mm512_storeu_pd(lanes, acc);
  double mx = lanes[0];
  for (int l = 1; l < 8; ++l) {
    if (mx < lanes[l]) mx = lanes[l];
  }
  for (; i < n; ++i) {
    if (mx < v[i]) mx = v[i];
  }
  if (mx == 0.0) return ReduceMaxScalarRef(v, n);  // ±0.0 tie order
  return mx;
}

double ReduceMinAvx512(const double* v, std::size_t n) {
  if (n < 16) return ReduceMinScalarRef(v, n);
  __m512d acc = _mm512_loadu_pd(v);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_min_pd(acc, _mm512_loadu_pd(v + i));
  }
  double lanes[8];
  _mm512_storeu_pd(lanes, acc);
  double mn = lanes[0];
  for (int l = 1; l < 8; ++l) {
    if (lanes[l] < mn) mn = lanes[l];
  }
  for (; i < n; ++i) {
    if (v[i] < mn) mn = v[i];
  }
  if (mn == 0.0) return ReduceMinScalarRef(v, n);
  return mn;
}

void ReduceSpreadScalarRef(const double* v, std::size_t n, double* mx,
                           double* mn) {
  double hi = v[0];
  double lo = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double x = v[i];
    if (!(x < hi)) hi = x;
    if (x < lo) lo = x;
  }
  *mx = hi;
  *mn = lo;
}

void ReduceSpreadAvx512(const double* v, std::size_t n, double* mx,
                        double* mn) {
  if (n < 16) {
    ReduceSpreadScalarRef(v, n, mx, mn);
    return;
  }
  __m512d amax = _mm512_loadu_pd(v);
  __m512d amin = amax;
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(v + i);
    amax = _mm512_max_pd(amax, x);
    amin = _mm512_min_pd(amin, x);
  }
  double lmax[8], lmin[8];
  _mm512_storeu_pd(lmax, amax);
  _mm512_storeu_pd(lmin, amin);
  double hi = lmax[0];
  double lo = lmin[0];
  for (int l = 1; l < 8; ++l) {
    if (!(lmax[l] < hi)) hi = lmax[l];
    if (lmin[l] < lo) lo = lmin[l];
  }
  for (; i < n; ++i) {
    if (!(v[i] < hi)) hi = v[i];
    if (v[i] < lo) lo = v[i];
  }
  if (hi == 0.0 || lo == 0.0) {
    ReduceSpreadScalarRef(v, n, mx, mn);
    return;
  }
  *mx = hi;
  *mn = lo;
}

double ReduceSumAvx512(const double* v, std::size_t n) {
  double sum = 0.0;
  std::size_t i = 0;
  if (n >= 8) {
    __m512d acc = _mm512_loadu_pd(v);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm512_add_pd(acc, _mm512_loadu_pd(v + i));
    }
    double lanes[8];
    _mm512_storeu_pd(lanes, acc);
    sum = lanes[0];
    for (int l = 1; l < 8; ++l) sum += lanes[l];
  }
  for (; i < n; ++i) sum += v[i];
  return sum;
}

void ZNormApplyAvx512(const double* src, std::size_t n, double mean,
                      double scale, double* dst) {
  const __m512d vmean = _mm512_set1_pd(mean);
  const __m512d vscale = _mm512_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(src + i);
    _mm512_storeu_pd(dst + i,
                     _mm512_mul_pd(_mm512_sub_pd(x, vmean), vscale));
  }
  for (; i < n; ++i) dst[i] = (src[i] - mean) * scale;
}

void ZNormMomentsAvx512(const double* src, std::size_t n, double* mean,
                        double* norm2) {
  const double m = ReduceSumAvx512(src, n) / static_cast<double>(n);
  const __m512d vmean = _mm512_set1_pd(m);
  double s = 0.0;
  std::size_t i = 0;
  if (n >= 8) {
    __m512d acc = _mm512_setzero_pd();
    for (; i + 8 <= n; i += 8) {
      const __m512d d = _mm512_sub_pd(_mm512_loadu_pd(src + i), vmean);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
    }
    double lanes[8];
    _mm512_storeu_pd(lanes, acc);
    for (int l = 0; l < 8; ++l) s += lanes[l];
  }
  for (; i < n; ++i) {
    const double d = src[i] - m;
    s += d * d;
  }
  *mean = m;
  *norm2 = s;
}

void CopyAvx512(const double* src, std::size_t n, double* dst) {
  std::memcpy(dst, src, n * sizeof(double));
}

}  // namespace

extern const KernelTable kAvx512Table;
const KernelTable kAvx512Table = {
    HaarDownAvx512,   HaarStepAvx512,   ReduceMaxAvx512,
    ReduceMinAvx512,  ReduceSpreadAvx512, ReduceSumAvx512,
    ZNormApplyAvx512, ZNormMomentsAvx512, CopyAvx512,
};

}  // namespace kernels
}  // namespace stardust

#else  // no AVX-512 toolchain support

namespace stardust {
namespace kernels {

// Unreachable on such builds (SetBackend clamps via MaxSupportedBackend);
// alias to the AVX2 tier's table so the symbol links.
extern const KernelTable kAvx2Table;
extern const KernelTable kAvx512Table;
const KernelTable kAvx512Table = kAvx2Table;

}  // namespace kernels
}  // namespace stardust

#endif
