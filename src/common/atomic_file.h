// Atomic, durable file replacement.
//
// A snapshot written with a plain ofstream can be torn by a crash
// mid-write, leaving an unloadable file where a good one used to be.
// AtomicWriteFile removes that failure mode: the bytes go to
// `<path>.tmp`, are flushed and fsynced, and only then renamed over the
// destination (with the parent directory fsynced so the rename itself is
// durable). A crash at any instant leaves either the complete old file or
// the complete new file on disk — never a mix.
#ifndef STARDUST_COMMON_ATOMIC_FILE_H_
#define STARDUST_COMMON_ATOMIC_FILE_H_

#include <functional>
#include <string>

#include "common/status.h"

namespace stardust {

/// Injection points inside AtomicWriteFile, in execution order. A test
/// hook observing these can simulate a crash at each of them and verify
/// that recovery never sees a partial file.
enum class AtomicWritePhase {
  /// The temp file exists but holds no payload bytes yet.
  kTmpCreated,
  /// Roughly half the payload has been written to the temp file.
  kTmpMidWrite,
  /// The payload is fully written and fsynced to the temp file.
  kTmpWritten,
  /// The rename over the destination is about to happen.
  kBeforeRename,
};

/// Crash-injection hook for tests. When set, the hook runs at every phase
/// of every AtomicWriteFile call; returning false makes the write stop
/// right there — whatever a real crash would have left on disk stays on
/// disk — and AtomicWriteFile returns Status::Aborted. Pass nullptr to
/// clear. Not thread-safe against concurrent AtomicWriteFile calls; tests
/// install it only around single-threaded checkpoint sections.
void SetAtomicFileHookForTest(
    std::function<bool(AtomicWritePhase, const std::string& path)> hook);

/// Atomically replaces `path` with `bytes` (write temp, fsync, rename,
/// fsync directory). On failure the destination is untouched; a stale
/// `<path>.tmp` may remain and is safe to ignore or delete.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Reads a whole file into a string. NotFound when it cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace stardust

#endif  // STARDUST_COMMON_ATOMIC_FILE_H_
