#include "common/latency_histogram.h"

#include <bit>

namespace stardust {

void LatencyHistogram::Record(std::uint64_t nanos) {
  std::size_t bucket =
      nanos < 2 ? 0 : static_cast<std::size_t>(std::bit_width(nanos) - 1);
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

void LatencyHistogram::RecordN(std::uint64_t nanos, std::uint64_t count) {
  if (count == 0) return;
  std::size_t bucket =
      nanos < 2 ? 0 : static_cast<std::size_t>(std::bit_width(nanos) - 1);
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets_[bucket].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos * count, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::TotalNanos() const {
  return total_nanos_.load(std::memory_order_relaxed);
}

double LatencyHistogram::MeanNanos() const {
  const std::uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(TotalNanos()) /
                            static_cast<double>(n);
}

std::uint64_t LatencyHistogram::PercentileNanos(double p) const {
  const std::uint64_t n = Count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (static_cast<double>(seen) >= target) return BucketBound(i);
  }
  return BucketBound(kNumBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace stardust
