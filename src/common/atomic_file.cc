#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace stardust {

namespace {

std::function<bool(AtomicWritePhase, const std::string&)> g_hook;

bool CrashInjectedAt(AtomicWritePhase phase, const std::string& path) {
  return g_hook && !g_hook(phase, path);
}

Status InjectedCrash(int fd) {
  if (fd >= 0) ::close(fd);
  return Status::Aborted("crash injected by atomic-file test hook");
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, std::size_t size,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed for", path);
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Fsyncs the directory holding `path` so a completed rename survives
/// power loss. Filesystems that refuse to fsync directories are tolerated:
/// the rename is still atomic, just not yet durable.
void SyncParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (dfd < 0) return;
  ::fsync(dfd);
  ::close(dfd);
}

}  // namespace

void SetAtomicFileHookForTest(
    std::function<bool(AtomicWritePhase, const std::string& path)> hook) {
  g_hook = std::move(hook);
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", tmp);
  if (CrashInjectedAt(AtomicWritePhase::kTmpCreated, path)) {
    return InjectedCrash(fd);
  }
  // Two half writes so the mid-write injection point sees a torn file.
  const std::size_t half = bytes.size() / 2;
  Status st = WriteAll(fd, bytes.data(), half, tmp);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (CrashInjectedAt(AtomicWritePhase::kTmpMidWrite, path)) {
    return InjectedCrash(fd);
  }
  st = WriteAll(fd, bytes.data() + half, bytes.size() - half, tmp);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (::fsync(fd) != 0) {
    const Status err = Errno("fsync failed for", tmp);
    ::close(fd);
    return err;
  }
  if (CrashInjectedAt(AtomicWritePhase::kTmpWritten, path)) {
    return InjectedCrash(fd);
  }
  if (::close(fd) != 0) return Errno("close failed for", tmp);
  if (CrashInjectedAt(AtomicWritePhase::kBeforeRename, path)) {
    return InjectedCrash(-1);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename failed for", path);
  }
  SyncParentDirectory(path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) return Status::Internal("read failed for " + path);
  return buffer.str();
}

}  // namespace stardust
