// Internal invariant checks. SD_CHECK is always on (programming errors abort
// with a message); SD_DCHECK compiles out in NDEBUG builds. These are for
// invariants inside the library, not for validating user input — user input
// errors are reported through Status.
#ifndef STARDUST_COMMON_CHECK_H_
#define STARDUST_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SD_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SD_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define SD_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define SD_DCHECK(cond) SD_CHECK(cond)
#endif

#endif  // STARDUST_COMMON_CHECK_H_
