#include "common/stopwatch.h"

#include "common/check.h"

namespace stardust {

void Stopwatch::Start() {
  SD_DCHECK(!running_);
  start_ = Clock::now();
  running_ = true;
}

void Stopwatch::Stop() {
  SD_DCHECK(running_);
  accumulated_ += Clock::now() - start_;
  running_ = false;
}

void Stopwatch::Reset() {
  accumulated_ = Clock::duration::zero();
  running_ = false;
}

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(accumulated_).count();
}

std::int64_t Stopwatch::ElapsedMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(accumulated_)
      .count();
}

std::int64_t Stopwatch::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(accumulated_)
      .count();
}

}  // namespace stardust
