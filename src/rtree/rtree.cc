#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace stardust {

struct RTree::Node {
  /// 0 for leaves; an internal node at level L holds children at level L-1.
  std::size_t level = 0;
  /// Owning node; null for the root. Lets Delete/Update rebuild the
  /// root-to-leaf path from the record registry instead of searching.
  Node* parent = nullptr;

  struct Slot {
    Mbr box;
    RecordId id = 0;               // meaningful at level 0
    std::unique_ptr<Node> child;   // non-null above level 0
  };

  std::vector<Slot> slots;

  bool IsLeaf() const { return level == 0; }

  Mbr BoundingBox(std::size_t dims) const {
    Mbr box(dims);
    BoundingBoxInto(dims, &box);
    return box;
  }

  /// Allocation-free BoundingBox: resets `out` in place (reusing its
  /// extent storage) and expands it over the slots.
  void BoundingBoxInto(std::size_t dims, Mbr* out) const {
    out->mutable_lo().assign(dims, std::numeric_limits<double>::infinity());
    out->mutable_hi().assign(dims, -std::numeric_limits<double>::infinity());
    for (const auto& s : slots) out->Expand(s.box);
  }
};

namespace {

/// Resolved option values (fills the computed defaults).
struct Params {
  std::size_t max_entries;
  std::size_t min_entries;
  std::size_t reinsert_entries;
};

Params Resolve(const RTreeOptions& options) {
  Params p;
  p.max_entries = std::max<std::size_t>(4, options.max_entries);
  p.min_entries = options.min_entries != 0
                      ? options.min_entries
                      : std::max<std::size_t>(2, (p.max_entries * 2) / 5);
  SD_CHECK(p.min_entries * 2 <= p.max_entries + 1);
  p.reinsert_entries =
      options.reinsert_entries != 0
          ? options.reinsert_entries
          : std::max<std::size_t>(1, (p.max_entries * 3) / 10);
  SD_CHECK(p.reinsert_entries < p.max_entries);
  return p;
}

}  // namespace

RTree::RTree(std::size_t dims, RTreeOptions options)
    : dims_(dims), options_(options), root_(std::make_unique<Node>()) {
  SD_CHECK(dims > 0);
  const Params p = Resolve(options_);
  options_.max_entries = p.max_entries;
  options_.min_entries = p.min_entries;
  options_.reinsert_entries = p.reinsert_entries;
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

std::size_t RTree::height() const { return root_->level + 1; }

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

RTree::Node* RTree::ChooseSubtree(const Mbr& box, std::size_t target_level,
                                  std::vector<Node*>* path) {
  Node* node = root_.get();
  path->push_back(node);
  while (node->level > target_level) {
    std::size_t best = 0;
    // Zero-enlargement fast path: a child whose box already contains the
    // new box needs no enlargement and adds no overlap, so the full R*
    // criteria reduce to "smallest such child" — without the O(M²)
    // overlap scan below. Ties (common with point records, where every
    // area is zero) are broken toward the emptiest child so degenerate
    // duplicate-heavy data spreads across siblings instead of funneling
    // every insert into the first one.
    bool contained = false;
    double contained_area = std::numeric_limits<double>::infinity();
    std::size_t contained_fill = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < node->slots.size(); ++i) {
      if (!node->slots[i].box.Contains(box)) continue;
      const double area = node->slots[i].box.Area();
      const std::size_t fill = node->slots[i].child->slots.size();
      if (!contained || area < contained_area ||
          (area == contained_area && fill < contained_fill)) {
        contained = true;
        contained_area = area;
        contained_fill = fill;
        best = i;
      }
    }
    if (contained) {
      node = node->slots[best].child.get();
      path->push_back(node);
      continue;
    }
    if (node->level == target_level + 1 && node->level == 1) {
      // Children are leaves: minimize overlap enlargement
      // (ties: area enlargement, then area).
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < node->slots.size(); ++i) {
        Mbr grown = node->slots[i].box;
        grown.Expand(box);
        double overlap_delta = 0.0;
        for (std::size_t j = 0; j < node->slots.size(); ++j) {
          if (j == i) continue;
          overlap_delta += grown.OverlapArea(node->slots[j].box) -
                           node->slots[i].box.OverlapArea(node->slots[j].box);
        }
        const double enlarge = node->slots[i].box.Enlargement(box);
        const double area = node->slots[i].box.Area();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    } else {
      // Minimize area enlargement (ties: area).
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < node->slots.size(); ++i) {
        const double enlarge = node->slots[i].box.Enlargement(box);
        const double area = node->slots[i].box.Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    }
    node = node->slots[best].child.get();
    path->push_back(node);
  }
  return node;
}

void RTree::AdjustBoxesUpward(std::vector<Node*>& path) {
  // Recompute each parent slot box bottom-up.
  for (std::size_t i = path.size(); i-- > 1;) {
    Node* child = path[i];
    Node* parent = path[i - 1];
    for (auto& slot : parent->slots) {
      if (slot.child.get() == child) {
        child->BoundingBoxInto(dims_, &tighten_scratch_);
        slot.box = tighten_scratch_;
        break;
      }
    }
  }
}

void RTree::ExpandUpward(std::vector<Node*>& path, const Mbr& box) {
  // Pure insertion only grows ancestor boxes, so expanding each path slot
  // by the inserted box in place is equivalent to a full recompute — and
  // allocation-free. Once a slot already contains the box, every ancestor
  // does too (parent boxes cover child boxes), so stop there; with
  // duplicate-heavy data this exits at the first parent.
  for (std::size_t i = path.size(); i-- > 1;) {
    Node* child = path[i];
    Node* parent = path[i - 1];
    for (auto& slot : parent->slots) {
      if (slot.child.get() == child) {
        if (slot.box.Contains(box)) return;
        slot.box.Expand(box);
        break;
      }
    }
  }
}

void RTree::InsertEntry(const Mbr& box, RecordId id,
                        std::unique_ptr<Node> child, std::size_t target_level,
                        std::vector<bool>* reinserted) {
  SD_CHECK(root_->level >= target_level);
  std::vector<Node*> path;
  Node* node = ChooseSubtree(box, target_level, &path);
  Node::Slot slot;
  slot.box = box;
  slot.id = id;
  if (child != nullptr) child->parent = node;
  slot.child = std::move(child);
  node->slots.push_back(std::move(slot));
  if (target_level == 0) TrackRecord(id, node);
  ExpandUpward(path, box);
  if (node->slots.size() > options_.max_entries) {
    HandleOverflow(node, path, reinserted);
  }
}

void RTree::HandleOverflow(Node* node, std::vector<Node*>& path,
                           std::vector<bool>* reinserted) {
  const bool is_root = (node == root_.get());
  if (!is_root && node->level < reinserted->size() &&
      !(*reinserted)[node->level]) {
    (*reinserted)[node->level] = true;
    Reinsert(node, path, reinserted);
  } else {
    SplitNode(node, path);
  }
}

void RTree::Reinsert(Node* node, std::vector<Node*>& path,
                     std::vector<bool>* reinserted) {
  const Point center = node->BoundingBox(dims_).Center();
  // Sort entries by distance of their box center to the node center,
  // descending ("far reinsert").
  std::vector<std::size_t> order(node->slots.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> dist(node->slots.size());
  for (std::size_t i = 0; i < node->slots.size(); ++i) {
    dist[i] = Dist2(node->slots[i].box.Center(), center);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });

  const std::size_t p = options_.reinsert_entries;
  std::vector<Node::Slot> removed;
  removed.reserve(p);
  std::vector<bool> take(node->slots.size(), false);
  for (std::size_t i = 0; i < p; ++i) take[order[i]] = true;
  std::vector<Node::Slot> kept;
  kept.reserve(node->slots.size() - p);
  for (std::size_t i = 0; i < node->slots.size(); ++i) {
    if (take[i]) {
      if (node->IsLeaf()) UntrackRecord(node->slots[i].id, node);
      removed.push_back(std::move(node->slots[i]));
    } else {
      kept.push_back(std::move(node->slots[i]));
    }
  }
  node->slots = std::move(kept);
  AdjustBoxesUpward(path);

  const std::size_t target_level = node->level;
  for (auto& slot : removed) {
    InsertEntry(slot.box, slot.id, std::move(slot.child), target_level,
                reinserted);
  }
}

std::vector<std::size_t> RTree::ChooseSplitRStar(const Node& node) const {
  const std::size_t m = options_.min_entries;
  const std::size_t total = node.slots.size();

  // Degenerate fast path: when every box in the node is identical (heavy
  // duplication — e.g. point records of a repeating signal), all legal
  // distributions have the same margin, overlap, and area, so skip the
  // 2d sort passes and split down the middle.
  bool all_equal = true;
  for (std::size_t i = 1; i < total && all_equal; ++i) {
    all_equal = node.slots[i].box == node.slots[0].box;
  }
  if (all_equal) {
    std::vector<std::size_t> second_group;
    second_group.reserve(total - total / 2);
    for (std::size_t i = total / 2; i < total; ++i) second_group.push_back(i);
    return second_group;
  }

  // R* ChooseSplitAxis: for every axis, sort by lo and by hi and sum the
  // margins of all legal distributions; pick the axis with minimal sum.
  std::size_t best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  std::size_t best_split = m;

  std::vector<std::size_t> order(total);
  for (std::size_t axis = 0; axis < dims_; ++axis) {
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const Mbr& ba = node.slots[a].box;
        const Mbr& bb = node.slots[b].box;
        return by_hi ? ba.hi(axis) < bb.hi(axis) : ba.lo(axis) < bb.lo(axis);
      });
      // Prefix / suffix bounding boxes.
      std::vector<Mbr> prefix(total, Mbr(dims_));
      std::vector<Mbr> suffix(total, Mbr(dims_));
      Mbr acc(dims_);
      for (std::size_t i = 0; i < total; ++i) {
        acc.Expand(node.slots[order[i]].box);
        prefix[i] = acc;
      }
      acc = Mbr(dims_);
      for (std::size_t i = total; i-- > 0;) {
        acc.Expand(node.slots[order[i]].box);
        suffix[i] = acc;
      }
      double margin_sum = 0.0;
      for (std::size_t k = m; k + m <= total; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
      // Track the best distribution under this sort for later use.
      for (std::size_t k = m; k + m <= total; ++k) {
        const double overlap = prefix[k - 1].OverlapArea(suffix[k]);
        const double area = prefix[k - 1].Area() + suffix[k].Area();
        if (margin_sum < best_margin_sum ||
            (margin_sum == best_margin_sum &&
             (overlap < best_overlap ||
              (overlap == best_overlap && area < best_area)))) {
          best_margin_sum = margin_sum;
          best_overlap = overlap;
          best_area = area;
          best_axis = axis;
          best_axis_by_hi = by_hi != 0;
          best_split = k;
        }
      }
    }
  }

  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Mbr& ba = node.slots[a].box;
    const Mbr& bb = node.slots[b].box;
    return best_axis_by_hi ? ba.hi(best_axis) < bb.hi(best_axis)
                           : ba.lo(best_axis) < bb.lo(best_axis);
  });
  return std::vector<std::size_t>(order.begin() + best_split, order.end());
}

std::vector<std::size_t> RTree::ChooseSplitQuadratic(const Node& node) const {
  const std::size_t m = options_.min_entries;
  const std::size_t total = node.slots.size();

  // PickSeeds: the pair wasting the most area together.
  std::size_t seed_a = 0, seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < total; ++i) {
    for (std::size_t j = i + 1; j < total; ++j) {
      Mbr joint = node.slots[i].box;
      joint.Expand(node.slots[j].box);
      const double waste = joint.Area() - node.slots[i].box.Area() -
                           node.slots[j].box.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Mbr box_a = node.slots[seed_a].box;
  Mbr box_b = node.slots[seed_b].box;
  std::vector<std::size_t> group_a{seed_a}, group_b{seed_b};
  std::vector<bool> assigned(total, false);
  assigned[seed_a] = assigned[seed_b] = true;
  std::size_t remaining = total - 2;

  while (remaining > 0) {
    // Force-assign when one group must take everything left to reach m.
    if (group_a.size() + remaining == m) {
      for (std::size_t i = 0; i < total; ++i) {
        if (!assigned[i]) {
          group_a.push_back(i);
          assigned[i] = true;
        }
      }
      break;
    }
    if (group_b.size() + remaining == m) {
      for (std::size_t i = 0; i < total; ++i) {
        if (!assigned[i]) {
          group_b.push_back(i);
          assigned[i] = true;
        }
      }
      break;
    }
    // PickNext: the entry with the strongest preference.
    std::size_t pick = 0;
    double best_diff = -1.0;
    double pick_da = 0.0, pick_db = 0.0;
    for (std::size_t i = 0; i < total; ++i) {
      if (assigned[i]) continue;
      const double da = box_a.Enlargement(node.slots[i].box);
      const double db = box_b.Enlargement(node.slots[i].box);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_da = da;
        pick_db = db;
      }
    }
    const bool to_a =
        pick_da < pick_db ||
        (pick_da == pick_db && group_a.size() <= group_b.size());
    if (to_a) {
      group_a.push_back(pick);
      box_a.Expand(node.slots[pick].box);
    } else {
      group_b.push_back(pick);
      box_b.Expand(node.slots[pick].box);
    }
    assigned[pick] = true;
    --remaining;
  }
  return group_b;
}

void RTree::SplitNode(Node* node, std::vector<Node*>& path) {
  [[maybe_unused]] const std::size_t m = options_.min_entries;
  const std::size_t total = node->slots.size();
  SD_DCHECK(total >= 2 * m);

  const std::vector<std::size_t> second_group =
      options_.split_policy == SplitPolicy::kQuadratic
          ? ChooseSplitQuadratic(*node)
          : ChooseSplitRStar(*node);
  SD_DCHECK(second_group.size() >= m);
  SD_DCHECK(total - second_group.size() >= m);

  std::vector<bool> to_sibling(total, false);
  for (std::size_t i : second_group) to_sibling[i] = true;
  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;
  std::vector<Node::Slot> first_group;
  first_group.reserve(total - second_group.size());
  for (std::size_t i = 0; i < total; ++i) {
    if (to_sibling[i]) {
      // The slot changes nodes: move its registry entry (leaf records)
      // or re-point its child (internal slots) to the sibling.
      if (node->IsLeaf()) {
        RetrackRecord(node->slots[i].id, node, sibling.get());
      } else {
        node->slots[i].child->parent = sibling.get();
      }
      sibling->slots.push_back(std::move(node->slots[i]));
    } else {
      first_group.push_back(std::move(node->slots[i]));
    }
  }
  node->slots = std::move(first_group);

  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    node->parent = new_root.get();
    sibling->parent = new_root.get();
    Node::Slot left;
    left.box = node->BoundingBox(dims_);
    left.child = std::move(root_);
    Node::Slot right;
    right.box = sibling->BoundingBox(dims_);
    right.child = std::move(sibling);
    new_root->slots.push_back(std::move(left));
    new_root->slots.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  // Attach the sibling to the parent; the parent may overflow in turn.
  SD_DCHECK(path.size() >= 2 && path.back() == node);
  Node* parent = path[path.size() - 2];
  sibling->parent = parent;
  Node::Slot slot;
  slot.box = sibling->BoundingBox(dims_);
  slot.child = std::move(sibling);
  parent->slots.push_back(std::move(slot));
  // Refresh the split node's box in the parent.
  for (auto& s : parent->slots) {
    if (s.child.get() == node) {
      s.box = node->BoundingBox(dims_);
      break;
    }
  }
  path.pop_back();
  AdjustBoxesUpward(path);
  if (parent->slots.size() > options_.max_entries) {
    // Forced reinsert already happened (or the parent is the root): split.
    SplitNode(parent, path);
  }
}

Status RTree::Insert(const Mbr& box, RecordId id) {
  if (box.dims() != dims_) {
    return Status::InvalidArgument("box dimensionality mismatch");
  }
  if (box.empty()) {
    return Status::InvalidArgument("cannot index an empty box");
  }
  std::vector<bool> reinserted(root_->level + 1, false);
  InsertEntry(box, id, nullptr, 0, &reinserted);
  ++size_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

void RTree::TrackRecord(RecordId id, Node* leaf) {
  record_nodes_.emplace(id, leaf);
}

void RTree::UntrackRecord(RecordId id, Node* leaf) {
  auto range = record_nodes_.equal_range(id);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == leaf) {
      record_nodes_.erase(it);
      return;
    }
  }
  SD_DCHECK(false);  // every tracked record has exactly one entry
}

void RTree::RetrackRecord(RecordId id, Node* from, Node* to) {
  auto range = record_nodes_.equal_range(id);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == from) {
      it->second = to;
      return;
    }
  }
  SD_DCHECK(false);
}

RTree::Node* RTree::LocateRecord(const Mbr& box, RecordId id,
                                 std::size_t* slot_index) const {
  auto range = record_nodes_.equal_range(id);
  for (auto it = range.first; it != range.second; ++it) {
    Node* leaf = it->second;
    for (std::size_t i = 0; i < leaf->slots.size(); ++i) {
      if (leaf->slots[i].id == id && leaf->slots[i].box == box) {
        *slot_index = i;
        return leaf;
      }
    }
  }
  return nullptr;
}

void RTree::TightenUpward(Node* leaf) {
  // tighten_scratch_ is reused across calls: Update/Delete run once per
  // expired-or-resealed feature box, and a fresh Mbr per ancestor level
  // was measurable allocator traffic on the ingest hot path.
  for (Node* node = leaf; node->parent != nullptr; node = node->parent) {
    node->BoundingBoxInto(dims_, &tighten_scratch_);
    for (auto& slot : node->parent->slots) {
      if (slot.child.get() == node) {
        if (slot.box == tighten_scratch_) return;  // ancestors already tight
        slot.box = tighten_scratch_;
        break;
      }
    }
  }
}

Status RTree::Update(const Mbr& old_box, RecordId old_id, const Mbr& new_box,
                     RecordId new_id) {
  if (old_box.dims() != dims_ || new_box.dims() != dims_) {
    return Status::InvalidArgument("box dimensionality mismatch");
  }
  if (new_box.empty()) {
    return Status::InvalidArgument("cannot index an empty box");
  }
  std::size_t slot_index = 0;
  Node* leaf = LocateRecord(old_box, old_id, &slot_index);
  if (leaf == nullptr) return Status::NotFound("record not present");
  leaf->slots[slot_index].box = new_box;
  if (old_id != new_id) {
    leaf->slots[slot_index].id = new_id;
    UntrackRecord(old_id, leaf);
    TrackRecord(new_id, leaf);
  }
  TightenUpward(leaf);
  return Status::OK();
}

Status RTree::Delete(const Mbr& box, RecordId id) {
  if (box.dims() != dims_) {
    return Status::InvalidArgument("box dimensionality mismatch");
  }
  std::size_t slot_index = 0;
  Node* leaf = LocateRecord(box, id, &slot_index);
  if (leaf == nullptr) return Status::NotFound("record not present");
  // Rebuild the root-to-leaf path from the parent chain; the condense
  // walk below needs it bottom-up.
  std::vector<Node*> path;
  for (Node* node = leaf; node != nullptr; node = node->parent) {
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  UntrackRecord(id, leaf);
  leaf->slots.erase(leaf->slots.begin() +
                    static_cast<std::ptrdiff_t>(slot_index));
  --size_;

  // Condense: dissolve underfull nodes bottom-up and collect their entries
  // (with the level they must re-enter at).
  std::vector<std::pair<Node::Slot, std::size_t>> orphans;
  for (std::size_t i = path.size(); i-- > 1;) {
    Node* node = path[i];
    Node* parent = path[i - 1];
    if (node->slots.size() < options_.min_entries) {
      for (auto& slot : node->slots) {
        // Leaf records leave their node; they re-track on reinsertion.
        // Orphaned subtrees keep their internal registry entries (their
        // leaves move wholesale) and are re-parented on reinsertion.
        if (node->IsLeaf()) UntrackRecord(slot.id, node);
        orphans.emplace_back(std::move(slot), node->level);
      }
      for (std::size_t j = 0; j < parent->slots.size(); ++j) {
        if (parent->slots[j].child.get() == node) {
          parent->slots.erase(parent->slots.begin() +
                              static_cast<std::ptrdiff_t>(j));
          break;
        }
      }
    } else {
      bool changed = false;
      for (auto& slot : parent->slots) {
        if (slot.child.get() == node) {
          Mbr tightened = node->BoundingBox(dims_);
          changed = !(slot.box == tightened);
          if (changed) slot.box = std::move(tightened);
          break;
        }
      }
      // A surviving node with an unchanged box cannot affect anything
      // above it: ancestors keep their slot counts and their boxes are
      // unions over unchanged inputs.
      if (!changed) break;
    }
  }

  // Shrink the root while it is an internal node with a single child.
  while (!root_->IsLeaf() && root_->slots.size() == 1) {
    root_ = std::move(root_->slots[0].child);
    root_->parent = nullptr;
  }
  if (!root_->IsLeaf() && root_->slots.empty()) {
    root_ = std::make_unique<Node>();
  }

  // Reinsert orphaned entries, highest levels first so subtrees have a home.
  std::sort(orphans.begin(), orphans.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (auto& [slot, level] : orphans) {
    if (slot.child == nullptr) {
      std::vector<bool> reinserted(root_->level + 1, false);
      InsertEntry(slot.box, slot.id, nullptr, 0, &reinserted);
    } else if (slot.child->level + 1 > root_->level) {
      // The tree shrank below this subtree's height: splice its entries.
      std::vector<Node::Slot> pending;
      for (auto& s : slot.child->slots) {
        if (slot.child->IsLeaf()) UntrackRecord(s.id, slot.child.get());
        pending.push_back(std::move(s));
      }
      for (auto& s : pending) {
        std::vector<bool> reinserted(root_->level + 1, false);
        if (s.child == nullptr) {
          InsertEntry(s.box, s.id, nullptr, 0, &reinserted);
        } else {
          const std::size_t target = s.child->level + 1;
          InsertEntry(s.box, 0, std::move(s.child), target, &reinserted);
        }
      }
    } else {
      std::vector<bool> reinserted(root_->level + 1, false);
      const std::size_t target = slot.child->level + 1;
      InsertEntry(slot.box, 0, std::move(slot.child), target, &reinserted);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

namespace {

void SearchIntersectsImpl(const RTree::Node* node, const Mbr& query,
                          std::vector<RTreeEntry>* out) {
  for (const auto& slot : node->slots) {
    if (!slot.box.Intersects(query)) continue;
    if (node->IsLeaf()) {
      out->push_back({slot.box, slot.id});
    } else {
      SearchIntersectsImpl(slot.child.get(), query, out);
    }
  }
}

void SearchWithinImpl(const RTree::Node* node, const Point& q, double r2,
                      std::vector<RTreeEntry>* out) {
  for (const auto& slot : node->slots) {
    if (slot.box.MinDist2(q) > r2) continue;
    if (node->IsLeaf()) {
      out->push_back({slot.box, slot.id});
    } else {
      SearchWithinImpl(slot.child.get(), q, r2, out);
    }
  }
}

void SearchBoxWithinImpl(const RTree::Node* node, const Mbr& query, double r2,
                         std::vector<RTreeEntry>* out) {
  for (const auto& slot : node->slots) {
    if (slot.box.MinDist2(query) > r2) continue;
    if (node->IsLeaf()) {
      out->push_back({slot.box, slot.id});
    } else {
      SearchBoxWithinImpl(slot.child.get(), query, r2, out);
    }
  }
}

void ForEachImpl(const RTree::Node* node,
                 const std::function<void(const RTreeEntry&)>& fn) {
  for (const auto& slot : node->slots) {
    if (node->IsLeaf()) {
      fn({slot.box, slot.id});
    } else {
      ForEachImpl(slot.child.get(), fn);
    }
  }
}

}  // namespace

void RTree::SearchIntersects(const Mbr& query,
                             std::vector<RTreeEntry>* out) const {
  SD_CHECK(query.dims() == dims_);
  SearchIntersectsImpl(root_.get(), query, out);
}

void RTree::SearchWithin(const Point& q, double radius,
                         std::vector<RTreeEntry>* out) const {
  SD_CHECK(q.size() == dims_);
  SD_CHECK(radius >= 0.0);
  SearchWithinImpl(root_.get(), q, radius * radius, out);
}

void RTree::SearchBoxWithin(const Mbr& query, double radius,
                            std::vector<RTreeEntry>* out) const {
  SD_CHECK(query.dims() == dims_);
  SD_CHECK(radius >= 0.0);
  SearchBoxWithinImpl(root_.get(), query, radius * radius, out);
}

void RTree::ForEach(const std::function<void(const RTreeEntry&)>& fn) const {
  ForEachImpl(root_.get(), fn);
}

void RTree::SearchKNearest(const Point& q, std::size_t k,
                           std::vector<RTreeEntry>* out) const {
  out->clear();
  if (k == 0 || size_ == 0) return;
  SD_CHECK(q.size() == dims_);
  // Best-first search: a min-heap of nodes and leaf records keyed by
  // MinDist². A record popped from the heap is closer than everything
  // still enqueued, so the first k popped records are the answer.
  struct Item {
    double dist2;
    const Node* node;       // non-null for subtree items
    const Node::Slot* slot; // non-null for leaf-record items
  };
  struct Cmp {
    bool operator()(const Item& a, const Item& b) const {
      return a.dist2 > b.dist2;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Cmp> heap;
  heap.push({0.0, root_.get(), nullptr});
  while (!heap.empty() && out->size() < k) {
    const Item item = heap.top();
    heap.pop();
    if (item.slot != nullptr) {
      out->push_back({item.slot->box, item.slot->id});
      continue;
    }
    for (const auto& slot : item.node->slots) {
      if (item.node->IsLeaf()) {
        heap.push({slot.box.MinDist2(q), nullptr, &slot});
      } else {
        heap.push({slot.box.MinDist2(q), slot.child.get(), nullptr});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

namespace {

Status CheckNode(const RTree::Node* node, std::size_t dims,
                 const RTreeOptions& options, bool is_root,
                 const std::unordered_multimap<RecordId, RTree::Node*>& registry,
                 std::size_t* record_count) {
  if (!is_root && node->slots.size() < options.min_entries) {
    return Status::Internal("underfull node");
  }
  if (node->slots.size() > options.max_entries) {
    return Status::Internal("overfull node");
  }
  for (const auto& slot : node->slots) {
    if (node->IsLeaf()) {
      if (slot.child != nullptr) {
        return Status::Internal("leaf slot has a child");
      }
      // Every record must be registered to exactly the leaf holding it.
      const auto range = registry.equal_range(slot.id);
      bool tracked = false;
      for (auto it = range.first; it != range.second && !tracked; ++it) {
        tracked = it->second == node;
      }
      if (!tracked) {
        return Status::Internal("record not registered to its leaf");
      }
      ++*record_count;
    } else {
      if (slot.child == nullptr) {
        return Status::Internal("internal slot missing child");
      }
      if (slot.child->level + 1 != node->level) {
        return Status::Internal("level mismatch between parent and child");
      }
      if (slot.child->parent != node) {
        return Status::Internal("child's parent pointer is stale");
      }
      const Mbr expect = slot.child->BoundingBox(dims);
      if (!(slot.box == expect)) {
        return Status::Internal("parent slot box does not match child");
      }
      SD_RETURN_NOT_OK(CheckNode(slot.child.get(), dims, options, false,
                                 registry, record_count));
    }
  }
  return Status::OK();
}

}  // namespace

Status RTree::CheckInvariants() const {
  if (root_->parent != nullptr) {
    return Status::Internal("root has a parent pointer");
  }
  std::size_t record_count = 0;
  SD_RETURN_NOT_OK(CheckNode(root_.get(), dims_, options_, true, record_nodes_,
                             &record_count));
  if (record_count != size_) {
    std::ostringstream os;
    os << "size mismatch: counted " << record_count << ", tracked " << size_;
    return Status::Internal(os.str());
  }
  if (record_nodes_.size() != size_) {
    std::ostringstream os;
    os << "registry mismatch: " << record_nodes_.size() << " entries, "
       << size_ << " records";
    return Status::Internal(os.str());
  }
  return Status::OK();
}

}  // namespace stardust
