// R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990).
//
// The paper indexes the MBRs of every resolution level in "the R*-Tree
// family of index structures" (Section 4). This is a from-scratch, in-memory
// R*-tree with the full R* insertion heuristics:
//   - ChooseSubtree: minimum overlap enlargement at the leaf level, minimum
//     area enlargement above it;
//   - OverflowTreatment: forced reinsertion of the p entries farthest from
//     the node center on the first overflow per level per insertion;
//   - R* split: axis chosen by minimum margin sum, distribution chosen by
//     minimum overlap (ties broken by area).
// Deletion condenses the tree (underfull nodes are dissolved and their
// entries reinserted), which Stardust uses to expire features that fall out
// of the history of interest.
#ifndef STARDUST_RTREE_RTREE_H_
#define STARDUST_RTREE_RTREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geom/mbr.h"

namespace stardust {

/// Opaque identifier of an indexed record. Stardust encodes
/// (stream id, box sequence number) pairs into it.
using RecordId = std::uint64_t;

/// A leaf-level record: a box and its identifier.
struct RTreeEntry {
  Mbr box;
  RecordId id = 0;
};

/// Node split algorithm. The paper indexes with "the R*-tree family";
/// the classic Guttman quadratic split is provided as an ablation and a
/// faster-build alternative.
enum class SplitPolicy {
  /// Beckmann et al.: axis by margin sum, distribution by overlap.
  kRStar,
  /// Guttman 1984: quadratic seed picking + greedy assignment.
  kQuadratic,
};

/// Tuning knobs. Defaults follow the R*-tree paper (m = 40% of M,
/// p = 30% of M reinserted on overflow).
struct RTreeOptions {
  std::size_t max_entries = 32;
  /// Computed as max(2, 0.4 * max_entries) when zero.
  std::size_t min_entries = 0;
  /// Computed as max(1, 0.3 * max_entries) when zero.
  std::size_t reinsert_entries = 0;
  SplitPolicy split_policy = SplitPolicy::kRStar;
};

/// Dynamic R*-tree over f-dimensional MBRs. Not thread-safe; Stardust
/// serializes maintenance and queries per level.
class RTree {
 public:
  /// Tree node; defined in the implementation file. Public only so that
  /// internal helper functions can name it — not part of the stable API.
  struct Node;

  /// Creates a tree for boxes of dimensionality `dims`.
  RTree(std::size_t dims, RTreeOptions options = {});
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  std::size_t dims() const { return dims_; }
  /// Number of records currently indexed.
  std::size_t size() const { return size_; }
  /// Height of the tree; 1 when only a root leaf exists.
  std::size_t height() const;

  /// Inserts a record. `box` must be non-empty and of dims() dimensions.
  Status Insert(const Mbr& box, RecordId id);

  /// Removes the record with the given id whose stored box equals `box`.
  /// Returns NotFound if no such record exists. The leaf holding the
  /// record is located through a record registry (id -> leaf), so the
  /// cost is independent of how heavily the indexed boxes overlap —
  /// point-heavy workloads previously degenerated to scanning every
  /// subtree whose box contained the target.
  Status Delete(const Mbr& box, RecordId id);

  /// Replaces the record (old_box, old_id) with (new_box, new_id) without
  /// restructuring the tree: the leaf slot is rewritten in place and only
  /// the ancestor bounding boxes are recomputed (O(height)). Equivalent to
  /// Delete(old_box, old_id) + Insert(new_box, new_id) except that the
  /// record keeps its leaf, so no condense/reinsert churn happens. The
  /// incremental-maintenance path for indexes that replace records at a
  /// steady rate (a stream's expiring box replaced by its newest one, the
  /// correlator's per-level indexes tracking drifting features). Returns
  /// NotFound when (old_box, old_id) is not present.
  Status Update(const Mbr& old_box, RecordId old_id, const Mbr& new_box,
                RecordId new_id);

  /// Collects all records whose box intersects `query`.
  void SearchIntersects(const Mbr& query,
                        std::vector<RTreeEntry>* out) const;

  /// Collects all records whose box has MinDist(center) <= radius — the
  /// candidate set of a range query with center `q` and radius `radius`
  /// (every box possibly containing a feature within `radius` of q).
  void SearchWithin(const Point& q, double radius,
                    std::vector<RTreeEntry>* out) const;

  /// Collects all records whose box is within MinDist <= radius of the
  /// query box (box-to-box range query used by Algorithm 4).
  void SearchBoxWithin(const Mbr& query, double radius,
                       std::vector<RTreeEntry>* out) const;

  /// The k records with smallest MinDist to `q` (best-first branch and
  /// bound, Roussopoulos et al. — the paper's reference [17]), sorted by
  /// ascending distance. Returns fewer than k when the tree is smaller.
  void SearchKNearest(const Point& q, std::size_t k,
                      std::vector<RTreeEntry>* out) const;

  /// Invokes `fn` on every stored record (tree order).
  void ForEach(const std::function<void(const RTreeEntry&)>& fn) const;

  /// Verifies structural invariants (entry counts, parent boxes covering
  /// children, uniform leaf depth). Used by property tests; returns a
  /// failure description on violation.
  Status CheckInvariants() const;

 private:
  void InsertEntry(const Mbr& box, RecordId id, std::unique_ptr<Node> child,
                   std::size_t target_level, std::vector<bool>* reinserted);
  Node* ChooseSubtree(const Mbr& box, std::size_t target_level,
                      std::vector<Node*>* path);
  void HandleOverflow(Node* node, std::vector<Node*>& path,
                      std::vector<bool>* reinserted);
  void SplitNode(Node* node, std::vector<Node*>& path);
  /// Partitions an overfull node's slots; returns the second group.
  std::vector<std::size_t> ChooseSplitRStar(const Node& node) const;
  std::vector<std::size_t> ChooseSplitQuadratic(const Node& node) const;
  void Reinsert(Node* node, std::vector<Node*>& path,
                std::vector<bool>* reinserted);
  void AdjustBoxesUpward(std::vector<Node*>& path);
  /// Insert-path variant of AdjustBoxesUpward: grows ancestor slot boxes
  /// by `box` in place (no recompute, no allocation), stopping at the
  /// first ancestor that already contains it.
  void ExpandUpward(std::vector<Node*>& path, const Mbr& box);
  /// Record-registry maintenance: every leaf record has one entry mapping
  /// its id to the leaf currently holding it (a multimap because the API
  /// allows duplicate ids with distinct boxes).
  void TrackRecord(RecordId id, Node* leaf);
  void UntrackRecord(RecordId id, Node* leaf);
  void RetrackRecord(RecordId id, Node* from, Node* to);
  /// Leaf currently holding (box, id), or null. `slot_index` receives the
  /// matching slot.
  Node* LocateRecord(const Mbr& box, RecordId id,
                     std::size_t* slot_index) const;
  /// Recomputes ancestor bounding boxes from `leaf` to the root, stopping
  /// early once a parent box is unchanged.
  void TightenUpward(Node* leaf);

  std::size_t dims_;
  RTreeOptions options_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  /// Reusable extent buffer for TightenUpward (allocation-free recompute
  /// of ancestor boxes on the Update/Delete path).
  Mbr tighten_scratch_;
  /// id -> leaf registry backing Delete/Update (and their O(height)
  /// cost independent of box overlap).
  std::unordered_multimap<RecordId, Node*> record_nodes_;
};

}  // namespace stardust

#endif  // STARDUST_RTREE_RTREE_H_
