// MR-Index (Kahveci & Singh, ICDE 2001) — the offline multi-resolution
// comparator of the paper's Figure 5.
//
// MR-Index extracts *exact* DWT features with a sliding window at every
// resolution, groups c consecutive features into MBRs stored per stream,
// and answers variable-length queries with binary decomposition plus
// hierarchical radius refinement. That is precisely Stardust's online
// configuration with `exact_levels` set: features are recomputed from raw
// data at every resolution (per-item cost Θ(Σ w_j), fine offline, too
// expensive for streams — the gap Stardust's incremental merge closes).
// The query algorithm is shared with PatternQueryEngine::QueryOnline.
#ifndef STARDUST_BASELINES_MRINDEX_H_
#define STARDUST_BASELINES_MRINDEX_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/pattern_query.h"
#include "core/stardust.h"
#include "stream/dataset.h"

namespace stardust {

/// MR-Index parameters (mirrors the relevant Stardust knobs).
struct MrIndexOptions {
  std::size_t base_window = 64;   // W
  std::size_t num_levels = 5;     // resolutions W .. W·2^{J}
  std::size_t box_capacity = 64;  // c
  std::size_t coefficients = 2;   // f
  std::size_t history = 4096;     // N (offline: cover the whole dataset)
  double r_max = 1.0;
};

/// Offline MR-Index over a finite dataset.
class MrIndex {
 public:
  static Result<std::unique_ptr<MrIndex>> Build(const Dataset& dataset,
                                                const MrIndexOptions& options);

  /// Variable-length query (Algorithm 3's shared search path).
  Result<PatternResult> Query(const std::vector<double>& query,
                              double radius) const;

  const Stardust& core() const { return *core_; }

 private:
  explicit MrIndex(std::unique_ptr<Stardust> core);

  std::unique_ptr<Stardust> core_;
  PatternQueryEngine engine_;
};

}  // namespace stardust

#endif  // STARDUST_BASELINES_MRINDEX_H_
