#include "baselines/swt.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace stardust {

Result<std::unique_ptr<SwtMonitor>> SwtMonitor::Create(
    AggregateKind kind, std::size_t base_window,
    std::vector<WindowThreshold> thresholds) {
  if (kind == AggregateKind::kMin) {
    return Status::InvalidArgument(
        "SWT's superset-window filter requires an aggregate that is "
        "monotone non-decreasing in the window (SUM/MAX/SPREAD)");
  }
  if (base_window == 0) {
    return Status::InvalidArgument("base_window must be positive");
  }
  if (thresholds.empty()) {
    return Status::InvalidArgument("no windows to monitor");
  }
  // Assign each window to the lowest level j with w <= 2^j * W.
  std::size_t max_level = 0;
  std::vector<std::size_t> window_level(thresholds.size());
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    if (thresholds[i].window == 0) {
      return Status::InvalidArgument("window sizes must be positive");
    }
    std::size_t level = 0;
    while ((base_window << level) < thresholds[i].window) ++level;
    window_level[i] = level;
    max_level = std::max(max_level, level);
  }
  std::vector<std::size_t> level_windows(max_level + 1);
  std::vector<double> level_thresholds(
      max_level + 1, std::numeric_limits<double>::infinity());
  for (std::size_t j = 0; j <= max_level; ++j) {
    level_windows[j] = base_window << j;
  }
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    level_thresholds[window_level[i]] = std::min(
        level_thresholds[window_level[i]], thresholds[i].threshold);
  }
  return std::unique_ptr<SwtMonitor>(new SwtMonitor(
      kind, std::move(thresholds), std::move(level_windows),
      std::move(level_thresholds), std::move(window_level)));
}

SwtMonitor::SwtMonitor(AggregateKind kind,
                       std::vector<WindowThreshold> thresholds,
                       std::vector<std::size_t> level_windows,
                       std::vector<double> level_thresholds,
                       std::vector<std::size_t> window_level)
    : kind_(kind),
      thresholds_(std::move(thresholds)),
      level_windows_(std::move(level_windows)),
      level_thresholds_(std::move(level_thresholds)),
      window_level_(std::move(window_level)),
      level_tracker_(kind, level_windows_),
      query_tracker_(kind,
                     [&] {
                       std::vector<std::size_t> windows;
                       windows.reserve(thresholds_.size());
                       for (const auto& wt : thresholds_) {
                         windows.push_back(wt.window);
                       }
                       return windows;
                     }()),
      stats_(thresholds_.size()) {}

void SwtMonitor::Append(double value) {
  level_tracker_.Push(value);
  query_tracker_.Push(value);
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    if (!query_tracker_.Ready(i)) continue;
    AlarmStats& stats = stats_[i];
    ++stats.checks;
    const std::size_t level = window_level_[i];
    // The level aggregate needs its full window; before that, fall back to
    // whatever data exists (the aggregate over the full prefix still
    // dominates the query window's aggregate).
    const double level_value = level_tracker_.Ready(level)
                                   ? level_tracker_.Current(level)
                                   : query_tracker_.Current(i);
    if (level_value < level_thresholds_[level]) continue;
    ++stats.candidates;
    if (query_tracker_.Current(i) >= thresholds_[i].threshold) {
      ++stats.true_alarms;
    }
  }
}

AlarmStats SwtMonitor::TotalStats() const {
  AlarmStats total;
  for (const AlarmStats& s : stats_) {
    total.candidates += s.candidates;
    total.true_alarms += s.true_alarms;
    total.checks += s.checks;
  }
  return total;
}

}  // namespace stardust
