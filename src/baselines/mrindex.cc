#include "baselines/mrindex.h"

namespace stardust {

Result<std::unique_ptr<MrIndex>> MrIndex::Build(
    const Dataset& dataset, const MrIndexOptions& options) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = options.coefficients;
  config.r_max = options.r_max;
  config.base_window = options.base_window;
  config.num_levels = options.num_levels;
  config.history = options.history;
  config.box_capacity = options.box_capacity;
  config.update_period = 1;
  config.exact_levels = true;  // the defining difference from Stardust
  config.index_features = true;
  Result<std::unique_ptr<Stardust>> core = Stardust::Create(config);
  if (!core.ok()) return core.status();
  auto index =
      std::unique_ptr<MrIndex>(new MrIndex(std::move(core).value()));
  for (std::size_t i = 0; i < dataset.num_streams(); ++i) {
    const StreamId id = index->core_->AddStream();
    for (double v : dataset.streams[i]) {
      SD_RETURN_NOT_OK(index->core_->Append(id, v));
    }
  }
  return index;
}

MrIndex::MrIndex(std::unique_ptr<Stardust> core)
    : core_(std::move(core)), engine_(*core_) {}

Result<PatternResult> MrIndex::Query(const std::vector<double>& query,
                                     double radius) const {
  return engine_.QueryOnline(query, radius);
}

}  // namespace stardust
