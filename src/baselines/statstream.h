// StatStream (Zhu & Shasha, VLDB 2002): statistical monitoring of many
// streams with basic-window DFT features and an orthogonal grid.
//
// Each stream keeps the first f/2 (non-DC) complex DFT coefficients of its
// sliding history window of size N, updated incrementally once per basic
// window of W arrivals (cost Θ(f · W) per stream per refresh). Because the
// non-DC coefficients of the all-ones vector vanish, z-normalization is a
// pure rescale of the coefficients by 1/‖x − μ‖, maintained from running
// sums. The f-dimensional feature (real/imag parts, unitary scaling with
// the conjugate-mirror factor √2) lower-bounds the z-normalized window
// distance by Parseval.
//
// Detection superimposes a regular grid with cells of side `cell_size` on
// the feature space; a stream is a correlation candidate of every stream
// in its own or a neighboring cell (neighborhood reach ⌈r / cell⌉ cells
// per axis, (2⌈r/cell⌉+1)^f cells per probe — the paper's §6.3 analysis of
// why StatStream degrades for large r and large f). Candidates are
// verified against the exact z-normalized window distance.
#ifndef STARDUST_BASELINES_STATSTREAM_H_
#define STARDUST_BASELINES_STATSTREAM_H_

#include <complex>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.h"
#include "common/status.h"
#include "core/correlation_monitor.h"

namespace stardust {

/// StatStream parameters.
struct StatStreamOptions {
  std::size_t history = 256;      // N
  std::size_t basic_window = 16;  // W (called b in the original paper)
  std::size_t coefficients = 2;   // f (even): f/2 complex coefficients
  double cell_size = 0.01;        // grid cell side
  double radius = 0.01;           // correlation distance threshold r
};

/// Correlation detection over M synchronized streams.
class StatStream {
 public:
  static Result<std::unique_ptr<StatStream>> Create(
      const StatStreamOptions& options, std::size_t num_streams);

  /// Feeds one synchronized arrival; detection runs at basic-window
  /// boundaries once the history window is full.
  Status AppendAll(const std::vector<double>& values);

  const PairStats& stats() const { return stats_; }
  std::size_t num_streams() const { return streams_.size(); }

  /// Current feature of a stream (for tests). Valid after the first
  /// detection round.
  const Point& feature(std::size_t i) const { return streams_[i].feature; }

 private:
  StatStream(const StatStreamOptions& options, std::size_t num_streams);

  struct StreamState {
    explicit StreamState(std::size_t history) : values(history) {}
    RingBuffer<double> values;
    /// Unnormalized sliding-window DFT coefficients X_1 .. X_{f/2}.
    std::vector<std::complex<double>> dft;
    /// Arrivals since the last refresh.
    std::vector<double> pending;
    double running_sum = 0.0;
    double running_sumsq = 0.0;
    Point feature;      // current grid feature
    bool in_grid = false;
    bool dft_initialized = false;
  };

  /// Cell coordinate key (one int per dimension), hashable.
  struct CellKey {
    std::vector<std::int64_t> coords;
    bool operator==(const CellKey& other) const {
      return coords == other.coords;
    }
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& key) const {
      std::size_t h = 1469598103934665603ULL;
      for (std::int64_t c : key.coords) {
        h ^= static_cast<std::size_t>(c);
        h *= 1099511628211ULL;
      }
      return h;
    }
  };

  void RefreshStream(std::size_t i);
  CellKey CellOf(const Point& feature) const;
  Status Detect();

  StatStreamOptions options_;
  std::vector<StreamState> streams_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> grid_;
  /// Precomputed twiddle factors e^{-2πi·k·n/N} for k = 1..f/2, n = 0..N-1.
  std::vector<std::vector<std::complex<double>>> twiddle_;
  PairStats stats_;
  std::uint64_t count_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_BASELINES_STATSTREAM_H_
