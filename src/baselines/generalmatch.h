// GeneralMatch (Moon, Whang & Han, SIGMOD 2002) — the single-resolution
// dual-windowing comparator of the paper's Figure 5.
//
// The data sequences are divided into *disjoint* windows of a fixed size w
// (indexed), and the query into *sliding* windows (probes) — the dual of
// the conventional FRM arrangement. A match within radius r must contain
// at least p = ⌊(|Q| − w + 1)/w⌋ disjoint data windows, so at least one of
// them is within the multi-piece radius of the corresponding query piece
// (Faloutsos et al.); each index hit yields one alignment hypothesis,
// which is verified exactly. As in core/pattern_query.cc, radii are scaled
// to keep the arithmetic sound under Equation-2 normalization.
#ifndef STARDUST_BASELINES_GENERALMATCH_H_
#define STARDUST_BASELINES_GENERALMATCH_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/pattern_query.h"
#include "rtree/rtree.h"
#include "stream/dataset.h"
#include "transform/feature.h"

namespace stardust {

/// GeneralMatch parameters.
struct GeneralMatchOptions {
  /// Disjoint data-window size w. The original chooses the largest w with
  /// 1 <= ⌊(min|Q| − W + 1)/w⌋ given the a-priori minimum query length.
  std::size_t window = 128;
  std::size_t coefficients = 2;  // f
  Normalization normalization = Normalization::kUnitSphere;
  double r_max = 1.0;
};

/// Offline GeneralMatch index over a finite dataset.
class GeneralMatch {
 public:
  /// Builds the disjoint-window index. The dataset must outlive the index.
  static Result<std::unique_ptr<GeneralMatch>> Build(
      const Dataset& dataset, const GeneralMatchOptions& options);

  /// One-time pattern query; |query| >= 2w - 1.
  Result<PatternResult> Query(const std::vector<double>& query,
                              double radius) const;

  const RTree& index() const { return index_; }

 private:
  GeneralMatch(const Dataset& dataset, const GeneralMatchOptions& options);

  const Dataset& dataset_;
  GeneralMatchOptions options_;
  RTree index_;
  /// features_[stream][k]: feature of the k-th disjoint window, for the
  /// multi-piece alignment refinement at query time.
  std::vector<std::vector<Point>> features_;
};

}  // namespace stardust

#endif  // STARDUST_BASELINES_GENERALMATCH_H_
