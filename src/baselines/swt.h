// SWT — Shifted-Wavelet-Tree burst detection (Zhu & Shasha, SIGKDD 2003),
// as summarized in the paper's Related Work and false-alarm analysis §5.1.
//
// For query windows w_1 <= ... <= w_m, SWT maintains one moving aggregate
// per dyadic level; window w_i is monitored by the lowest level j with
// w_i <= 2^j · W, and the level threshold τ_j is the smallest threshold of
// the windows monitored at that level. Whenever the level-j moving
// aggregate reaches τ_j, every window of that level is checked exactly
// (brute force) — each such check is one raised alarm.
//
// We maintain the level aggregates as exact sliding aggregates updated
// every arrival (monotonic deques / running sums), which is the most
// favorable variant for SWT: the true shifted-window structure can lag by
// up to half a level window, and its containing window is never smaller.
// The aggregate must be monotone under window growth (SUM over
// non-negative values, MAX, SPREAD) for the filter to be sound.
#ifndef STARDUST_BASELINES_SWT_H_
#define STARDUST_BASELINES_SWT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/aggregate_monitor.h"
#include "stream/threshold.h"
#include "transform/sliding_tracker.h"

namespace stardust {

/// SWT burst/volatility monitor over one stream.
class SwtMonitor {
 public:
  /// `base_window` is the paper's W (the windows' common granularity K in
  /// the experiments). Window sizes must be positive; thresholds trained
  /// upstream (stream/threshold.h).
  static Result<std::unique_ptr<SwtMonitor>> Create(
      AggregateKind kind, std::size_t base_window,
      std::vector<WindowThreshold> thresholds);

  /// Feeds one value and runs the level triggers.
  void Append(double value);

  std::size_t num_windows() const { return thresholds_.size(); }
  const WindowThreshold& threshold(std::size_t i) const {
    return thresholds_[i];
  }
  const AlarmStats& stats(std::size_t i) const { return stats_[i]; }
  AlarmStats TotalStats() const;

 private:
  SwtMonitor(AggregateKind kind, std::vector<WindowThreshold> thresholds,
             std::vector<std::size_t> level_windows,
             std::vector<double> level_thresholds,
             std::vector<std::size_t> window_level);

  AggregateKind kind_;
  std::vector<WindowThreshold> thresholds_;
  /// Dyadic monitoring windows 2^j * W, one per level in use.
  std::vector<std::size_t> level_windows_;
  /// τ_j = min threshold among the windows of level j.
  std::vector<double> level_thresholds_;
  /// Level index of each query window.
  std::vector<std::size_t> window_level_;
  /// Exact sliding aggregates over the level windows, then query windows.
  SlidingAggregateTracker level_tracker_;
  SlidingAggregateTracker query_tracker_;
  std::vector<AlarmStats> stats_;
};

}  // namespace stardust

#endif  // STARDUST_BASELINES_SWT_H_
