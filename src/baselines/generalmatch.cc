#include "baselines/generalmatch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/stardust.h"
#include "dwt/haar.h"

namespace stardust {

namespace {

double BudgetScale(const GeneralMatchOptions& options, std::size_t w) {
  if (options.normalization == Normalization::kUnitSphere) {
    return static_cast<double>(w) * options.r_max * options.r_max;
  }
  return 1.0;
}

}  // namespace

Result<std::unique_ptr<GeneralMatch>> GeneralMatch::Build(
    const Dataset& dataset, const GeneralMatchOptions& options) {
  if (!IsPowerOfTwo(options.window)) {
    return Status::InvalidArgument("window must be a power of two");
  }
  if (!IsPowerOfTwo(options.coefficients) ||
      options.coefficients > options.window) {
    return Status::InvalidArgument(
        "coefficients must be a power of two not exceeding the window");
  }
  if (options.normalization == Normalization::kUnitSphere &&
      options.r_max <= 0.0) {
    return Status::InvalidArgument("r_max must be positive");
  }
  if (dataset.num_streams() == 0 || dataset.length() < options.window) {
    return Status::InvalidArgument("dataset smaller than one window");
  }
  auto gm = std::unique_ptr<GeneralMatch>(
      new GeneralMatch(dataset, options));
  const std::size_t w = options.window;
  gm->features_.resize(dataset.num_streams());
  for (std::size_t i = 0; i < dataset.num_streams(); ++i) {
    const std::vector<double>& stream = dataset.streams[i];
    for (std::size_t k = 0; (k + 1) * w <= stream.size(); ++k) {
      std::vector<double> window(stream.begin() + k * w,
                                 stream.begin() + (k + 1) * w);
      const std::vector<double> normalized = NormalizeWindow(
          window, options.normalization, options.r_max);
      Point feature = DwtFeature(normalized, options.coefficients);
      SD_RETURN_NOT_OK(gm->index_.Insert(
          Mbr::FromPoint(feature),
          MakeRecordId(static_cast<StreamId>(i), k)));
      gm->features_[i].push_back(std::move(feature));
    }
  }
  return gm;
}

GeneralMatch::GeneralMatch(const Dataset& dataset,
                           const GeneralMatchOptions& options)
    : dataset_(dataset),
      options_(options),
      index_(options.coefficients, RTreeOptions{}) {}

Result<PatternResult> GeneralMatch::Query(const std::vector<double>& query,
                                          double radius) const {
  if (radius < 0.0) return Status::InvalidArgument("negative radius");
  const std::size_t w = options_.window;
  if (query.size() < 2 * w - 1) {
    return Status::InvalidArgument("query must be at least 2w - 1 long");
  }
  const std::size_t p = (query.size() - w + 1) / w;
  const double r_piece2 = radius * radius *
                          BudgetScale(options_, query.size()) /
                          (static_cast<double>(p) * BudgetScale(options_, w));
  const double r_piece = std::sqrt(r_piece2);

  // Probe the index with every sliding query piece; each hit proposes one
  // alignment.
  std::vector<std::pair<StreamId, std::size_t>> starts;
  std::vector<RTreeEntry> hits;
  for (std::size_t i = 0; i + w <= query.size(); ++i) {
    std::vector<double> piece(query.begin() + i, query.begin() + i + w);
    const std::vector<double> normalized =
        NormalizeWindow(piece, options_.normalization, options_.r_max);
    const Point feature = DwtFeature(normalized, options_.coefficients);
    hits.clear();
    index_.SearchWithin(feature, r_piece, &hits);
    for (const RTreeEntry& hit : hits) {
      const StreamId stream = RecordStream(hit.id);
      const std::size_t s = RecordSeq(hit.id) * w;
      if (s < i) continue;
      const std::size_t start = s - i;
      if (start + query.size() > dataset_.length()) continue;
      starts.emplace_back(stream, start);
    }
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  // Multi-piece refinement (Faloutsos et al.): the squared distances of
  // ALL disjoint data windows inside an alignment add up against the
  // total unnormalized budget.
  const double total_budget =
      radius * radius * BudgetScale(options_, query.size());
  const double piece_scale = BudgetScale(options_, w);
  std::vector<std::pair<StreamId, std::size_t>> refined;
  refined.reserve(starts.size());
  for (const auto& [stream, start] : starts) {
    const std::size_t first_k = (start + w - 1) / w;
    double used = 0.0;
    bool pruned = false;
    std::vector<double> piece(w);
    for (std::size_t k = first_k;
         (k + 1) * w <= start + query.size() &&
         k < features_[stream].size();
         ++k) {
      const std::size_t offset = k * w - start;
      piece.assign(query.begin() + offset, query.begin() + offset + w);
      const std::vector<double> normalized =
          NormalizeWindow(piece, options_.normalization, options_.r_max);
      const Point qf = DwtFeature(normalized, options_.coefficients);
      used += Dist2(qf, features_[stream][k]) * piece_scale;
      if (used > total_budget) {
        pruned = true;
        break;
      }
    }
    if (!pruned) refined.emplace_back(stream, start);
  }

  // Exact verification against the dataset.
  PatternResult result;
  const std::vector<double> query_norm =
      NormalizeWindow(query, options_.normalization, options_.r_max);
  const double r2 = radius * radius;
  for (const auto& [stream, start] : refined) {
    ++result.candidates;
    std::vector<double> window(
        dataset_.streams[stream].begin() + start,
        dataset_.streams[stream].begin() + start + query.size());
    const std::vector<double> window_norm =
        NormalizeWindow(window, options_.normalization, options_.r_max);
    const double d2 = Dist2(query_norm, window_norm);
    if (d2 <= r2) {
      result.matches.push_back({stream, start + query.size() - 1,
                                std::sqrt(d2)});
    }
  }
  return result;
}

}  // namespace stardust
