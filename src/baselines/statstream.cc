#include "baselines/statstream.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "geom/mbr.h"
#include "transform/feature.h"

namespace stardust {

Result<std::unique_ptr<StatStream>> StatStream::Create(
    const StatStreamOptions& options, std::size_t num_streams) {
  if (options.history == 0 || options.basic_window == 0) {
    return Status::InvalidArgument("history and basic_window must be > 0");
  }
  if (options.history % options.basic_window != 0) {
    return Status::InvalidArgument(
        "history must be a multiple of the basic window");
  }
  if (options.coefficients == 0 || options.coefficients % 2 != 0) {
    return Status::InvalidArgument(
        "coefficients must be a positive even number (f/2 complex)");
  }
  if (options.coefficients / 2 >= options.history) {
    return Status::InvalidArgument("too many coefficients for the history");
  }
  if (options.cell_size <= 0.0) {
    return Status::InvalidArgument("cell_size must be positive");
  }
  if (options.radius < 0.0) {
    return Status::InvalidArgument("negative radius");
  }
  if (num_streams == 0) {
    return Status::InvalidArgument("need at least one stream");
  }
  return std::unique_ptr<StatStream>(new StatStream(options, num_streams));
}

StatStream::StatStream(const StatStreamOptions& options,
                       std::size_t num_streams)
    : options_(options) {
  streams_.reserve(num_streams);
  // Ring capacity N + W so the departing basic window is still available
  // at refresh time.
  for (std::size_t i = 0; i < num_streams; ++i) {
    streams_.emplace_back(options_.history + options_.basic_window);
    streams_.back().dft.assign(options_.coefficients / 2, {0.0, 0.0});
  }
  const std::size_t n = options_.history;
  const std::size_t half_f = options_.coefficients / 2;
  twiddle_.resize(half_f);
  for (std::size_t k = 0; k < half_f; ++k) {
    twiddle_[k].resize(n);
    for (std::size_t idx = 0; idx < n; ++idx) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>((k + 1) * idx) /
                           static_cast<double>(n);
      twiddle_[k][idx] = {std::cos(angle), std::sin(angle)};
    }
  }
}

void StatStream::RefreshStream(std::size_t i) {
  StreamState& s = streams_[i];
  const std::size_t n = options_.history;
  const std::size_t w = options_.basic_window;
  const std::size_t half_f = options_.coefficients / 2;
  const std::uint64_t end = count_ - 1;  // current window is [end-N+1, end]

  if (s.dft_initialized) {
    // Incremental update over the basic window:
    //   X_k(e) = ω^{-kW} (X_k(e-W) − Σ_{m<W} old[m] ω^{km})
    //            + Σ_{n=N-W..N-1} new[n-(N-W)] ω^{kn}.
    const std::uint64_t old_first = end - w - n + 1;  // departing values
    for (std::size_t k = 0; k < half_f; ++k) {
      std::complex<double> x = s.dft[k];
      for (std::size_t m = 0; m < w; ++m) {
        x -= s.values.At(old_first + m) * twiddle_[k][m % n];
      }
      // ω^{-kW} = conj(twiddle[k][W mod N]).
      x *= std::conj(twiddle_[k][w % n]);
      for (std::size_t idx = n - w; idx < n; ++idx) {
        x += s.values.At(end - n + 1 + idx) * twiddle_[k][idx];
      }
      s.dft[k] = x;
    }
  } else {
    // First full window: direct DFT, O(N f/2).
    for (std::size_t k = 0; k < half_f; ++k) {
      std::complex<double> x{0.0, 0.0};
      for (std::size_t idx = 0; idx < n; ++idx) {
        x += s.values.At(end - n + 1 + idx) * twiddle_[k][idx];
      }
      s.dft[k] = x;
    }
    s.dft_initialized = true;
  }

  // z-normalized, unitary-scaled feature with the conjugate-mirror √2.
  const double norm2 =
      s.running_sumsq - s.running_sum * s.running_sum / static_cast<double>(n);
  const double inv_norm = norm2 > 1e-12 ? 1.0 / std::sqrt(norm2) : 0.0;
  const double scale =
      std::sqrt(2.0) / std::sqrt(static_cast<double>(n)) * inv_norm;
  s.feature.resize(options_.coefficients);
  for (std::size_t k = 0; k < half_f; ++k) {
    s.feature[2 * k] = s.dft[k].real() * scale;
    s.feature[2 * k + 1] = s.dft[k].imag() * scale;
  }
}

StatStream::CellKey StatStream::CellOf(const Point& feature) const {
  CellKey key;
  key.coords.resize(feature.size());
  for (std::size_t d = 0; d < feature.size(); ++d) {
    key.coords[d] = static_cast<std::int64_t>(
        std::floor(feature[d] / options_.cell_size));
  }
  return key;
}

Status StatStream::AppendAll(const std::vector<double>& values) {
  if (values.size() != streams_.size()) {
    return Status::InvalidArgument("value count != stream count");
  }
  const std::size_t n = options_.history;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    StreamState& s = streams_[i];
    s.values.Push(values[i]);
    s.running_sum += values[i];
    s.running_sumsq += values[i] * values[i];
    if (s.values.size() > n) {
      const double leaving = s.values.At(s.values.size() - n - 1);
      s.running_sum -= leaving;
      s.running_sumsq -= leaving * leaving;
    }
  }
  ++count_;
  if (count_ >= n && (count_ - n) % options_.basic_window == 0) {
    SD_RETURN_NOT_OK(Detect());
  }
  return Status::OK();
}

Status StatStream::Detect() {
  // Refresh features and grid membership.
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    StreamState& s = streams_[i];
    if (s.in_grid) {
      auto it = grid_.find(CellOf(s.feature));
      SD_CHECK(it != grid_.end());
      auto& bucket = it->second;
      for (std::size_t b = 0; b < bucket.size(); ++b) {
        if (bucket[b] == i) {
          bucket[b] = bucket.back();
          bucket.pop_back();
          break;
        }
      }
      if (bucket.empty()) grid_.erase(it);
    }
    RefreshStream(i);
    grid_[CellOf(s.feature)].push_back(static_cast<std::uint32_t>(i));
    s.in_grid = true;
  }

  // Probe neighborhoods: cells within Chebyshev reach ⌈r / cell⌉.
  const std::int64_t reach = static_cast<std::int64_t>(
      std::ceil(options_.radius / options_.cell_size - 1e-12));
  const std::size_t dims = options_.coefficients;
  const std::uint64_t end = count_ - 1;
  const std::size_t n = options_.history;
  // z-normalized windows computed lazily, once per stream per round.
  std::vector<double> window;
  std::vector<std::vector<double>> znormed(streams_.size());
  auto znorm_of = [&](std::size_t s) -> const std::vector<double>& {
    if (znormed[s].empty()) {
      streams_[s].values.CopyWindow(end - n + 1, n, &window);
      znormed[s] = ZNormalize(window);
    }
    return znormed[s];
  };
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const CellKey home = CellOf(streams_[i].feature);
    // Odometer over the (2·reach+1)^dims neighborhood.
    CellKey probe = home;
    std::vector<std::int64_t> offset(dims, -reach);
    for (;;) {
      for (std::size_t d = 0; d < dims; ++d) {
        probe.coords[d] = home.coords[d] + offset[d];
      }
      auto it = grid_.find(probe);
      if (it != grid_.end()) {
        for (std::uint32_t j : it->second) {
          if (j <= i) continue;
          ++stats_.candidates;
          const double d2 = Dist2(znorm_of(i), znorm_of(j));
          if (d2 <= options_.radius * options_.radius) {
            ++stats_.true_pairs;
          }
        }
      }
      // Advance the odometer.
      std::size_t d = 0;
      while (d < dims && ++offset[d] > reach) {
        offset[d] = -reach;
        ++d;
      }
      if (d == dims) break;
    }
  }
  return Status::OK();
}

}  // namespace stardust
