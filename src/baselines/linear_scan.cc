#include "baselines/linear_scan.h"

#include <cmath>

#include "common/check.h"
#include "transform/sliding_tracker.h"

namespace stardust {

std::vector<PatternMatch> ScanPatternMatches(const Dataset& dataset,
                                             const std::vector<double>& query,
                                             double radius,
                                             Normalization normalization,
                                             double r_max) {
  SD_CHECK(!query.empty());
  std::vector<PatternMatch> matches;
  const std::vector<double> query_norm =
      NormalizeWindow(query, normalization, r_max);
  const double r2 = radius * radius;
  std::vector<double> window;
  for (std::size_t s = 0; s < dataset.num_streams(); ++s) {
    const std::vector<double>& stream = dataset.streams[s];
    if (stream.size() < query.size()) continue;
    for (std::size_t start = 0; start + query.size() <= stream.size();
         ++start) {
      window.assign(stream.begin() + start,
                    stream.begin() + start + query.size());
      const std::vector<double> window_norm =
          NormalizeWindow(window, normalization, r_max);
      const double d2 = Dist2(query_norm, window_norm);
      if (d2 <= r2) {
        matches.push_back({static_cast<StreamId>(s),
                           start + query.size() - 1, std::sqrt(d2)});
      }
    }
  }
  return matches;
}

std::uint64_t ScanAggregateAlarms(AggregateKind kind,
                                  const std::vector<double>& data,
                                  std::size_t window, double threshold) {
  SD_CHECK(window >= 1);
  if (data.size() < window) return 0;
  SlidingAggregateTracker tracker(kind, {window});
  std::uint64_t alarms = 0;
  for (double v : data) {
    tracker.Push(v);
    if (tracker.Ready(0) && tracker.Current(0) >= threshold) ++alarms;
  }
  return alarms;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> ScanCorrelatedPairs(
    const Dataset& dataset, std::size_t window, double radius) {
  SD_CHECK(window >= 1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  const std::size_t len = dataset.length();
  SD_CHECK(len >= window);
  std::vector<std::vector<double>> normalized;
  normalized.reserve(dataset.num_streams());
  for (const auto& stream : dataset.streams) {
    std::vector<double> suffix(stream.end() - window, stream.end());
    normalized.push_back(ZNormalize(suffix));
  }
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    for (std::size_t j = i + 1; j < normalized.size(); ++j) {
      if (Dist2(normalized[i], normalized[j]) <= r2) {
        pairs.emplace_back(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j));
      }
    }
  }
  return pairs;
}

}  // namespace stardust
