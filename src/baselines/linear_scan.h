// Exact brute-force oracles ("linear scan"). These provide the ground
// truth against which every technique's precision and recall is measured,
// and double as the naive baseline the paper's comparators are themselves
// benchmarked against.
#ifndef STARDUST_BASELINES_LINEAR_SCAN_H_
#define STARDUST_BASELINES_LINEAR_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/pattern_query.h"
#include "stream/dataset.h"
#include "transform/aggregate.h"
#include "transform/feature.h"

namespace stardust {

/// All true pattern matches of `query` in `dataset` under the given
/// normalization: every (stream, end) with normalized distance <= radius.
std::vector<PatternMatch> ScanPatternMatches(const Dataset& dataset,
                                             const std::vector<double>& query,
                                             double radius,
                                             Normalization normalization,
                                             double r_max);

/// Number of times the exact sliding aggregate of `data` over `window`
/// reaches `threshold` (one check per end position).
std::uint64_t ScanAggregateAlarms(AggregateKind kind,
                                  const std::vector<double>& data,
                                  std::size_t window, double threshold);

/// All pairs (i < j) whose z-normalized suffix windows of size `window`
/// are within Euclidean distance `radius` (ending at the last position).
std::vector<std::pair<std::uint32_t, std::uint32_t>> ScanCorrelatedPairs(
    const Dataset& dataset, std::size_t window, double radius);

}  // namespace stardust

#endif  // STARDUST_BASELINES_LINEAR_SCAN_H_
