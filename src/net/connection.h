// One accepted socket of the network server (net/server.h): owns the
// fd, the incremental frame parser for the inbound direction, and a
// bounded outbound byte buffer for the outgoing one. The server's event
// loop drives it single-threaded — OnReadable/OnWritable move bytes,
// the server interprets the frames and decides what to queue back.
//
// Protocol and flow-control state lives here as plain members because
// exactly one thread (the loop) ever touches a connection: the Hello
// handshake outcome, the resume point of a batch parked on engine
// backpressure, the subscriber push cursor, and the per-connection
// counters that roll up into the server's "net" metrics section.
#ifndef STARDUST_NET_CONNECTION_H_
#define STARDUST_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/codec.h"
#include "net/frame.h"

namespace stardust::net {

class Connection {
 public:
  /// Takes ownership of `fd` (closed on destruction). `max_outbound`
  /// bounds the outgoing buffer: the server stops pumping alerts into a
  /// connection whose buffer is full and lets the AlertHub's retention
  /// policy absorb the lag.
  Connection(int fd, std::size_t max_frame_bytes, std::size_t max_outbound);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  /// Drains everything the socket has into the frame parser. Returns
  /// false when the peer closed or the socket failed — the server then
  /// drops the connection.
  bool OnReadable();
  /// Next complete inbound frame, via the parser.
  bool NextFrame(Frame* out) { return parser_.Next(out); }
  const FrameParser& parser() const { return parser_; }

  /// Appends one encoded frame to the outbound buffer.
  void QueueFrame(FrameType type, const std::string& payload);
  /// Writes as much buffered output as the socket accepts. Returns false
  /// on a fatal socket error.
  bool OnWritable();
  bool has_outbound() const { return outbound_.size() > out_consumed_; }
  bool outbound_full() const {
    return outbound_.size() - out_consumed_ >= max_outbound_;
  }

  // --- Handshake state (server-managed) ---------------------------------
  bool hello_done = false;
  PeerRole role = PeerRole::kProducer;
  std::string subscriber_id;

  // --- Producer: batch parked on engine backpressure --------------------
  /// When the engine's kBlock queue is full mid-batch the server parks
  /// the rest of the batch here, stops reading from this socket, and
  /// retries on loop ticks; the BatchAck goes out only when the whole
  /// batch has been resolved.
  bool stalled = false;
  BatchMessage pending_batch;
  std::size_t pending_run = 0;
  std::size_t pending_value = 0;
  std::uint64_t batch_accepted = 0;
  std::uint64_t batch_dropped = 0;

  // --- Subscriber push cursor -------------------------------------------
  /// Highest alert sequence already queued to this subscriber's socket.
  std::uint64_t pushed_seq = 0;

  // --- Counters (rolled into the server totals on close) ----------------
  std::uint64_t frames = 0;
  std::uint64_t batches = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t backpressure_episodes = 0;
  std::uint64_t alerts_sent = 0;
  std::uint64_t acks = 0;
  std::uint64_t protocol_errors = 0;
  /// Alert sequence numbers this subscriber skipped over because the hub
  /// had already evicted them (kDropOldest laggard gap).
  std::uint64_t skipped_alerts = 0;
  /// Parser damage already folded into the server totals (the parser's
  /// own counters are cumulative).
  std::uint64_t counted_corrupt_frames = 0;
  std::uint64_t counted_skipped_bytes = 0;

 private:
  /// Reclaims the consumed prefix of the outbound buffer once it
  /// dominates the remainder.
  void CompactOutbound();

  const int fd_;
  const std::size_t max_outbound_;
  FrameParser parser_;
  std::string outbound_;
  std::size_t out_consumed_ = 0;
};

}  // namespace stardust::net

#endif  // STARDUST_NET_CONNECTION_H_
