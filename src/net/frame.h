// Wire framing of the stardust network protocol (docs/NETWORK.md).
//
// Every message travels as one length-prefixed binary frame:
//
//   offset  size  field
//   0       4     magic "SDNF"
//   4       2     protocol version (little-endian u16, currently 1)
//   6       2     frame type (net/codec.h FrameType)
//   8       4     payload length in bytes (little-endian u32)
//   12      8     FNV-1a 64 checksum of the payload (little-endian u64)
//   20      n     payload (codec-encoded message body)
//
// The checksum covers the payload only; header corruption is caught by
// the magic/version/length checks. FrameParser is incremental: feed it
// whatever the socket produced and it emits complete frames, skipping
// damaged ones. A frame whose checksum does not verify is dropped whole
// (its length is trusted once magic + version + bounded length check
// pass), and a stream positioned mid-garbage resynchronizes by scanning
// forward for the next magic — one bad frame never poisons the
// connection (the AsterixDB feed discipline: account the loss, keep the
// feed alive).
#ifndef STARDUST_NET_FRAME_H_
#define STARDUST_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace stardust::net {

/// Frame types understood by the protocol (payload schemas in codec.h).
enum class FrameType : std::uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kBatch = 3,
  kBatchAck = 4,
  kAlert = 5,
  kSubscriberAck = 6,
  kError = 7,
  /// Operator plane (stardust_cli placement / migrate): an AdminRequest
  /// names an operation against the engine's placement table, the
  /// server answers with one AdminResult.
  kAdmin = 8,
  kAdminResult = 9,
};

inline constexpr char kFrameMagic[4] = {'S', 'D', 'N', 'F'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Default upper bound on one frame's payload; parser-rejected above.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;

/// One complete, checksum-verified frame handed out by FrameParser.
struct Frame {
  std::uint16_t type = 0;
  std::string payload;
};

/// Encodes `payload` as one complete frame of the given type.
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Incremental frame extractor with resynchronization. Single-threaded
/// (one parser per connection, driven by the connection's reader).
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the socket to the parse buffer.
  void Feed(const char* data, std::size_t size);

  /// Extracts the next complete, verified frame. Returns false when the
  /// buffered bytes do not (yet) contain one. Damaged input is consumed
  /// silently along the way and accounted in the counters.
  bool Next(Frame* out);

  /// Frames dropped over a payload-checksum mismatch.
  std::uint64_t corrupt_frames() const { return corrupt_frames_; }
  /// Bytes skipped while scanning for the next magic (torn or garbage
  /// input, including the headers of frames with absurd lengths).
  std::uint64_t skipped_bytes() const { return skipped_bytes_; }
  /// Bytes currently buffered awaiting a complete frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void Compact();
  /// Drops `n` bytes of damaged input and counts them.
  void Skip(std::size_t n);

  const std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  std::uint64_t corrupt_frames_ = 0;
  std::uint64_t skipped_bytes_ = 0;
};

}  // namespace stardust::net

#endif  // STARDUST_NET_FRAME_H_
