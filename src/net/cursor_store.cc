#include "net/cursor_store.h"

#include <cstring>

#include "common/serialize.h"

namespace stardust::net {

namespace {

constexpr char kCursorMagic[4] = {'S', 'D', 'N', 'C'};
constexpr std::uint32_t kCursorVersion = 1;
constexpr std::uint64_t kMaxIdBytes = 4096;

}  // namespace

std::uint64_t CursorStore::Get(const std::string& id) const {
  const auto it = cursors_.find(id);
  return it == cursors_.end() ? 0 : it->second;
}

void CursorStore::Advance(const std::string& id, std::uint64_t seq) {
  std::uint64_t& cursor = cursors_[id];
  if (seq > cursor) cursor = seq;
}

bool CursorStore::Erase(const std::string& id) {
  return cursors_.erase(id) != 0;
}

std::uint64_t CursorStore::MinAcked(bool* any) const {
  *any = !cursors_.empty();
  std::uint64_t min_acked = UINT64_MAX;
  for (const auto& [id, seq] : cursors_) {
    if (seq < min_acked) min_acked = seq;
  }
  return cursors_.empty() ? 0 : min_acked;
}

std::string CursorStore::Serialize() const {
  Writer payload;
  payload.U64(cursors_.size());
  for (const auto& [id, seq] : cursors_) {
    payload.U64(id.size());
    payload.Bytes(id.data(), id.size());
    payload.U64(seq);
  }
  Writer envelope;
  envelope.Bytes(kCursorMagic, sizeof(kCursorMagic));
  envelope.U32(kCursorVersion);
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());
  return std::move(envelope.TakeBuffer());
}

Status CursorStore::Restore(const std::string& bytes) {
  if (bytes.size() < sizeof(kCursorMagic) + 12) {
    return Status::InvalidArgument("cursor store snapshot too small");
  }
  if (std::memcmp(bytes.data(), kCursorMagic, sizeof(kCursorMagic)) != 0) {
    return Status::InvalidArgument("not a cursor store snapshot");
  }
  Reader header(bytes);
  std::uint8_t b = 0;
  for (std::size_t i = 0; i < sizeof(kCursorMagic); ++i) {
    SD_RETURN_NOT_OK(header.U8(&b));
  }
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SD_RETURN_NOT_OK(header.U32(&version));
  SD_RETURN_NOT_OK(header.U64(&checksum));
  if (version != kCursorVersion) {
    return Status::InvalidArgument("unsupported cursor store version");
  }
  const std::string payload = bytes.substr(sizeof(kCursorMagic) + 12);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument("cursor store checksum mismatch");
  }
  Reader reader(payload);
  std::uint64_t count = 0;
  SD_RETURN_NOT_OK(reader.U64(&count));
  // Each entry is at least an id length plus a sequence number.
  if (count > reader.remaining() / 16) {
    return Status::InvalidArgument("cursor count out of range");
  }
  std::map<std::string, std::uint64_t> restored;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t id_size = 0;
    SD_RETURN_NOT_OK(reader.U64(&id_size));
    if (id_size > kMaxIdBytes || id_size > reader.remaining()) {
      return Status::InvalidArgument("cursor id length out of range");
    }
    std::string id(id_size, '\0');
    for (std::uint64_t k = 0; k < id_size; ++k) {
      std::uint8_t c = 0;
      SD_RETURN_NOT_OK(reader.U8(&c));
      id[k] = static_cast<char>(c);
    }
    std::uint64_t seq = 0;
    SD_RETURN_NOT_OK(reader.U64(&seq));
    restored[std::move(id)] = seq;
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("cursor store has trailing bytes");
  }
  cursors_ = std::move(restored);
  return Status::OK();
}

}  // namespace stardust::net
