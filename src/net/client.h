// Blocking client helpers for the stardust network protocol — the
// producer and subscriber counterparts of net/server.h, used by the CLI
// (examples/stardust_cli.cpp), the loopback tests, and bench_net. One
// connection per object, not thread-safe; each wraps a blocking socket
// plus a FrameParser and speaks the Hello handshake on Connect.
#ifndef STARDUST_NET_CLIENT_H_
#define STARDUST_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/codec.h"
#include "net/frame.h"

namespace stardust::net {

/// Shared socket + parser plumbing of the two client roles.
class ClientConnection {
 public:
  ~ClientConnection();
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  void Close();
  bool closed() const { return fd_ < 0; }

 protected:
  ClientConnection() = default;

  Status Connect(const std::string& host, std::uint16_t port);
  Status SendFrame(FrameType type, const std::string& payload);
  /// Blocks for the next complete frame. `timeout_ms` 0 waits forever;
  /// expiry returns DeadlineExceeded-as-NotFound (the protocol has no
  /// deadline status) so pollers can distinguish "nothing yet" from a
  /// dead socket (Aborted).
  Status NextFrame(Frame* out, int timeout_ms);

  int fd_ = -1;
  FrameParser parser_;
};

/// Ingest-side client: Hello{producer} on connect, then Send per batch
/// (one round trip: Batch out, BatchAck back).
class ProducerClient : public ClientConnection {
 public:
  static Result<std::unique_ptr<ProducerClient>> Connect(
      const std::string& host, std::uint16_t port);

  /// Sends one batch and waits for its ack. The ack reports how the
  /// engine's overload policy treated the values.
  Result<BatchAckMessage> Send(const BatchMessage& batch);

 private:
  ProducerClient() = default;
};

/// Subscribe-side client: Hello{subscriber, id, resume_after} on
/// connect, then Next per pushed alert and Ack to advance the durable
/// cursor.
class SubscriberClient : public ClientConnection {
 public:
  static Result<std::unique_ptr<SubscriberClient>> Connect(
      const std::string& host, std::uint16_t port, const std::string& id,
      std::uint64_t resume_after = 0);

  /// Sequence the server resumed this subscription after (from the
  /// HelloAck): alerts arrive with seq > resume_from.
  std::uint64_t resume_from() const { return resume_from_; }
  std::uint64_t server_next_seq() const { return server_next_seq_; }

  /// Next pushed alert. NotFound on timeout, Aborted when the server
  /// closed the connection.
  Result<AlertFrameMessage> Next(int timeout_ms);
  /// Cumulative cursor acknowledgement (fire-and-forget).
  Status Ack(std::uint64_t seq);

 private:
  SubscriberClient() = default;

  std::uint64_t resume_from_ = 0;
  std::uint64_t server_next_seq_ = 0;
};

/// Operator-plane client: no Hello handshake, one AdminRequest →
/// AdminResult round trip per call (stardust_cli placement / migrate).
class AdminClient : public ClientConnection {
 public:
  static Result<std::unique_ptr<AdminClient>> Connect(
      const std::string& host, std::uint16_t port);

  /// Dumps the server's placement table (epoch + stream→shard map) as
  /// the result's `json`.
  Result<AdminResultMessage> PlacementDump();
  /// Live-migrates `stream` to `shard`. A !ok result carries the
  /// engine's refusal in `message`; ok carries a JSON summary.
  Result<AdminResultMessage> Migrate(std::uint64_t stream,
                                     std::uint64_t shard);

 private:
  AdminClient() = default;

  Result<AdminResultMessage> RoundTrip(const AdminRequestMessage& request);
};

}  // namespace stardust::net

#endif  // STARDUST_NET_CLIENT_H_
