#include "net/connection.h"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace stardust::net {

Connection::Connection(int fd, std::size_t max_frame_bytes,
                       std::size_t max_outbound)
    : fd_(fd), max_outbound_(max_outbound), parser_(max_frame_bytes) {}

Connection::~Connection() { ::close(fd_); }

bool Connection::OnReadable() {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      parser_.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // orderly close
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

void Connection::QueueFrame(FrameType type, const std::string& payload) {
  outbound_ += EncodeFrame(type, payload);
}

bool Connection::OnWritable() {
  while (has_outbound()) {
    const ssize_t n =
        ::send(fd_, outbound_.data() + out_consumed_,
               outbound_.size() - out_consumed_, MSG_NOSIGNAL);
    if (n > 0) {
      out_consumed_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  CompactOutbound();
  return true;
}

void Connection::CompactOutbound() {
  if (out_consumed_ == outbound_.size()) {
    outbound_.clear();
    out_consumed_ = 0;
  } else if (out_consumed_ > 4096 &&
             out_consumed_ * 2 > outbound_.size()) {
    outbound_.erase(0, out_consumed_);
    out_consumed_ = 0;
  }
}

}  // namespace stardust::net
