#include "net/codec.h"

#include "common/serialize.h"

namespace stardust::net {

namespace {

/// Bound on strings carried in protocol messages (ids, error text,
/// alert JSON) — far above any legitimate use, far below an allocation
/// attack.
constexpr std::uint64_t kMaxStringBytes = 1 << 16;
/// Bound on an admin result's JSON body: a placement dump enumerates
/// every stream, so it outgrows the 64 KiB string bound long before the
/// 1 MiB frame bound (net/frame.h kDefaultMaxFrameBytes) stops it.
constexpr std::uint64_t kMaxAdminJsonBytes = 1 << 20;

void WriteString(Writer* w, const std::string& s) {
  w->U64(s.size());
  w->Bytes(s.data(), s.size());
}

Status ReadBoundedString(Reader* r, std::uint64_t max_bytes,
                         std::string* out) {
  std::uint64_t size = 0;
  SD_RETURN_NOT_OK(r->U64(&size));
  if (size > max_bytes || size > r->remaining()) {
    return Status::InvalidArgument("string length out of range");
  }
  out->resize(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint8_t c = 0;
    SD_RETURN_NOT_OK(r->U8(&c));
    (*out)[i] = static_cast<char>(c);
  }
  return Status::OK();
}

Status ReadString(Reader* r, std::string* out) {
  return ReadBoundedString(r, kMaxStringBytes, out);
}

Status ExpectEnd(const Reader& r) {
  if (!r.AtEnd()) {
    return Status::InvalidArgument("message has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeHello(const HelloMessage& msg) {
  Writer w;
  w.U8(static_cast<std::uint8_t>(msg.role));
  WriteString(&w, msg.subscriber_id);
  w.U64(msg.resume_after);
  return std::move(w.TakeBuffer());
}

Status DecodeHello(const std::string& payload, HelloMessage* out) {
  Reader r(payload);
  std::uint8_t role = 0;
  SD_RETURN_NOT_OK(r.U8(&role));
  if (role > static_cast<std::uint8_t>(PeerRole::kSubscriber)) {
    return Status::InvalidArgument("unknown peer role");
  }
  out->role = static_cast<PeerRole>(role);
  SD_RETURN_NOT_OK(ReadString(&r, &out->subscriber_id));
  SD_RETURN_NOT_OK(r.U64(&out->resume_after));
  return ExpectEnd(r);
}

std::string EncodeHelloAck(const HelloAckMessage& msg) {
  Writer w;
  w.U64(msg.next_seq);
  w.U64(msg.resume_from);
  return std::move(w.TakeBuffer());
}

Status DecodeHelloAck(const std::string& payload, HelloAckMessage* out) {
  Reader r(payload);
  SD_RETURN_NOT_OK(r.U64(&out->next_seq));
  SD_RETURN_NOT_OK(r.U64(&out->resume_from));
  return ExpectEnd(r);
}

std::string EncodeBatch(const BatchMessage& msg) {
  Writer w;
  w.U64(msg.runs.size());
  for (const StreamRun& run : msg.runs) {
    w.U32(run.stream);
    w.DoubleVector(run.values);
  }
  return std::move(w.TakeBuffer());
}

Status DecodeBatch(const std::string& payload, BatchMessage* out) {
  Reader r(payload);
  std::uint64_t num_runs = 0;
  SD_RETURN_NOT_OK(r.U64(&num_runs));
  // Each run is at least a stream id plus a value count.
  if (num_runs > r.remaining() / 12) {
    return Status::InvalidArgument("batch run count out of range");
  }
  out->runs.resize(num_runs);
  for (StreamRun& run : out->runs) {
    SD_RETURN_NOT_OK(r.U32(&run.stream));
    SD_RETURN_NOT_OK(r.DoubleVector(&run.values));
  }
  return ExpectEnd(r);
}

std::string EncodeBatchAck(const BatchAckMessage& msg) {
  Writer w;
  w.U64(msg.accepted);
  w.U64(msg.dropped);
  return std::move(w.TakeBuffer());
}

Status DecodeBatchAck(const std::string& payload, BatchAckMessage* out) {
  Reader r(payload);
  SD_RETURN_NOT_OK(r.U64(&out->accepted));
  SD_RETURN_NOT_OK(r.U64(&out->dropped));
  return ExpectEnd(r);
}

std::string EncodeAlertFrame(const AlertFrameMessage& msg) {
  Writer w;
  w.U64(msg.seq);
  WriteString(&w, msg.json);
  return std::move(w.TakeBuffer());
}

Status DecodeAlertFrame(const std::string& payload, AlertFrameMessage* out) {
  Reader r(payload);
  SD_RETURN_NOT_OK(r.U64(&out->seq));
  SD_RETURN_NOT_OK(ReadString(&r, &out->json));
  return ExpectEnd(r);
}

std::string EncodeSubscriberAck(const SubscriberAckMessage& msg) {
  Writer w;
  w.U64(msg.acked_seq);
  return std::move(w.TakeBuffer());
}

Status DecodeSubscriberAck(const std::string& payload,
                           SubscriberAckMessage* out) {
  Reader r(payload);
  SD_RETURN_NOT_OK(r.U64(&out->acked_seq));
  return ExpectEnd(r);
}

std::string EncodeError(const ErrorMessage& msg) {
  Writer w;
  w.U8(msg.code);
  WriteString(&w, msg.message);
  return std::move(w.TakeBuffer());
}

Status DecodeError(const std::string& payload, ErrorMessage* out) {
  Reader r(payload);
  SD_RETURN_NOT_OK(r.U8(&out->code));
  SD_RETURN_NOT_OK(ReadString(&r, &out->message));
  return ExpectEnd(r);
}

std::string EncodeAdminRequest(const AdminRequestMessage& msg) {
  Writer w;
  w.U8(static_cast<std::uint8_t>(msg.op));
  w.U64(msg.stream);
  w.U64(msg.shard);
  return std::move(w.TakeBuffer());
}

Status DecodeAdminRequest(const std::string& payload,
                          AdminRequestMessage* out) {
  Reader r(payload);
  std::uint8_t op = 0;
  SD_RETURN_NOT_OK(r.U8(&op));
  if (op < static_cast<std::uint8_t>(AdminOp::kPlacementDump) ||
      op > static_cast<std::uint8_t>(AdminOp::kMigrate)) {
    return Status::InvalidArgument("unknown admin op");
  }
  out->op = static_cast<AdminOp>(op);
  SD_RETURN_NOT_OK(r.U64(&out->stream));
  SD_RETURN_NOT_OK(r.U64(&out->shard));
  return ExpectEnd(r);
}

std::string EncodeAdminResult(const AdminResultMessage& msg) {
  Writer w;
  w.U8(msg.ok ? 1 : 0);
  WriteString(&w, msg.message);
  w.U64(msg.json.size());
  w.Bytes(msg.json.data(), msg.json.size());
  return std::move(w.TakeBuffer());
}

Status DecodeAdminResult(const std::string& payload,
                         AdminResultMessage* out) {
  Reader r(payload);
  std::uint8_t ok = 0;
  SD_RETURN_NOT_OK(r.U8(&ok));
  out->ok = ok != 0;
  SD_RETURN_NOT_OK(ReadString(&r, &out->message));
  SD_RETURN_NOT_OK(ReadBoundedString(&r, kMaxAdminJsonBytes, &out->json));
  return ExpectEnd(r);
}

}  // namespace stardust::net
