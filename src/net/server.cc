#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "query/alert.h"

namespace stardust::net {

namespace {

/// Error codes carried in kError frames (docs/NETWORK.md).
constexpr std::uint8_t kErrBadHello = 1;
constexpr std::uint8_t kErrExpectedHello = 2;
constexpr std::uint8_t kErrBadFrame = 3;
constexpr std::uint8_t kErrWrongRole = 4;

/// Alerts fetched from the hub per pump iteration.
constexpr std::size_t kPumpChunk = 64;

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

NetServer::NetServer(IngestEngine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

Result<std::unique_ptr<NetServer>> NetServer::Start(IngestEngine* engine) {
  return Start(engine, Options{});
}

Result<std::unique_ptr<NetServer>> NetServer::Start(IngestEngine* engine,
                                                    Options options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("net server needs an engine");
  }
  std::unique_ptr<NetServer> server(new NetServer(engine, options));
  server->hub_ = std::make_shared<AlertHub>(options.hub);
  if (!engine->restored_net_state().empty()) {
    SD_RETURN_NOT_OK(server->hub_->Restore(engine->restored_net_state()));
  }

  server->listen_fd_ = ::socket(
      AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (server->listen_fd_ < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options.host);
  }
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind " + options.host + ":" +
                            std::to_string(options.port) + ": " +
                            std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Status::Internal("getsockname: " +
                            std::string(std::strerror(errno)));
  }
  server->port_ = ntohs(addr.sin_port);
  if (::listen(server->listen_fd_, 128) != 0) {
    return Status::Internal("listen: " + std::string(std::strerror(errno)));
  }

  server->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  server->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (server->epoll_fd_ < 0 || server->wake_fd_ < 0) {
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = server->listen_fd_;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->listen_fd_, &ev);
  ev.data.fd = server->wake_fd_;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->wake_fd_, &ev);

  // The hub joins the delivery pipeline as one more bus sink and its
  // state rides the engine checkpoint (manifest v4). Both the provider
  // and the wake callback capture what they need by value, so they stay
  // valid whatever order the server and engine wind down in.
  server->sink_id_ = engine->alerts().AddSink(server->hub_);
  const std::shared_ptr<AlertHub> hub = server->hub_;
  engine->SetNetStateProvider([hub] { return hub->Serialize(); });
  const int wake_fd = server->wake_fd_;
  server->hub_->SetWakeCallback([wake_fd] {
    const std::uint64_t tick = 1;
    // A full eventfd counter already guarantees a pending wakeup.
    (void)!::write(wake_fd, &tick, sizeof(tick));
  });

  server->loop_ = std::thread([s = server.get()] { s->LoopThread(); });
  return server;
}

NetServer::~NetServer() { (void)Stop(); }

Status NetServer::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    return Status::OK();
  }
  // Unblock a kBlock OnAlert, detach from the bus, and silence the wake
  // callback before the eventfd goes away.
  hub_->RequestStop();
  engine_->alerts().RemoveSink(sink_id_);
  hub_->SetWakeCallback(nullptr);
  stop_.store(true, std::memory_order_release);
  const std::uint64_t tick = 1;
  (void)!::write(wake_fd_, &tick, sizeof(tick));
  if (loop_.joinable()) loop_.join();
  ::close(epoll_fd_);
  ::close(listen_fd_);
  ::close(wake_fd_);
  return Status::OK();
}

void NetServer::LoopThread() {
  std::array<epoll_event, 64> events;
  while (!stop_.load(std::memory_order_acquire)) {
    // Parked batches are retried on a short tick; otherwise the loop
    // sleeps until a socket or the hub wakes it.
    const int timeout_ms = stalled_count_ > 0 ? 1 : -1;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        PumpAllSubscribers();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this round
      Connection* conn = it->second.get();
      bool ok = (ev & (EPOLLHUP | EPOLLERR)) == 0;
      if (ok && (ev & EPOLLOUT) != 0) {
        ok = conn->OnWritable();
        if (ok) PumpSubscriber(conn);
      }
      if (ok && (ev & EPOLLIN) != 0) {
        // Handle buffered frames even when the read also saw EOF: a peer
        // may flush its final acks and close in the same segment, and
        // those acks must still advance its cursor.
        const bool still_open = conn->OnReadable();
        ok = HandleFrames(conn) && still_open;
      }
      if (!ok) {
        CloseConnection(fd);
      } else {
        UpdateInterest(conn);
      }
    }
    if (stalled_count_ > 0) {
      // Retry every parked batch; completed ones resume frame handling.
      std::vector<int> dead;
      for (auto& [fd, conn] : connections_) {
        if (!conn->stalled) continue;
        if (!DrainPendingBatch(conn.get())) continue;
        conn->stalled = false;
        --stalled_count_;
        if (!HandleFrames(conn.get())) {
          dead.push_back(fd);
          continue;
        }
        UpdateInterest(conn.get());
      }
      for (int fd : dead) CloseConnection(fd);
    }
  }
  // Wind-down on the loop thread so connection state never needs a lock.
  std::vector<int> open;
  open.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open.push_back(fd);
  for (int fd : open) CloseConnection(fd);
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll re-arms
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.emplace(fd, std::make_unique<Connection>(
                                 fd, options_.max_frame_bytes,
                                 options_.max_outbound_bytes));
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
    connection_count_.store(connections_.size(), std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

bool NetServer::HandleFrames(Connection* conn) {
  Frame frame;
  // A parked batch freezes frame consumption: later frames wait in the
  // parser so batches apply in arrival order.
  while (!conn->stalled && conn->NextFrame(&frame)) {
    ++conn->frames;
    frames_.fetch_add(1, std::memory_order_relaxed);
    if (!HandleFrame(conn, frame)) return false;
  }
  // Fold the parser's damage counters into the server totals.
  const std::uint64_t corrupt = conn->parser().corrupt_frames();
  const std::uint64_t skipped = conn->parser().skipped_bytes();
  if (corrupt > conn->counted_corrupt_frames) {
    corrupt_frames_.fetch_add(corrupt - conn->counted_corrupt_frames,
                              std::memory_order_relaxed);
    conn->counted_corrupt_frames = corrupt;
  }
  if (skipped > conn->counted_skipped_bytes) {
    skipped_bytes_.fetch_add(skipped - conn->counted_skipped_bytes,
                             std::memory_order_relaxed);
    conn->counted_skipped_bytes = skipped;
  }
  return true;
}

bool NetServer::HandleFrame(Connection* conn, const Frame& frame) {
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kHello:
      return HandleHello(conn, frame.payload);
    case FrameType::kBatch:
      return HandleBatch(conn, frame.payload);
    case FrameType::kAdmin:
      return HandleAdmin(conn, frame.payload);
    case FrameType::kSubscriberAck: {
      if (!conn->hello_done || conn->role != PeerRole::kSubscriber) {
        SendError(conn, kErrWrongRole, "ack from a non-subscriber");
        return true;
      }
      SubscriberAckMessage msg;
      if (!DecodeSubscriberAck(frame.payload, &msg).ok()) {
        SendError(conn, kErrBadFrame, "bad subscriber ack");
        return true;
      }
      hub_->Ack(conn->subscriber_id, msg.acked_seq);
      ++conn->acks;
      acks_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    default:
      SendError(conn, kErrBadFrame,
                "unexpected frame type " + std::to_string(frame.type));
      return true;
  }
}

bool NetServer::HandleHello(Connection* conn, const std::string& payload) {
  HelloMessage hello;
  if (!DecodeHello(payload, &hello).ok()) {
    SendError(conn, kErrBadHello, "bad hello");
    return true;
  }
  if (conn->hello_done) {
    SendError(conn, kErrBadHello, "duplicate hello");
    return true;
  }
  HelloAckMessage ack;
  ack.next_seq = hub_->next_seq();
  if (hello.role == PeerRole::kSubscriber) {
    if (hello.subscriber_id.empty()) {
      SendError(conn, kErrBadHello, "subscriber needs an id");
      return false;
    }
    conn->role = PeerRole::kSubscriber;
    conn->subscriber_id = hello.subscriber_id;
    conn->pushed_seq = hub_->Attach(hello.subscriber_id, hello.resume_after);
    ack.resume_from = conn->pushed_seq;
    subscriber_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    conn->role = PeerRole::kProducer;
    producer_count_.fetch_add(1, std::memory_order_relaxed);
  }
  conn->hello_done = true;
  conn->QueueFrame(FrameType::kHelloAck, EncodeHelloAck(ack));
  if (conn->role == PeerRole::kSubscriber) PumpSubscriber(conn);
  return true;
}

bool NetServer::HandleBatch(Connection* conn, const std::string& payload) {
  if (!conn->hello_done || conn->role != PeerRole::kProducer) {
    SendError(conn, kErrWrongRole, "batch from a non-producer");
    return true;
  }
  BatchMessage batch;
  if (!DecodeBatch(payload, &batch).ok()) {
    SendError(conn, kErrBadFrame, "bad batch");
    return true;
  }
  conn->pending_batch = std::move(batch);
  conn->pending_run = 0;
  conn->pending_value = 0;
  conn->batch_accepted = 0;
  conn->batch_dropped = 0;
  if (!DrainPendingBatch(conn)) {
    conn->stalled = true;
    ++stalled_count_;
    ++conn->backpressure_episodes;
    backpressure_episodes_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool NetServer::HandleAdmin(Connection* conn, const std::string& payload) {
  AdminRequestMessage req;
  if (!DecodeAdminRequest(payload, &req).ok()) {
    SendError(conn, kErrBadFrame, "bad admin request");
    return true;
  }
  admin_requests_.fetch_add(1, std::memory_order_relaxed);
  AdminResultMessage result;
  switch (req.op) {
    case AdminOp::kPlacementDump: {
      result.ok = true;
      result.json = engine_->placement().ToJson();
      break;
    }
    case AdminOp::kMigrate: {
      if (req.stream > std::numeric_limits<StreamId>::max()) {
        result.ok = false;
        result.message = "stream id out of range";
        break;
      }
      const Status migrated = engine_->MigrateStream(
          static_cast<StreamId>(req.stream),
          static_cast<std::size_t>(req.shard));
      result.ok = migrated.ok();
      if (migrated.ok()) {
        AppendF(&result.json,
                "{\"stream\":%" PRIu64 ",\"shard\":%" PRIu64
                ",\"epoch\":%" PRIu64 "}",
                req.stream, req.shard, engine_->placement().epoch());
      } else {
        result.message = migrated.message();
      }
      break;
    }
  }
  conn->QueueFrame(FrameType::kAdminResult, EncodeAdminResult(result));
  return true;
}

bool NetServer::DrainPendingBatch(Connection* conn) {
  const std::vector<StreamRun>& runs = conn->pending_batch.runs;
  for (; conn->pending_run < runs.size();
       ++conn->pending_run, conn->pending_value = 0) {
    const StreamRun& run = runs[conn->pending_run];
    while (conn->pending_value < run.values.size()) {
      const Result<PostOutcome> posted = engine_->TryPost(
          static_cast<StreamId>(run.stream),
          run.values[conn->pending_value]);
      if (!posted.ok()) {
        // Unknown stream (or a stopping engine): the value is refused,
        // accounted to the producer in its ack, and the batch goes on.
        ++conn->batch_dropped;
        ++conn->pending_value;
        continue;
      }
      if (posted.value() == PostOutcome::kWouldBlock) return false;
      if (posted.value() == PostOutcome::kEnqueued) {
        ++conn->batch_accepted;
      } else {
        ++conn->batch_dropped;
      }
      ++conn->pending_value;
    }
  }
  BatchAckMessage ack;
  ack.accepted = conn->batch_accepted;
  ack.dropped = conn->batch_dropped;
  conn->QueueFrame(FrameType::kBatchAck, EncodeBatchAck(ack));
  ++conn->batches;
  conn->accepted += conn->batch_accepted;
  conn->dropped += conn->batch_dropped;
  batches_.fetch_add(1, std::memory_order_relaxed);
  accepted_.fetch_add(conn->batch_accepted, std::memory_order_relaxed);
  dropped_.fetch_add(conn->batch_dropped, std::memory_order_relaxed);
  conn->pending_batch.runs.clear();
  return true;
}

void NetServer::PumpSubscriber(Connection* conn) {
  if (!conn->hello_done || conn->role != PeerRole::kSubscriber) return;
  std::vector<SequencedAlert> fetched;
  while (!conn->outbound_full()) {
    fetched.clear();
    std::uint64_t skipped = 0;
    const std::size_t n =
        hub_->FetchAfter(conn->pushed_seq, kPumpChunk, &fetched, &skipped);
    if (skipped != 0) {
      // The hub evicted part of this subscriber's backlog (kDropOldest
      // laggard); jump the cursor and account the gap.
      conn->skipped_alerts += skipped;
      skipped_alerts_.fetch_add(skipped, std::memory_order_relaxed);
      conn->pushed_seq += skipped;
    }
    if (n == 0) break;
    for (const SequencedAlert& entry : fetched) {
      AlertFrameMessage msg;
      msg.seq = entry.seq;
      msg.json = AlertToJson(entry.alert, entry.seq);
      conn->QueueFrame(FrameType::kAlert, EncodeAlertFrame(msg));
      conn->pushed_seq = entry.seq;
      ++conn->alerts_sent;
      alerts_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void NetServer::PumpAllSubscribers() {
  std::vector<int> dead;
  for (auto& [fd, conn] : connections_) {
    PumpSubscriber(conn.get());
    if (!conn->OnWritable()) {
      dead.push_back(fd);
      continue;
    }
    UpdateInterest(conn.get());
  }
  for (int fd : dead) CloseConnection(fd);
}

void NetServer::SendError(Connection* conn, std::uint8_t code,
                          const std::string& message) {
  ErrorMessage msg;
  msg.code = code;
  msg.message = message;
  conn->QueueFrame(FrameType::kError, EncodeError(msg));
  ++conn->protocol_errors;
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
}

void NetServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (conn->stalled) --stalled_count_;
  if (conn->hello_done) {
    if (conn->role == PeerRole::kSubscriber) {
      // The cursor stays in the hub: a reconnect with the same id
      // resumes after the last acknowledged alert.
      subscriber_count_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      producer_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(it);  // destructor closes the fd
  connection_count_.store(connections_.size(), std::memory_order_relaxed);
}

void NetServer::UpdateInterest(Connection* conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn->stalled) ev.events |= EPOLLIN;
  if (conn->has_outbound()) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
}

NetMetricsSnapshot NetServer::Metrics() const {
  const auto load64 = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  NetMetricsSnapshot snap;
  snap.connections = connection_count_.load(std::memory_order_relaxed);
  snap.producers = producer_count_.load(std::memory_order_relaxed);
  snap.subscribers = subscriber_count_.load(std::memory_order_relaxed);
  snap.accepted_connections = load64(accepted_connections_);
  snap.frames = load64(frames_);
  snap.corrupt_frames = load64(corrupt_frames_);
  snap.skipped_bytes = load64(skipped_bytes_);
  snap.batches = load64(batches_);
  snap.accepted = load64(accepted_);
  snap.dropped = load64(dropped_);
  snap.backpressure_episodes = load64(backpressure_episodes_);
  snap.alerts_sent = load64(alerts_sent_);
  snap.acks = load64(acks_);
  snap.protocol_errors = load64(protocol_errors_);
  snap.skipped_alerts = load64(skipped_alerts_);
  snap.admin_requests = load64(admin_requests_);
  return snap;
}

std::string NetServer::MetricsJson() const {
  const NetMetricsSnapshot s = Metrics();
  std::string body;
  body.reserve(512);
  AppendF(&body,
          "\"port\":%u,\"connections\":%zu,\"producers\":%zu"
          ",\"subscribers\":%zu,\"accepted_connections\":%" PRIu64,
          static_cast<unsigned>(port_), s.connections, s.producers,
          s.subscribers, s.accepted_connections);
  AppendF(&body,
          ",\"frames\":%" PRIu64 ",\"corrupt_frames\":%" PRIu64
          ",\"skipped_bytes\":%" PRIu64 ",\"batches\":%" PRIu64,
          s.frames, s.corrupt_frames, s.skipped_bytes, s.batches);
  AppendF(&body,
          ",\"accepted\":%" PRIu64 ",\"dropped\":%" PRIu64
          ",\"backpressure_episodes\":%" PRIu64 ",\"alerts_sent\":%" PRIu64,
          s.accepted, s.dropped, s.backpressure_episodes, s.alerts_sent);
  AppendF(&body,
          ",\"acks\":%" PRIu64 ",\"protocol_errors\":%" PRIu64
          ",\"skipped_alerts\":%" PRIu64 ",\"admin_requests\":%" PRIu64,
          s.acks, s.protocol_errors, s.skipped_alerts, s.admin_requests);
  AppendF(&body,
          ",\"hub\":{\"next_seq\":%" PRIu64 ",\"stamped\":%" PRIu64
          ",\"retained\":%zu,\"replay_high_water\":%zu"
          ",\"dropped_newest\":%" PRIu64 ",\"dropped_oldest\":%" PRIu64
          ",\"block_waits\":%" PRIu64 ",\"cursors\":%zu}",
          hub_->next_seq(), hub_->stamped(), hub_->retained(),
          hub_->replay_high_water(), hub_->dropped_newest(),
          hub_->dropped_oldest(), hub_->block_waits(),
          hub_->Cursors().size());
  return MergeMetricsSection(engine_->MetricsJson(), "net", body);
}

}  // namespace stardust::net
