// Durable subscriber cursors: subscriber id -> highest acknowledged
// alert sequence number. Owned by the AlertHub (net/alert_hub.h), which
// guards it with its own mutex; this class itself is thread-compatible,
// not thread-safe. Serialization follows the snapshot envelope
// conventions (magic + version + FNV-1a payload checksum) so the bytes
// ride the engine checkpoint and restore losslessly (manifest v4,
// engine/checkpoint.h).
#ifndef STARDUST_NET_CURSOR_STORE_H_
#define STARDUST_NET_CURSOR_STORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace stardust::net {

class CursorStore {
 public:
  /// Highest acknowledged sequence of `id`; 0 when unknown.
  std::uint64_t Get(const std::string& id) const;

  /// Advances `id`'s cursor to `seq` (cursors never move backwards, so a
  /// reordered or replayed ack is harmless).
  void Advance(const std::string& id, std::uint64_t seq);

  /// Removes a subscriber's cursor (operator-driven forget; a plain
  /// disconnect keeps the cursor for resume).
  bool Erase(const std::string& id);

  std::size_t size() const { return cursors_.size(); }
  /// Smallest cursor across all subscribers; `everyone_past` receives
  /// false when the store is empty (no bound to report).
  std::uint64_t MinAcked(bool* any) const;

  const std::map<std::string, std::uint64_t>& cursors() const {
    return cursors_;
  }

  std::string Serialize() const;
  Status Restore(const std::string& bytes);

 private:
  /// Ordered so serialization is deterministic.
  std::map<std::string, std::uint64_t> cursors_;
};

}  // namespace stardust::net

#endif  // STARDUST_NET_CURSOR_STORE_H_
