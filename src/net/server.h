// NetServer: the network front door of the ingestion engine
// (docs/NETWORK.md). One epoll event-loop thread serves two kinds of
// peers over the binary frame protocol (net/frame.h, net/codec.h):
//
//  - Producers send Batch frames of per-stream runs; the loop feeds
//    every value into the engine through the non-blocking TryPost path
//    and answers each batch with a BatchAck{accepted, dropped}. The
//    engine's OverloadPolicy maps onto the transport: under the drop
//    policies losses are counted into the ack, under kBlock a full queue
//    parks the rest of the batch, pauses reads from that socket (TCP
//    backpressure all the way to the producer), and retries until the
//    shard drains.
//
//  - Subscribers receive every alert the engine's AlertBus delivers,
//    stamped with a monotonically increasing sequence number by the
//    server's AlertHub (net/alert_hub.h) and pushed as Alert frames in
//    order. A subscriber acknowledges its cursor with SubscriberAck and
//    can reconnect with Hello{id, resume_after} to replay everything it
//    has not acknowledged. Hub state (allocator, cursors, replay ring)
//    rides the engine checkpoint (manifest v4), so replay survives a
//    server restart.
//
// The loop thread is the engine's single network producer (one SPSC
// producer slot), so no locking exists anywhere on the ingest path
// beyond the rings themselves.
#ifndef STARDUST_NET_SERVER_H_
#define STARDUST_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "net/alert_hub.h"
#include "net/connection.h"

namespace stardust::net {

/// Aggregated view of the network tier, merged into the engine metrics
/// JSON as the "net" section.
struct NetMetricsSnapshot {
  std::size_t connections = 0;
  std::size_t producers = 0;
  std::size_t subscribers = 0;
  std::uint64_t accepted_connections = 0;
  std::uint64_t frames = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t skipped_bytes = 0;
  std::uint64_t batches = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t backpressure_episodes = 0;
  std::uint64_t alerts_sent = 0;
  std::uint64_t acks = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t skipped_alerts = 0;
  std::uint64_t admin_requests = 0;
};

class NetServer {
 public:
  struct Options {
    /// Listen address. Port 0 binds an ephemeral port; read the actual
    /// one back with port().
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    std::size_t max_connections = 64;
    /// Per-connection outbound buffer bound; a subscriber whose buffer
    /// is full stops being pumped and lags into the hub's replay ring.
    std::size_t max_outbound_bytes = 256 * 1024;
    AlertHub::Options hub;
  };

  /// Binds, registers the AlertHub as a bus sink, attaches the hub to
  /// the engine's checkpoint cycle (and restores it from
  /// engine->restored_net_state() when present), and starts the loop
  /// thread. `engine` must outlive the server.
  static Result<std::unique_ptr<NetServer>> Start(IngestEngine* engine);
  static Result<std::unique_ptr<NetServer>> Start(IngestEngine* engine,
                                                  Options options);

  /// Stops and joins the loop, closes every connection (subscriber
  /// cursors persist in the hub). Idempotent.
  Status Stop();
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Actual listening port (after an ephemeral bind).
  std::uint16_t port() const { return port_; }
  AlertHub& hub() { return *hub_; }
  const AlertHub& hub() const { return *hub_; }

  NetMetricsSnapshot Metrics() const;
  /// Engine metrics JSON with a "net" section appended (docs/ENGINE.md,
  /// docs/NETWORK.md).
  std::string MetricsJson() const;

 private:
  NetServer(IngestEngine* engine, Options options);

  void LoopThread();
  void AcceptReady();
  /// Handles every complete frame the connection has buffered. Returns
  /// false when the connection must be dropped.
  bool HandleFrames(Connection* conn);
  bool HandleFrame(Connection* conn, const Frame& frame);
  bool HandleHello(Connection* conn, const std::string& payload);
  bool HandleBatch(Connection* conn, const std::string& payload);
  /// Operator plane: placement dump / live migration. Runs on the loop
  /// thread, so a migration briefly pauses network service — acceptable
  /// for a rare operator action, and it keeps the engine call free of
  /// extra synchronization. No Hello is required for admin frames.
  bool HandleAdmin(Connection* conn, const std::string& payload);
  /// Feeds the parked batch into the engine from where it stalled.
  /// Returns false when it stalled again (kWouldBlock).
  bool DrainPendingBatch(Connection* conn);
  /// Pushes retained alerts after the connection's cursor until the
  /// outbound buffer fills or the hub runs dry.
  void PumpSubscriber(Connection* conn);
  void PumpAllSubscribers();
  void SendError(Connection* conn, std::uint8_t code,
                 const std::string& message);
  void CloseConnection(int fd);
  /// Re-arms epoll interest to match the connection's state (reads
  /// paused while a batch is parked; writes armed while output is
  /// buffered).
  void UpdateInterest(Connection* conn);

  IngestEngine* const engine_;
  const Options options_;
  std::shared_ptr<AlertHub> hub_;
  AlertBus::SinkId sink_id_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  /// eventfd: the hub's wake callback and Stop both signal the loop.
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::thread loop_;

  // --- Loop-thread state ------------------------------------------------
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  /// Connections with a parked batch, retried on loop ticks.
  std::size_t stalled_count_ = 0;

  // --- Counters (loop thread writes relaxed, Metrics reads) -------------
  std::atomic<std::size_t> connection_count_{0};
  std::atomic<std::size_t> producer_count_{0};
  std::atomic<std::size_t> subscriber_count_{0};
  std::atomic<std::uint64_t> accepted_connections_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> corrupt_frames_{0};
  std::atomic<std::uint64_t> skipped_bytes_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> backpressure_episodes_{0};
  std::atomic<std::uint64_t> alerts_sent_{0};
  std::atomic<std::uint64_t> acks_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> skipped_alerts_{0};
  std::atomic<std::uint64_t> admin_requests_{0};
};

}  // namespace stardust::net

#endif  // STARDUST_NET_SERVER_H_
