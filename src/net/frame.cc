#include "net/frame.h"

#include <cstring>

#include "common/serialize.h"

namespace stardust::net {

namespace {

std::uint16_t ReadU16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[1])) << 8));
}

std::uint32_t ReadU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t ReadU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

}  // namespace

std::string EncodeFrame(FrameType type, const std::string& payload) {
  Writer w;
  w.Bytes(kFrameMagic, sizeof(kFrameMagic));
  w.U8(static_cast<std::uint8_t>(kProtocolVersion & 0xff));
  w.U8(static_cast<std::uint8_t>(kProtocolVersion >> 8));
  const std::uint16_t t = static_cast<std::uint16_t>(type);
  w.U8(static_cast<std::uint8_t>(t & 0xff));
  w.U8(static_cast<std::uint8_t>(t >> 8));
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U64(Fnv1a(payload));
  w.Bytes(payload.data(), payload.size());
  return std::move(w.TakeBuffer());
}

void FrameParser::Feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

void FrameParser::Compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not accrete every byte it ever received.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

void FrameParser::Skip(std::size_t n) {
  consumed_ += n;
  skipped_bytes_ += n;
}

bool FrameParser::Next(Frame* out) {
  for (;;) {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kFrameHeaderBytes) {
      Compact();
      return false;
    }
    const char* head = buffer_.data() + consumed_;
    if (std::memcmp(head, kFrameMagic, sizeof(kFrameMagic)) != 0) {
      // Resync: scan forward for the next magic. When none is found the
      // scan stops magic-length-1 bytes short of the end — that tail
      // could be the prefix of a magic still arriving, so it is kept.
      std::size_t skip = 1;
      const std::size_t scan_end = available - (sizeof(kFrameMagic) - 1);
      while (skip < scan_end &&
             std::memcmp(head + skip, kFrameMagic, sizeof(kFrameMagic)) !=
                 0) {
        ++skip;
      }
      Skip(skip);
      continue;
    }
    const std::uint16_t version = ReadU16(head + 4);
    const std::uint16_t type = ReadU16(head + 6);
    const std::uint32_t payload_len = ReadU32(head + 8);
    const std::uint64_t checksum = ReadU64(head + 12);
    if (version != kProtocolVersion || payload_len > max_frame_bytes_) {
      // Untrustworthy header: the declared length cannot be believed, so
      // drop the magic and rescan from the next byte.
      Skip(sizeof(kFrameMagic));
      continue;
    }
    if (available < kFrameHeaderBytes + payload_len) {
      Compact();
      return false;  // incomplete frame; wait for more bytes
    }
    std::string payload(head + kFrameHeaderBytes, payload_len);
    if (Fnv1a(payload) != checksum) {
      // Damaged payload behind a sane header: drop the whole frame (its
      // length was bounded and verified plausible) and keep the stream.
      ++corrupt_frames_;
      Skip(kFrameHeaderBytes + payload_len);
      continue;
    }
    consumed_ += kFrameHeaderBytes + payload_len;
    Compact();
    out->type = type;
    out->payload = std::move(payload);
    return true;
  }
}

}  // namespace stardust::net
