#include "net/alert_hub.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"

namespace stardust::net {

namespace {

constexpr char kHubMagic[4] = {'S', 'D', 'N', 'H'};
constexpr std::uint32_t kHubVersion = 1;
/// Serialized bytes per ring entry (seq + alert fields), for bounding a
/// declared entry count against the remaining payload.
constexpr std::uint64_t kMinEntryBytes = 8 + 8 + 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8;

void SaveAlert(Writer* w, const Alert& alert) {
  w->U64(alert.query);
  w->U8(static_cast<std::uint8_t>(alert.kind));
  w->U32(alert.stream);
  w->U32(alert.stream_b);
  w->U64(alert.window);
  w->U64(alert.end_time);
  w->U64(alert.epoch);
  w->F64(alert.value);
  w->F64(alert.threshold);
}

Status LoadAlert(Reader* r, Alert* alert) {
  std::uint64_t query = 0;
  std::uint8_t kind = 0;
  std::uint64_t window = 0;
  SD_RETURN_NOT_OK(r->U64(&query));
  SD_RETURN_NOT_OK(r->U8(&kind));
  SD_RETURN_NOT_OK(r->U32(&alert->stream));
  SD_RETURN_NOT_OK(r->U32(&alert->stream_b));
  SD_RETURN_NOT_OK(r->U64(&window));
  SD_RETURN_NOT_OK(r->U64(&alert->end_time));
  SD_RETURN_NOT_OK(r->U64(&alert->epoch));
  SD_RETURN_NOT_OK(r->F64(&alert->value));
  SD_RETURN_NOT_OK(r->F64(&alert->threshold));
  if (kind > static_cast<std::uint8_t>(QueryKind::kCorrelation)) {
    return Status::InvalidArgument("unknown alert kind in hub snapshot");
  }
  alert->query = query;
  alert->kind = static_cast<QueryKind>(kind);
  alert->window = static_cast<std::size_t>(window);
  return Status::OK();
}

}  // namespace

AlertHub::AlertHub() : AlertHub(Options{}) {}

AlertHub::AlertHub(Options options) : options_(options) {
  SD_CHECK(options_.replay_capacity > 0);
}

void AlertHub::OnAlert(const Alert& alert) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (replay_.size() >= options_.replay_capacity) {
      switch (options_.overflow) {
        case OverloadPolicy::kDropNewest:
          // Refused before a sequence number is assigned, so the stamped
          // stream stays gap-free; the alert simply never reaches the
          // network tier (the bus already delivered it in-process).
          ++dropped_newest_;
          return;
        case OverloadPolicy::kDropOldest:
          while (replay_.size() >= options_.replay_capacity) {
            replay_.pop_front();
            ++dropped_oldest_;
          }
          break;
        case OverloadPolicy::kBlock: {
          ++block_waits_;
          space_.wait(lock, [this] {
            return replay_.size() < options_.replay_capacity || stopping_;
          });
          if (stopping_ && replay_.size() >= options_.replay_capacity) {
            ++dropped_newest_;
            return;  // shutting down; do not stall the bus forever
          }
          break;
        }
      }
    }
    SequencedAlert entry;
    entry.seq = next_seq_++;
    entry.alert = alert;
    replay_.push_back(entry);
    ++stamped_;
    replay_high_water_ = std::max(replay_high_water_, replay_.size());
  }
  std::function<void()> wake;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake = wake_;
  }
  if (wake) wake();
}

std::uint64_t AlertHub::Attach(const std::string& id,
                               std::uint64_t resume_after) {
  std::lock_guard<std::mutex> lock(mu_);
  cursors_.Advance(id, resume_after);
  // Touch the cursor even at 0 so retention starts honoring this
  // subscriber immediately.
  if (resume_after == 0) cursors_.Advance(id, 0);
  PruneAckedLocked();
  return cursors_.Get(id);
}

void AlertHub::Ack(const std::string& id, std::uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cursors_.Advance(id, seq);
    PruneAckedLocked();
  }
  space_.notify_all();
}

void AlertHub::PruneAckedLocked() {
  bool any = false;
  const std::uint64_t min_acked = cursors_.MinAcked(&any);
  if (!any) return;
  while (!replay_.empty() && replay_.front().seq <= min_acked) {
    replay_.pop_front();
  }
}

std::size_t AlertHub::FetchAfter(std::uint64_t after, std::size_t max,
                                 std::vector<SequencedAlert>* out,
                                 std::uint64_t* skipped) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (skipped != nullptr) *skipped = 0;
  // First retained sequence a fetch at `after` could possibly return;
  // everything between the cursor and it is gone (acked away for this
  // cursor means after >= it, so any true gap here is a drop).
  const std::uint64_t first_available =
      replay_.empty() ? next_seq_ : replay_.front().seq;
  if (skipped != nullptr && first_available > after + 1) {
    *skipped = first_available - 1 - after;
  }
  // Binary search: replay_ is ordered by strictly increasing seq.
  auto it = std::lower_bound(
      replay_.begin(), replay_.end(), after + 1,
      [](const SequencedAlert& e, std::uint64_t seq) { return e.seq < seq; });
  std::size_t copied = 0;
  for (; it != replay_.end() && copied < max; ++it, ++copied) {
    out->push_back(*it);
  }
  return copied;
}

void AlertHub::SetWakeCallback(std::function<void()> wake) {
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_ = std::move(wake);
}

void AlertHub::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  space_.notify_all();
}

std::string AlertHub::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  Writer payload;
  payload.U64(next_seq_);
  const std::string cursor_bytes = cursors_.Serialize();
  payload.U64(cursor_bytes.size());
  payload.Bytes(cursor_bytes.data(), cursor_bytes.size());
  payload.U64(replay_.size());
  for (const SequencedAlert& entry : replay_) {
    payload.U64(entry.seq);
    SaveAlert(&payload, entry.alert);
  }
  Writer envelope;
  envelope.Bytes(kHubMagic, sizeof(kHubMagic));
  envelope.U32(kHubVersion);
  envelope.U64(Fnv1a(payload.buffer()));
  envelope.Bytes(payload.buffer().data(), payload.buffer().size());
  return std::move(envelope.TakeBuffer());
}

Status AlertHub::Restore(const std::string& bytes) {
  if (bytes.size() < sizeof(kHubMagic) + 12) {
    return Status::InvalidArgument("hub snapshot too small");
  }
  if (std::memcmp(bytes.data(), kHubMagic, sizeof(kHubMagic)) != 0) {
    return Status::InvalidArgument("not an alert hub snapshot");
  }
  Reader header(bytes);
  std::uint8_t b = 0;
  for (std::size_t i = 0; i < sizeof(kHubMagic); ++i) {
    SD_RETURN_NOT_OK(header.U8(&b));
  }
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SD_RETURN_NOT_OK(header.U32(&version));
  SD_RETURN_NOT_OK(header.U64(&checksum));
  if (version != kHubVersion) {
    return Status::InvalidArgument("unsupported hub snapshot version");
  }
  const std::string payload = bytes.substr(sizeof(kHubMagic) + 12);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument("hub snapshot checksum mismatch");
  }

  Reader reader(payload);
  std::uint64_t next_seq = 0;
  SD_RETURN_NOT_OK(reader.U64(&next_seq));
  if (next_seq == 0) {
    return Status::InvalidArgument("hub snapshot sequence allocator at 0");
  }
  std::uint64_t cursor_size = 0;
  SD_RETURN_NOT_OK(reader.U64(&cursor_size));
  if (cursor_size > reader.remaining()) {
    return Status::InvalidArgument("hub cursor blob out of range");
  }
  std::string cursor_bytes(cursor_size, '\0');
  for (std::uint64_t i = 0; i < cursor_size; ++i) {
    std::uint8_t c = 0;
    SD_RETURN_NOT_OK(reader.U8(&c));
    cursor_bytes[i] = static_cast<char>(c);
  }
  CursorStore cursors;
  SD_RETURN_NOT_OK(cursors.Restore(cursor_bytes));
  std::uint64_t num_entries = 0;
  SD_RETURN_NOT_OK(reader.U64(&num_entries));
  if (num_entries > reader.remaining() / kMinEntryBytes) {
    return Status::InvalidArgument("hub replay count out of range");
  }
  std::deque<SequencedAlert> replay;
  std::uint64_t prev_seq = 0;
  for (std::uint64_t i = 0; i < num_entries; ++i) {
    SequencedAlert entry;
    SD_RETURN_NOT_OK(reader.U64(&entry.seq));
    SD_RETURN_NOT_OK(LoadAlert(&reader, &entry.alert));
    if (entry.seq <= prev_seq || entry.seq >= next_seq) {
      return Status::InvalidArgument("hub replay sequence out of order");
    }
    prev_seq = entry.seq;
    replay.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("hub snapshot has trailing bytes");
  }

  std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = next_seq;
  cursors_ = std::move(cursors);
  replay_ = std::move(replay);
  replay_high_water_ = std::max(replay_high_water_, replay_.size());
  return Status::OK();
}

std::uint64_t AlertHub::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t AlertHub::stamped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stamped_;
}

std::uint64_t AlertHub::dropped_newest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_newest_;
}

std::uint64_t AlertHub::dropped_oldest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_oldest_;
}

std::uint64_t AlertHub::block_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return block_waits_;
}

std::size_t AlertHub::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replay_.size();
}

std::size_t AlertHub::replay_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replay_high_water_;
}

std::vector<std::pair<std::string, std::uint64_t>> AlertHub::Cursors() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(cursors_.cursors().size());
  for (const auto& [id, seq] : cursors_.cursors()) {
    out.emplace_back(id, seq);
  }
  return out;
}

}  // namespace stardust::net
