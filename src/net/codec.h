// Payload schemas of the stardust network protocol, one struct + encode/
// decode pair per FrameType (net/frame.h). Encoding reuses the snapshot
// substrate (common/serialize.h): fixed-width little-endian fields,
// bounds-checked reads, Status-returning decoders — a torn or hostile
// payload surfaces as InvalidArgument, never as a crash or a huge
// allocation (every length is bounded against the remaining payload).
//
// Ingest direction (producer -> server):
//   Hello{role=kProducer}            -> HelloAck
//   Batch{runs of (stream, values)}  -> BatchAck{accepted, dropped}
// The batch carries one contiguous run of values per stream — the same
// run shape the engine's columnar maintenance path consumes, so the wire
// format feeds Shard::AppendRun grouping without reshuffling.
//
// Subscribe direction (server -> subscriber):
//   Hello{role=kSubscriber, id, resume_after} -> HelloAck{resume_from}
//   Alert{seq, json}  (server push, seq strictly increasing)
//   SubscriberAck{seq} (client -> server, cumulative cursor)
#ifndef STARDUST_NET_CODEC_H_
#define STARDUST_NET_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace stardust::net {

/// Who a connection speaks for, declared in its Hello frame.
enum class PeerRole : std::uint8_t {
  kProducer = 0,
  kSubscriber = 1,
};

/// First frame on every connection.
struct HelloMessage {
  PeerRole role = PeerRole::kProducer;
  /// Stable subscriber identity for cursor resume; ignored for producers.
  std::string subscriber_id;
  /// Highest alert sequence number this subscriber has durably consumed;
  /// the server replays everything after max(resume_after, stored
  /// cursor). 0 means "from the earliest retained alert".
  std::uint64_t resume_after = 0;
};

/// Server reply to Hello.
struct HelloAckMessage {
  /// The server's next unassigned alert sequence number at accept time.
  std::uint64_t next_seq = 0;
  /// Sequence the subscriber's replay resumes after (producers: 0).
  std::uint64_t resume_from = 0;
};

/// One stream's contiguous run of values within a batch.
struct StreamRun {
  std::uint32_t stream = 0;
  std::vector<double> values;
};

/// One ingest batch: per-stream runs, applied in order.
struct BatchMessage {
  std::vector<StreamRun> runs;

  std::size_t total_values() const {
    std::size_t n = 0;
    for (const StreamRun& run : runs) n += run.values.size();
    return n;
  }
};

/// Server reply per Batch: how the engine's overload policy treated it.
struct BatchAckMessage {
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
};

/// One sequenced alert pushed to a subscriber. `json` is the AlertBus
/// JSONL schema with a leading "seq" field (query/alert.h, AlertToJson).
struct AlertFrameMessage {
  std::uint64_t seq = 0;
  std::string json;
};

/// Cumulative subscriber cursor: every alert with seq <= acked_seq has
/// been durably consumed.
struct SubscriberAckMessage {
  std::uint64_t acked_seq = 0;
};

/// Server-side protocol error report (the connection stays open).
struct ErrorMessage {
  std::uint8_t code = 0;
  std::string message;
};

/// Operator-plane operation carried by a kAdmin frame.
enum class AdminOp : std::uint8_t {
  /// Dump the engine's placement table (epoch + stream→shard map);
  /// `stream`/`shard` are ignored.
  kPlacementDump = 1,
  /// Live-migrate `stream` to `shard` (IngestEngine::MigrateStream from
  /// its current owner).
  kMigrate = 2,
};

/// One admin request (stardust_cli placement / migrate).
struct AdminRequestMessage {
  AdminOp op = AdminOp::kPlacementDump;
  std::uint64_t stream = 0;
  std::uint64_t shard = 0;
};

/// Server reply to an AdminRequest. `json` carries the placement dump
/// (or migration summary); `message` the failure text when !ok.
struct AdminResultMessage {
  bool ok = false;
  std::string message;
  std::string json;
};

std::string EncodeHello(const HelloMessage& msg);
Status DecodeHello(const std::string& payload, HelloMessage* out);

std::string EncodeHelloAck(const HelloAckMessage& msg);
Status DecodeHelloAck(const std::string& payload, HelloAckMessage* out);

std::string EncodeBatch(const BatchMessage& msg);
Status DecodeBatch(const std::string& payload, BatchMessage* out);

std::string EncodeBatchAck(const BatchAckMessage& msg);
Status DecodeBatchAck(const std::string& payload, BatchAckMessage* out);

std::string EncodeAlertFrame(const AlertFrameMessage& msg);
Status DecodeAlertFrame(const std::string& payload, AlertFrameMessage* out);

std::string EncodeSubscriberAck(const SubscriberAckMessage& msg);
Status DecodeSubscriberAck(const std::string& payload,
                           SubscriberAckMessage* out);

std::string EncodeError(const ErrorMessage& msg);
Status DecodeError(const std::string& payload, ErrorMessage* out);

std::string EncodeAdminRequest(const AdminRequestMessage& msg);
Status DecodeAdminRequest(const std::string& payload,
                          AdminRequestMessage* out);

std::string EncodeAdminResult(const AdminResultMessage& msg);
Status DecodeAdminResult(const std::string& payload,
                         AdminResultMessage* out);

}  // namespace stardust::net

#endif  // STARDUST_NET_CODEC_H_
