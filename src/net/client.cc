#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace stardust::net {

ClientConnection::~ClientConnection() { Close(); }

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ClientConnection::Connect(const std::string& host,
                                 std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    Close();
    return Status::Internal("connect " + host + ":" + std::to_string(port) +
                            ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status ClientConnection::SendFrame(FrameType type,
                                   const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  const std::string frame = EncodeFrame(type, payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Aborted("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status ClientConnection::NextFrame(Frame* out, int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  for (;;) {
    if (parser_.Next(out)) return Status::OK();
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Aborted("poll: " + std::string(std::strerror(errno)));
    }
    if (ready == 0) return Status::NotFound("no frame within timeout");
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::Aborted("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Aborted("recv: " + std::string(std::strerror(errno)));
    }
    parser_.Feed(buf, static_cast<std::size_t>(n));
  }
}

Result<std::unique_ptr<ProducerClient>> ProducerClient::Connect(
    const std::string& host, std::uint16_t port) {
  std::unique_ptr<ProducerClient> client(new ProducerClient());
  SD_RETURN_NOT_OK(client->ClientConnection::Connect(host, port));
  HelloMessage hello;
  hello.role = PeerRole::kProducer;
  SD_RETURN_NOT_OK(client->SendFrame(FrameType::kHello, EncodeHello(hello)));
  Frame frame;
  SD_RETURN_NOT_OK(client->NextFrame(&frame, 0));
  if (frame.type != static_cast<std::uint16_t>(FrameType::kHelloAck)) {
    return Status::Internal("expected hello ack, got frame type " +
                            std::to_string(frame.type));
  }
  HelloAckMessage ack;
  SD_RETURN_NOT_OK(DecodeHelloAck(frame.payload, &ack));
  return client;
}

Result<BatchAckMessage> ProducerClient::Send(const BatchMessage& batch) {
  SD_RETURN_NOT_OK(SendFrame(FrameType::kBatch, EncodeBatch(batch)));
  // The server may interleave error reports; the ack for this batch is
  // the next kBatchAck (one batch in flight per producer client).
  for (;;) {
    Frame frame;
    SD_RETURN_NOT_OK(NextFrame(&frame, 0));
    if (frame.type == static_cast<std::uint16_t>(FrameType::kBatchAck)) {
      BatchAckMessage ack;
      SD_RETURN_NOT_OK(DecodeBatchAck(frame.payload, &ack));
      return ack;
    }
    if (frame.type == static_cast<std::uint16_t>(FrameType::kError)) {
      ErrorMessage err;
      if (DecodeError(frame.payload, &err).ok()) {
        return Status::InvalidArgument("server rejected batch: " +
                                       err.message);
      }
      return Status::InvalidArgument("server rejected batch");
    }
    // Anything else (stray frame) is skipped.
  }
}

Result<std::unique_ptr<SubscriberClient>> SubscriberClient::Connect(
    const std::string& host, std::uint16_t port, const std::string& id,
    std::uint64_t resume_after) {
  if (id.empty()) {
    return Status::InvalidArgument("subscriber id must be non-empty");
  }
  std::unique_ptr<SubscriberClient> client(new SubscriberClient());
  SD_RETURN_NOT_OK(client->ClientConnection::Connect(host, port));
  HelloMessage hello;
  hello.role = PeerRole::kSubscriber;
  hello.subscriber_id = id;
  hello.resume_after = resume_after;
  SD_RETURN_NOT_OK(client->SendFrame(FrameType::kHello, EncodeHello(hello)));
  Frame frame;
  SD_RETURN_NOT_OK(client->NextFrame(&frame, 0));
  if (frame.type == static_cast<std::uint16_t>(FrameType::kError)) {
    ErrorMessage err;
    (void)DecodeError(frame.payload, &err);
    return Status::InvalidArgument("server rejected subscription: " +
                                   err.message);
  }
  if (frame.type != static_cast<std::uint16_t>(FrameType::kHelloAck)) {
    return Status::Internal("expected hello ack, got frame type " +
                            std::to_string(frame.type));
  }
  HelloAckMessage ack;
  SD_RETURN_NOT_OK(DecodeHelloAck(frame.payload, &ack));
  client->resume_from_ = ack.resume_from;
  client->server_next_seq_ = ack.next_seq;
  return client;
}

Result<AlertFrameMessage> SubscriberClient::Next(int timeout_ms) {
  for (;;) {
    Frame frame;
    SD_RETURN_NOT_OK(NextFrame(&frame, timeout_ms));
    if (frame.type == static_cast<std::uint16_t>(FrameType::kAlert)) {
      AlertFrameMessage msg;
      SD_RETURN_NOT_OK(DecodeAlertFrame(frame.payload, &msg));
      return msg;
    }
    // Errors and stray frames do not end the subscription.
  }
}

Status SubscriberClient::Ack(std::uint64_t seq) {
  SubscriberAckMessage msg;
  msg.acked_seq = seq;
  return SendFrame(FrameType::kSubscriberAck, EncodeSubscriberAck(msg));
}

Result<std::unique_ptr<AdminClient>> AdminClient::Connect(
    const std::string& host, std::uint16_t port) {
  std::unique_ptr<AdminClient> client(new AdminClient());
  SD_RETURN_NOT_OK(client->ClientConnection::Connect(host, port));
  return client;
}

Result<AdminResultMessage> AdminClient::PlacementDump() {
  AdminRequestMessage request;
  request.op = AdminOp::kPlacementDump;
  return RoundTrip(request);
}

Result<AdminResultMessage> AdminClient::Migrate(std::uint64_t stream,
                                                std::uint64_t shard) {
  AdminRequestMessage request;
  request.op = AdminOp::kMigrate;
  request.stream = stream;
  request.shard = shard;
  return RoundTrip(request);
}

Result<AdminResultMessage> AdminClient::RoundTrip(
    const AdminRequestMessage& request) {
  SD_RETURN_NOT_OK(
      SendFrame(FrameType::kAdmin, EncodeAdminRequest(request)));
  // A migration drains the source shard before the reply, so no timeout:
  // the reply arrives when the engine is done (or the socket dies).
  for (;;) {
    Frame frame;
    SD_RETURN_NOT_OK(NextFrame(&frame, 0));
    if (frame.type == static_cast<std::uint16_t>(FrameType::kAdminResult)) {
      AdminResultMessage result;
      SD_RETURN_NOT_OK(DecodeAdminResult(frame.payload, &result));
      return result;
    }
    if (frame.type == static_cast<std::uint16_t>(FrameType::kError)) {
      ErrorMessage err;
      (void)DecodeError(frame.payload, &err);
      return Status::InvalidArgument("server rejected admin request: " +
                                     err.message);
    }
    // Stray frames are skipped.
  }
}

}  // namespace stardust::net
