// AlertHub: the bounded fan-out stage between the in-process alert bus
// and any number of TCP subscribers (docs/NETWORK.md).
//
// Registered as one AlertSink on the engine's AlertBus, the hub stamps
// every delivered alert with a monotonically increasing sequence number
// (one total order for all subscribers — stamping happens on the bus's
// single dispatcher thread) and retains it in a bounded replay ring.
// Each subscriber owns a durable cursor (net/cursor_store.h): the server
// pushes alerts after the cursor and advances it on SubscriberAck, so a
// reconnecting subscriber resumes exactly where it acknowledged.
//
// Retention: an entry is pruned once every known cursor has acknowledged
// it. When laggards pin the ring at capacity, the hub applies the same
// OverloadPolicy vocabulary as the bus and the ingest rings:
//   kDropOldest (default) — evict the oldest retained alert; subscribers
//     still behind it observe a cursor jump, surfaced per fetch in
//     `skipped` and counted in dropped_oldest().
//   kDropNewest — refuse the incoming alert before a sequence number is
//     assigned (no gap is ever created), counted in dropped_newest().
//   kBlock — stall the bus dispatcher until a subscriber ack frees space
//     (transitive backpressure all the way to query evaluation).
//
// Serialize()/Restore() capture the sequence allocator, every cursor,
// and the retained ring, and ride the engine checkpoint as the manifest
// v4 net-state entry — after a restart subscribers replay from their
// acknowledged cursor with no loss and no sequence reuse.
#ifndef STARDUST_NET_ALERT_HUB_H_
#define STARDUST_NET_ALERT_HUB_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/overload_policy.h"
#include "common/status.h"
#include "net/cursor_store.h"
#include "query/alert_bus.h"

namespace stardust::net {

/// One retained alert with its assigned sequence number.
struct SequencedAlert {
  std::uint64_t seq = 0;
  Alert alert;
};

class AlertHub : public AlertSink {
 public:
  struct Options {
    /// Alerts retained for replay (> 0).
    std::size_t replay_capacity = 1 << 16;
    /// Slow-subscriber behavior once the ring is pinned at capacity.
    OverloadPolicy overflow = OverloadPolicy::kDropOldest;
  };

  AlertHub();
  explicit AlertHub(Options options);

  // --- AlertSink (bus dispatcher thread) --------------------------------
  void OnAlert(const Alert& alert) override;

  // --- Subscriber/cursor API (server thread; internally locked) ---------
  /// Registers (or re-registers) a subscriber and returns the sequence
  /// its replay resumes after: max(resume_after, stored cursor). The
  /// cursor survives disconnects; reconnecting with a fresher
  /// resume_after fast-forwards it.
  std::uint64_t Attach(const std::string& id, std::uint64_t resume_after);
  /// Advances a subscriber's cursor (cumulative ack) and prunes fully
  /// acknowledged entries.
  void Ack(const std::string& id, std::uint64_t seq);
  /// Copies up to `max` retained alerts with seq > after into `out`.
  /// `skipped` (may be null) receives the count of sequence numbers in
  /// (after, first returned) that are no longer retained — the cursor
  /// jump a laggard experiences under the drop policies.
  std::size_t FetchAfter(std::uint64_t after, std::size_t max,
                         std::vector<SequencedAlert>* out,
                         std::uint64_t* skipped) const;

  /// Callback invoked (outside the hub lock) after every stamped alert —
  /// the server points this at its epoll wakeup.
  void SetWakeCallback(std::function<void()> wake);
  /// Unblocks a kBlock OnAlert permanently (shutdown path).
  void RequestStop();

  // --- Checkpoint state (engine/checkpoint.h, manifest v4) --------------
  std::string Serialize() const;
  Status Restore(const std::string& bytes);

  // --- Counters ---------------------------------------------------------
  /// Next unassigned sequence number (stamped alerts are 1..next_seq-1).
  std::uint64_t next_seq() const;
  std::uint64_t stamped() const;
  std::uint64_t dropped_newest() const;
  std::uint64_t dropped_oldest() const;
  std::uint64_t block_waits() const;
  std::size_t retained() const;
  std::size_t replay_high_water() const;
  std::size_t capacity() const { return options_.replay_capacity; }
  OverloadPolicy overflow() const { return options_.overflow; }
  /// Snapshot of every known cursor (id -> acked seq).
  std::vector<std::pair<std::string, std::uint64_t>> Cursors() const;

 private:
  /// Drops every entry all cursors have acknowledged. Caller holds mu_.
  void PruneAckedLocked();

  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable space_;
  std::deque<SequencedAlert> replay_;
  CursorStore cursors_;
  std::uint64_t next_seq_ = 1;
  bool stopping_ = false;

  std::uint64_t stamped_ = 0;
  std::uint64_t dropped_newest_ = 0;
  std::uint64_t dropped_oldest_ = 0;
  std::uint64_t block_waits_ = 0;
  std::size_t replay_high_water_ = 0;

  std::mutex wake_mu_;
  std::function<void()> wake_;
};

}  // namespace stardust::net

#endif  // STARDUST_NET_ALERT_HUB_H_
