#include "sketch/countmin.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stardust {

namespace {

std::size_t CeilPow2(std::size_t n) {
  std::size_t w = 1;
  while (w < n) w <<= 1;
  return w;
}

}  // namespace

CountMin::CountMin(double epsilon, std::size_t depth, std::size_t candidates)
    : epsilon_(epsilon), depth_(depth), capacity_(candidates) {
  SD_CHECK(epsilon > 0.0 && epsilon < 1.0);
  SD_CHECK(depth >= 1 && depth <= 16);
  SD_CHECK(candidates >= 1);
  const double kE = 2.718281828459045;
  width_ = CeilPow2(static_cast<std::size_t>(std::ceil(kE / epsilon)));
  counters_.assign(width_ * depth_, 0);
  row_seeds_.resize(depth_);
  for (std::size_t r = 0; r < depth_; ++r) {
    row_seeds_[r] = SketchHash64(r + 1);
  }
  candidates_.reserve(capacity_);
}

std::uint64_t CountMin::EstimateBits(std::uint64_t bits) const {
  std::uint64_t est = UINT64_MAX;
  const std::uint32_t* row = counters_.data();
  for (std::size_t r = 0; r < depth_; ++r, row += width_) {
    est = std::min<std::uint64_t>(est, row[Index(r, bits)]);
  }
  return est;
}

void CountMin::Add(double value) { AddSpan(&value, 1); }

void CountMin::AddSpan(const double* values, std::size_t n) {
  // The candidate set evolves per arrival, so counter updates and offers
  // run in arrival order; the span advantage is hashing ahead. Each block
  // first computes every value's row slots back-to-back — independent
  // hash chains keep the multiply pipeline full — and prefetches the
  // counter lines, then the in-order update walk finds its loads already
  // in flight instead of serializing hash -> load per value.
  constexpr std::size_t kBlock = 64;
  std::uint64_t bits[kBlock];
  std::size_t idx[kBlock * 16];  // depth_ <= 16 (constructor-checked)
  for (std::size_t at = 0; at < n; at += kBlock) {
    const std::size_t len = std::min(kBlock, n - at);
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t b = SketchValueBits(values[at + i]);
      bits[i] = b;
      std::size_t* slots = idx + i * depth_;
      for (std::size_t r = 0; r < depth_; ++r) {
        slots[r] = Index(r, b);
        __builtin_prefetch(counters_.data() + r * width_ + slots[r], 1, 1);
      }
    }
    total_ += len;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t* slots = idx + i * depth_;
      std::uint64_t est = UINT64_MAX;
      std::uint32_t* row = counters_.data();
      for (std::size_t r = 0; r < depth_; ++r, row += width_) {
        std::uint32_t& c = row[slots[r]];
        if (c != UINT32_MAX) ++c;
        est = std::min<std::uint64_t>(est, c);
      }
      OfferCandidate(bits[i], est);
    }
  }
}

void CountMin::OfferCandidate(std::uint64_t bits, std::uint64_t estimate) {
  // Fast path: with a full set and an estimate at or below the weakest
  // tracked count, nothing can change — a tracked candidate already holds
  // count >= floor >= estimate, and an untracked value cannot displace
  // anyone — so the long tail skips the index lookup entirely.
  if (candidates_.size() == capacity_ && estimate <= candidate_floor_) {
    return;
  }
  auto it = candidate_index_.find(bits);
  if (it != candidate_index_.end()) {
    Candidate& c = candidates_[it->second];
    if (estimate > c.count) {
      const bool was_floor =
          candidates_.size() == capacity_ && c.count == candidate_floor_;
      c.count = estimate;
      if (was_floor) RecomputeCandidateFloor();
    }
    return;
  }
  if (candidates_.size() < capacity_) {
    candidate_index_.emplace(bits, candidates_.size());
    candidates_.push_back({bits, estimate});
    if (candidates_.size() == capacity_) RecomputeCandidateFloor();
    return;
  }
  // Full: only displace a tracked candidate when strictly ahead of the
  // weakest one. Ties keep the incumbent, so the long tail of singleton
  // values takes this early return almost always.
  if (estimate <= candidate_floor_) return;
  std::size_t victim = 0;
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    const Candidate& c = candidates_[i];
    const Candidate& v = candidates_[victim];
    if (c.count < v.count || (c.count == v.count && c.bits < v.bits)) {
      victim = i;
    }
  }
  candidate_index_.erase(candidates_[victim].bits);
  candidate_index_.emplace(bits, victim);
  candidates_[victim] = {bits, estimate};
  RecomputeCandidateFloor();
}

void CountMin::RecomputeCandidateFloor() {
  std::uint64_t floor = UINT64_MAX;
  for (const Candidate& c : candidates_) {
    floor = std::min(floor, c.count);
  }
  candidate_floor_ = floor;
}

std::uint64_t CountMin::EstimateCount(double value) const {
  return EstimateBits(SketchValueBits(value));
}

std::size_t CountMin::HeavyHitterCount(double phi) const {
  const double cutoff = phi * static_cast<double>(total_);
  std::size_t hitters = 0;
  for (const Candidate& c : candidates_) {
    // Re-estimate from the counters: the stored count can be stale for a
    // candidate last touched before its frequency grew via Merge.
    if (static_cast<double>(EstimateBits(c.bits)) >= cutoff) ++hitters;
  }
  return hitters;
}

Status CountMin::Merge(const CountMin& other) {
  if (other.width_ != width_ || other.depth_ != depth_ ||
      other.capacity_ != capacity_) {
    return Status::InvalidArgument("CountMin merge shape mismatch");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const std::uint64_t sum =
        std::uint64_t{counters_[i]} + other.counters_[i];
    counters_[i] = sum > UINT32_MAX ? UINT32_MAX
                                    : static_cast<std::uint32_t>(sum);
  }
  total_ += other.total_;
  // Union the candidate sets, re-estimate everything against the merged
  // counters, and keep the strongest `capacity_` (count desc, bits asc —
  // deterministic regardless of insertion history).
  std::vector<Candidate> merged;
  merged.reserve(candidates_.size() + other.candidates_.size());
  for (const Candidate& c : candidates_) {
    merged.push_back({c.bits, EstimateBits(c.bits)});
  }
  for (const Candidate& c : other.candidates_) {
    if (candidate_index_.find(c.bits) != candidate_index_.end()) continue;
    merged.push_back({c.bits, EstimateBits(c.bits)});
  }
  std::sort(merged.begin(), merged.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.bits < b.bits;
            });
  if (merged.size() > capacity_) merged.resize(capacity_);
  candidates_ = std::move(merged);
  candidate_index_.clear();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    candidate_index_.emplace(candidates_[i].bits, i);
  }
  candidate_floor_ = 0;
  if (candidates_.size() == capacity_) RecomputeCandidateFloor();
  return Status::OK();
}

void CountMin::Clear() {
  std::fill(counters_.begin(), counters_.end(), 0);
  total_ = 0;
  candidates_.clear();
  candidate_index_.clear();
  candidate_floor_ = 0;
}

std::size_t CountMin::MemoryBytes() const {
  return counters_.size() * sizeof(std::uint32_t) +
         capacity_ * sizeof(Candidate);
}

void CountMin::SaveTo(Writer* writer) const {
  writer->U64(width_);
  writer->U64(depth_);
  writer->U64(capacity_);
  writer->U64(total_);
  for (std::uint32_t c : counters_) writer->U32(c);
  writer->U64(candidates_.size());
  for (const Candidate& c : candidates_) {
    writer->U64(c.bits);
    writer->U64(c.count);
  }
}

Status CountMin::RestoreFrom(Reader* reader) {
  std::uint64_t width = 0;
  std::uint64_t depth = 0;
  std::uint64_t capacity = 0;
  SD_RETURN_NOT_OK(reader->U64(&width));
  SD_RETURN_NOT_OK(reader->U64(&depth));
  SD_RETURN_NOT_OK(reader->U64(&capacity));
  if (width != width_ || depth != depth_ || capacity != capacity_) {
    return Status::InvalidArgument("CountMin snapshot shape mismatch");
  }
  SD_RETURN_NOT_OK(reader->U64(&total_));
  for (std::uint32_t& c : counters_) {
    SD_RETURN_NOT_OK(reader->U32(&c));
  }
  std::uint64_t num_candidates = 0;
  SD_RETURN_NOT_OK(reader->U64(&num_candidates));
  if (num_candidates > capacity_) {
    return Status::InvalidArgument("CountMin snapshot candidate overflow");
  }
  candidates_.clear();
  candidate_index_.clear();
  for (std::uint64_t i = 0; i < num_candidates; ++i) {
    Candidate c;
    SD_RETURN_NOT_OK(reader->U64(&c.bits));
    SD_RETURN_NOT_OK(reader->U64(&c.count));
    if (candidate_index_.find(c.bits) != candidate_index_.end()) {
      return Status::InvalidArgument(
          "CountMin snapshot duplicate candidate");
    }
    candidate_index_.emplace(c.bits, candidates_.size());
    candidates_.push_back(c);
  }
  candidate_floor_ = 0;
  if (candidates_.size() == capacity_) RecomputeCandidateFloor();
  return Status::OK();
}

}  // namespace stardust
