// Windowed streaming sketch measures behind one interface.
//
// A SketchMeasure summarizes the last `window` values of one stream into a
// single scalar estimate — approximate distinct count (HyperLogLog),
// heavy-hitter count (CountMin + candidates), or a quantile (P²). None of
// the underlying sketches support deletion, so sliding semantics come from
// a bucket ring: the window is split into `buckets` sub-sketches of
// window/buckets values each; a full bucket rotates out the oldest
// sub-sketch, and Estimate() merges the live buckets. The window therefore
// slides with bucket granularity (a standard tumbling-bucket
// approximation), and every sketch only needs a mergeable union
// (register max for HLL, counter addition for CountMin) or cheap
// re-aggregation (P² markers are not mergeable; the quantile measure
// estimates from the newest full coverage instead, see QuantileMeasure).
//
// Instances live inside FeaturePipeline, one per (stream, registered
// sketch slot); AppendRun is the batched maintenance entry point used by
// the columnar shard path and is state-identical to per-tuple Append.
#ifndef STARDUST_SKETCH_MEASURE_H_
#define STARDUST_SKETCH_MEASURE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "sketch/countmin.h"
#include "sketch/hll.h"
#include "sketch/quantile.h"

namespace stardust {

/// What a sketch measure estimates over its window.
enum class SketchKind : std::uint8_t {
  kDistinct = 0,      // approximate count of distinct values (HLL)
  kHeavyHitters = 1,  // number of values with frequency >= phi (CountMin)
  kQuantile = 2,      // the q-quantile of the window's values (P²)
};

/// Stable lowercase name for a sketch kind ("distinct", ...).
const char* SketchKindName(SketchKind kind);

/// Full description of a sketch measure. Two queries whose configs
/// compare equal share one measure instance per stream (the eval plan
/// groups by config; FeaturePipeline claims instances across plan swaps
/// and checkpoint restores by config equality), so every field that
/// changes the maintained state lives here.
struct SketchConfig {
  SketchKind kind = SketchKind::kDistinct;
  /// Values covered by one estimate.
  std::uint64_t window = 0;
  /// Ring granularity; the window slides in steps of window/buckets.
  std::uint64_t buckets = 4;
  /// kDistinct: HLL precision (2^precision registers), in [4, 18].
  std::uint64_t hll_precision = 12;
  /// kHeavyHitters: CountMin error bound (over-count <= epsilon * window).
  double epsilon = 0.01;
  /// kHeavyHitters: CountMin rows.
  std::uint64_t depth = 4;
  /// kHeavyHitters: frequency fraction that makes a value "heavy".
  double phi = 0.05;
  /// kHeavyHitters: tracked candidate capacity.
  std::uint64_t candidates = 32;
  /// kQuantile: which quantile to estimate, in (0, 1).
  double q = 0.5;

  bool operator==(const SketchConfig&) const = default;

  /// OK when the config describes a constructible measure.
  Status Validate() const;

  /// Fixed 65-byte little-endian layout (used inside QuerySpec v3 records
  /// and the feature-pipeline snapshot).
  void SaveTo(Writer* writer) const;
  Status RestoreFrom(Reader* reader);
};

/// One stream's windowed sketch. Not thread-safe; the owning shard
/// serializes access under its state mutex.
class SketchMeasure {
 public:
  virtual ~SketchMeasure() = default;

  virtual void Append(double value) = 0;
  /// Batched append; must be state-identical to n Append calls.
  virtual void AppendRun(const double* values, std::size_t n) = 0;

  /// True once at least `window` values have been appended (the first
  /// full window of coverage; estimates before that would alarm on
  /// partial data).
  virtual bool Ready() const = 0;
  /// Current windowed estimate. Requires Ready().
  virtual double Estimate() const = 0;

  virtual std::size_t MemoryBytes() const = 0;

  virtual void SaveTo(Writer* writer) const = 0;
  /// Restores into a measure created from the same config.
  virtual Status RestoreFrom(Reader* reader) = 0;

  /// Lifetime maintenance counters, aggregated into engine metrics.
  std::uint64_t appends() const { return appends_; }
  std::uint64_t merges() const { return merges_; }
  std::uint64_t estimate_calls() const { return estimate_calls_; }

 protected:
  std::uint64_t appends_ = 0;
  // merges happen inside const Estimate() (bucket-union on demand).
  mutable std::uint64_t merges_ = 0;
  mutable std::uint64_t estimate_calls_ = 0;
};

/// Builds the measure described by `config`; requires
/// config.Validate().ok().
std::unique_ptr<SketchMeasure> CreateSketchMeasure(
    const SketchConfig& config);

}  // namespace stardust

#endif  // STARDUST_SKETCH_MEASURE_H_
