// CountMin sketch with a tracked candidate set for heavy hitters
// (Cormode & Muthukrishnan, 2005).
//
// depth rows of width counters; each arrival increments one counter per
// row and the point estimate is the row minimum, overestimating the true
// frequency by at most epsilon * N with probability 1 - e^-depth. The
// candidate set is the classic CountMin+heap construction: up to
// `candidates` values currently believed most frequent, updated at add
// time, so heavy-hitter queries never scan the value domain. Counters
// merge by element-wise addition (the windowed bucket ring in
// sketch/measure.h relies on this).
#ifndef STARDUST_SKETCH_COUNTMIN_H_
#define STARDUST_SKETCH_COUNTMIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "sketch/hll.h"

namespace stardust {

class CountMin {
 public:
  /// Width is the smallest power of two >= e / epsilon (rounding up only
  /// tightens the epsilon * N error bound). `depth` rows, up to
  /// `candidates` tracked heavy-hitter candidates.
  CountMin(double epsilon, std::size_t depth, std::size_t candidates);

  void Add(double value);
  /// Adds `n` values. State-identical to n Add calls (the candidate set
  /// evolves deterministically in arrival order); row bases are hoisted
  /// out of the loop.
  void AddSpan(const double* values, std::size_t n);

  /// Point estimate (row minimum) of how often `value` was added. Never
  /// underestimates; overestimates by at most epsilon * total() with
  /// probability 1 - e^-depth.
  std::uint64_t EstimateCount(double value) const;
  /// Values ever added.
  std::uint64_t total() const { return total_; }
  /// Tracked candidates whose current estimate is >= phi * total().
  std::size_t HeavyHitterCount(double phi) const;

  /// Element-wise counter addition + candidate-set union (re-estimated
  /// against the merged counters, truncated back to capacity). `other`
  /// must share this sketch's shape.
  Status Merge(const CountMin& other);
  void Clear();

  std::size_t width() const { return width_; }
  std::size_t depth() const { return depth_; }
  std::size_t MemoryBytes() const;

  void SaveTo(Writer* writer) const;
  /// Restores into a sketch constructed with the same shape.
  Status RestoreFrom(Reader* reader);

 private:
  struct Candidate {
    std::uint64_t bits = 0;   // SketchValueBits of the tracked value
    std::uint64_t count = 0;  // estimate when last touched
  };

  /// Per-row counter index of a value's hash.
  std::size_t Index(std::size_t row, std::uint64_t bits) const {
    return static_cast<std::size_t>(
               SketchHash64(bits ^ row_seeds_[row])) &
           (width_ - 1);
  }
  std::uint64_t EstimateBits(std::uint64_t bits) const;
  void OfferCandidate(std::uint64_t bits, std::uint64_t estimate);
  void RecomputeCandidateFloor();

  double epsilon_;
  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t total_ = 0;
  /// depth_ rows of width_ counters, row-major.
  std::vector<std::uint32_t> counters_;
  std::vector<std::uint64_t> row_seeds_;
  std::vector<Candidate> candidates_;
  std::unordered_map<std::uint64_t, std::size_t> candidate_index_;
  /// Smallest stored candidate count once the set is full; offers at or
  /// below it are rejected without scanning (the hot path for the long
  /// tail of infrequent values).
  std::uint64_t candidate_floor_ = 0;
};

}  // namespace stardust

#endif  // STARDUST_SKETCH_COUNTMIN_H_
