#include "sketch/hll.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace stardust {

namespace {

/// Bias-correction constant alpha_m of the raw HLL estimator.
double AlphaM(std::size_t m) {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(std::size_t precision) : precision_(precision) {
  SD_CHECK(precision_ >= 4 && precision_ <= 18);
  registers_.assign(std::size_t{1} << precision_, 0);
}

void HyperLogLog::AddHash(std::uint64_t hash) {
  const std::size_t index =
      static_cast<std::size_t>(hash >> (64 - precision_));
  // Rank of the first set bit in the remaining 64 - precision bits,
  // 1-based; an all-zero suffix ranks one past the suffix width.
  const std::uint64_t suffix = hash << precision_;
  const std::uint8_t rank = static_cast<std::uint8_t>(
      suffix == 0 ? 65 - precision_ : std::countl_zero(suffix) + 1);
  if (rank > registers_[index]) registers_[index] = rank;
}

void HyperLogLog::AddSpan(const double* values, std::size_t n) {
  // Four independent hash chains per iteration: the splitmix mixing of
  // consecutive values has no cross dependencies, so the unroll keeps the
  // multiply pipeline full instead of serializing on one chain.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t h0 = SketchHash64(SketchValueBits(values[i]));
    const std::uint64_t h1 = SketchHash64(SketchValueBits(values[i + 1]));
    const std::uint64_t h2 = SketchHash64(SketchValueBits(values[i + 2]));
    const std::uint64_t h3 = SketchHash64(SketchValueBits(values[i + 3]));
    AddHash(h0);
    AddHash(h1);
    AddHash(h2);
    AddHash(h3);
  }
  for (; i < n; ++i) {
    AddHash(SketchHash64(SketchValueBits(values[i])));
  }
}

double HyperLogLog::Estimate() const {
  const std::size_t m = registers_.size();
  double sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    zeros += r == 0 ? 1 : 0;
  }
  const double md = static_cast<double>(m);
  const double raw = AlphaM(m) * md * md / sum;
  // Small-range correction: linear counting over the empty registers is
  // far more accurate than the raw estimator below ~2.5m.
  if (raw <= 2.5 * md && zeros > 0) {
    return md * std::log(md / static_cast<double>(zeros));
  }
  return raw;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL merge precision mismatch");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  return Status::OK();
}

void HyperLogLog::Clear() {
  std::memset(registers_.data(), 0, registers_.size());
}

void HyperLogLog::SaveTo(Writer* writer) const {
  writer->U64(precision_);
  writer->Bytes(registers_.data(), registers_.size());
}

Status HyperLogLog::RestoreFrom(Reader* reader) {
  std::uint64_t precision = 0;
  SD_RETURN_NOT_OK(reader->U64(&precision));
  if (precision != precision_) {
    return Status::InvalidArgument("HLL snapshot precision mismatch");
  }
  for (std::uint8_t& r : registers_) {
    SD_RETURN_NOT_OK(reader->U8(&r));
  }
  return Status::OK();
}

}  // namespace stardust
