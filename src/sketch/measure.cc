#include "sketch/measure.h"

#include <algorithm>

#include "common/check.h"

namespace stardust {

namespace {

/// Values per ring bucket: ceil(window / buckets), at least 1, so the
/// `buckets` full buckets always cover >= window values.
std::uint64_t BucketWidth(const SketchConfig& config) {
  const std::uint64_t w =
      (config.window + config.buckets - 1) / config.buckets;
  return w == 0 ? 1 : w;
}

/// Windowed distinct count: ring of buckets+1 HLLs; the newest bucket
/// absorbs arrivals, a full bucket rotates the ring onto the oldest, and
/// the estimate is the union (register max) of every live bucket, so
/// coverage stays in [window, window + bucket_width).
class DistinctMeasure final : public SketchMeasure {
 public:
  explicit DistinctMeasure(const SketchConfig& config)
      : config_(config),
        width_(BucketWidth(config)),
        scratch_(config.hll_precision) {
    ring_.reserve(config.buckets + 1);
    for (std::uint64_t i = 0; i <= config.buckets; ++i) {
      ring_.emplace_back(config.hll_precision);
    }
  }

  void Append(double value) override { AppendRun(&value, 1); }

  void AppendRun(const double* values, std::size_t n) override {
    appends_ += n;
    total_ += n;
    while (n > 0) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(n, width_ - fill_));
      ring_[head_].AddSpan(values, take);
      values += take;
      n -= take;
      fill_ += take;
      if (fill_ == width_) {
        head_ = (head_ + 1) % ring_.size();
        ring_[head_].Clear();
        fill_ = 0;
      }
    }
  }

  bool Ready() const override { return total_ >= config_.window; }

  double Estimate() const override {
    ++estimate_calls_;
    scratch_.Clear();
    for (const HyperLogLog& bucket : ring_) {
      SD_CHECK(scratch_.Merge(bucket).ok());
      ++merges_;
    }
    return scratch_.Estimate();
  }

  std::size_t MemoryBytes() const override {
    return (ring_.size() + 1) * scratch_.MemoryBytes();
  }

  void SaveTo(Writer* writer) const override {
    writer->U64(total_);
    writer->U64(head_);
    writer->U64(fill_);
    writer->U64(appends_);
    writer->U64(merges_);
    writer->U64(estimate_calls_);
    for (const HyperLogLog& bucket : ring_) bucket.SaveTo(writer);
  }

  Status RestoreFrom(Reader* reader) override {
    std::uint64_t head = 0;
    SD_RETURN_NOT_OK(reader->U64(&total_));
    SD_RETURN_NOT_OK(reader->U64(&head));
    SD_RETURN_NOT_OK(reader->U64(&fill_));
    if (head >= ring_.size() || fill_ >= width_) {
      return Status::InvalidArgument("distinct sketch snapshot ring state");
    }
    head_ = static_cast<std::size_t>(head);
    SD_RETURN_NOT_OK(reader->U64(&appends_));
    SD_RETURN_NOT_OK(reader->U64(&merges_));
    SD_RETURN_NOT_OK(reader->U64(&estimate_calls_));
    for (HyperLogLog& bucket : ring_) {
      SD_RETURN_NOT_OK(bucket.RestoreFrom(reader));
    }
    return Status::OK();
  }

 private:
  SketchConfig config_;
  std::uint64_t width_;
  std::vector<HyperLogLog> ring_;
  std::size_t head_ = 0;
  std::uint64_t fill_ = 0;
  std::uint64_t total_ = 0;
  mutable HyperLogLog scratch_;
};

/// Windowed heavy-hitter count: same ring as DistinctMeasure but over
/// CountMin (counters merge by addition), estimating how many values
/// exceed frequency phi within the covered window.
class HeavyHittersMeasure final : public SketchMeasure {
 public:
  explicit HeavyHittersMeasure(const SketchConfig& config)
      : config_(config),
        width_(BucketWidth(config)),
        scratch_(config.epsilon, config.depth, config.candidates) {
    ring_.reserve(config.buckets + 1);
    for (std::uint64_t i = 0; i <= config.buckets; ++i) {
      ring_.emplace_back(config.epsilon, config.depth, config.candidates);
    }
  }

  void Append(double value) override { AppendRun(&value, 1); }

  void AppendRun(const double* values, std::size_t n) override {
    appends_ += n;
    total_ += n;
    while (n > 0) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(n, width_ - fill_));
      ring_[head_].AddSpan(values, take);
      values += take;
      n -= take;
      fill_ += take;
      if (fill_ == width_) {
        head_ = (head_ + 1) % ring_.size();
        ring_[head_].Clear();
        fill_ = 0;
      }
    }
  }

  bool Ready() const override { return total_ >= config_.window; }

  double Estimate() const override {
    ++estimate_calls_;
    scratch_.Clear();
    for (const CountMin& bucket : ring_) {
      SD_CHECK(scratch_.Merge(bucket).ok());
      ++merges_;
    }
    return static_cast<double>(scratch_.HeavyHitterCount(config_.phi));
  }

  std::size_t MemoryBytes() const override {
    return (ring_.size() + 1) * scratch_.MemoryBytes();
  }

  void SaveTo(Writer* writer) const override {
    writer->U64(total_);
    writer->U64(head_);
    writer->U64(fill_);
    writer->U64(appends_);
    writer->U64(merges_);
    writer->U64(estimate_calls_);
    for (const CountMin& bucket : ring_) bucket.SaveTo(writer);
  }

  Status RestoreFrom(Reader* reader) override {
    std::uint64_t head = 0;
    SD_RETURN_NOT_OK(reader->U64(&total_));
    SD_RETURN_NOT_OK(reader->U64(&head));
    SD_RETURN_NOT_OK(reader->U64(&fill_));
    if (head >= ring_.size() || fill_ >= width_) {
      return Status::InvalidArgument(
          "heavy-hitter sketch snapshot ring state");
    }
    head_ = static_cast<std::size_t>(head);
    SD_RETURN_NOT_OK(reader->U64(&appends_));
    SD_RETURN_NOT_OK(reader->U64(&merges_));
    SD_RETURN_NOT_OK(reader->U64(&estimate_calls_));
    for (CountMin& bucket : ring_) {
      SD_RETURN_NOT_OK(bucket.RestoreFrom(reader));
    }
    return Status::OK();
  }

 private:
  SketchConfig config_;
  std::uint64_t width_;
  std::vector<CountMin> ring_;
  std::size_t head_ = 0;
  std::uint64_t fill_ = 0;
  std::uint64_t total_ = 0;
  mutable CountMin scratch_;
};

/// Windowed quantile. P² markers are not mergeable, so instead of a
/// bucket union this keeps buckets+1 staggered estimators that each see
/// every arrival: on each bucket boundary the longest-lived estimator is
/// reset and reborn as the youngest, so the current oldest always covers
/// between window and window + bucket_width trailing values.
class QuantileMeasure final : public SketchMeasure {
 public:
  explicit QuantileMeasure(const SketchConfig& config)
      : config_(config), width_(BucketWidth(config)) {
    ring_.reserve(config.buckets + 1);
    for (std::uint64_t i = 0; i <= config.buckets; ++i) {
      ring_.emplace_back(config.q);
    }
  }

  void Append(double value) override { AppendRun(&value, 1); }

  void AppendRun(const double* values, std::size_t n) override {
    appends_ += n;
    total_ += n;
    while (n > 0) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(n, width_ - fill_));
      // Every staggered estimator sees every value. Single values take
      // the in-place scalar update; real spans keep each estimator's
      // marker state in locals for the whole chunk — both inline the same
      // per-observation update, so the two are state-identical.
      if (take == 1) {
        for (P2Quantile& est : ring_) est.Add(values[0]);
      } else {
        for (P2Quantile& est : ring_) est.AddSpan(values, take);
      }
      values += take;
      n -= take;
      fill_ += take;
      if (fill_ == width_) {
        ring_[oldest_] = P2Quantile(config_.q);
        oldest_ = (oldest_ + 1) % ring_.size();
        fill_ = 0;
      }
    }
  }

  bool Ready() const override { return total_ >= config_.window; }

  double Estimate() const override {
    ++estimate_calls_;
    return ring_[oldest_].Value();
  }

  std::size_t MemoryBytes() const override {
    return ring_.size() * sizeof(P2Quantile);
  }

  void SaveTo(Writer* writer) const override {
    writer->U64(total_);
    writer->U64(oldest_);
    writer->U64(fill_);
    writer->U64(appends_);
    writer->U64(merges_);
    writer->U64(estimate_calls_);
    for (const P2Quantile& est : ring_) est.SaveTo(writer);
  }

  Status RestoreFrom(Reader* reader) override {
    std::uint64_t oldest = 0;
    SD_RETURN_NOT_OK(reader->U64(&total_));
    SD_RETURN_NOT_OK(reader->U64(&oldest));
    SD_RETURN_NOT_OK(reader->U64(&fill_));
    if (oldest >= ring_.size() || fill_ >= width_) {
      return Status::InvalidArgument("quantile sketch snapshot ring state");
    }
    oldest_ = static_cast<std::size_t>(oldest);
    SD_RETURN_NOT_OK(reader->U64(&appends_));
    SD_RETURN_NOT_OK(reader->U64(&merges_));
    SD_RETURN_NOT_OK(reader->U64(&estimate_calls_));
    for (P2Quantile& est : ring_) {
      SD_RETURN_NOT_OK(est.RestoreFrom(reader));
    }
    return Status::OK();
  }

 private:
  SketchConfig config_;
  std::uint64_t width_;
  std::vector<P2Quantile> ring_;
  std::size_t oldest_ = 0;
  std::uint64_t fill_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace

const char* SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kDistinct: return "distinct";
    case SketchKind::kHeavyHitters: return "heavy_hitters";
    case SketchKind::kQuantile: return "quantile";
  }
  return "unknown";
}

Status SketchConfig::Validate() const {
  if (kind != SketchKind::kDistinct && kind != SketchKind::kHeavyHitters &&
      kind != SketchKind::kQuantile) {
    return Status::InvalidArgument("unknown sketch kind");
  }
  if (window < 1) {
    return Status::InvalidArgument("sketch window must be >= 1");
  }
  if (buckets < 1 || buckets > 64) {
    return Status::InvalidArgument("sketch buckets must be in [1, 64]");
  }
  if (hll_precision < 4 || hll_precision > 18) {
    return Status::InvalidArgument("hll_precision must be in [4, 18]");
  }
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("sketch epsilon must be in (0, 1)");
  }
  if (depth < 1 || depth > 16) {
    return Status::InvalidArgument("sketch depth must be in [1, 16]");
  }
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("sketch phi must be in (0, 1]");
  }
  if (candidates < 1 || candidates > 4096) {
    return Status::InvalidArgument(
        "sketch candidates must be in [1, 4096]");
  }
  if (!(q > 0.0) || q >= 1.0) {
    return Status::InvalidArgument("sketch quantile q must be in (0, 1)");
  }
  return Status::OK();
}

void SketchConfig::SaveTo(Writer* writer) const {
  writer->U8(static_cast<std::uint8_t>(kind));
  writer->U64(window);
  writer->U64(buckets);
  writer->U64(hll_precision);
  writer->F64(epsilon);
  writer->U64(depth);
  writer->F64(phi);
  writer->U64(candidates);
  writer->F64(q);
}

Status SketchConfig::RestoreFrom(Reader* reader) {
  std::uint8_t kind_byte = 0;
  SD_RETURN_NOT_OK(reader->U8(&kind_byte));
  if (kind_byte > static_cast<std::uint8_t>(SketchKind::kQuantile)) {
    return Status::InvalidArgument("unknown sketch kind byte");
  }
  kind = static_cast<SketchKind>(kind_byte);
  SD_RETURN_NOT_OK(reader->U64(&window));
  SD_RETURN_NOT_OK(reader->U64(&buckets));
  SD_RETURN_NOT_OK(reader->U64(&hll_precision));
  SD_RETURN_NOT_OK(reader->F64(&epsilon));
  SD_RETURN_NOT_OK(reader->U64(&depth));
  SD_RETURN_NOT_OK(reader->F64(&phi));
  SD_RETURN_NOT_OK(reader->U64(&candidates));
  SD_RETURN_NOT_OK(reader->F64(&q));
  return Status::OK();
}

std::unique_ptr<SketchMeasure> CreateSketchMeasure(
    const SketchConfig& config) {
  SD_CHECK(config.Validate().ok());
  switch (config.kind) {
    case SketchKind::kDistinct:
      return std::make_unique<DistinctMeasure>(config);
    case SketchKind::kHeavyHitters:
      return std::make_unique<HeavyHittersMeasure>(config);
    case SketchKind::kQuantile:
      return std::make_unique<QuantileMeasure>(config);
  }
  return nullptr;
}

}  // namespace stardust
