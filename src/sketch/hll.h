// HyperLogLog approximate distinct counting (Flajolet et al., 2007).
//
// m = 2^precision one-byte registers, each holding the maximum leading-
// zero rank seen in its substream. Standard error is ~1.04/sqrt(m)
// (~0.8% at precision 14); the small-cardinality regime uses linear
// counting over the empty registers, which keeps low distinct counts
// near-exact. Registers merge by element-wise max, which is what the
// windowed bucket ring in sketch/measure.h relies on.
#ifndef STARDUST_SKETCH_HLL_H_
#define STARDUST_SKETCH_HLL_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace stardust {

/// Mixes 64 bits into 64 well-distributed bits (splitmix64 finalizer).
/// Shared by the sketches so a value hashes identically everywhere.
inline std::uint64_t SketchHash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Canonical hash input of a double-valued stream element: the IEEE bit
/// pattern with -0.0 folded onto +0.0 so numerically equal values count
/// as one distinct element.
inline std::uint64_t SketchValueBits(double value) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits == 0x8000000000000000ULL ? 0 : bits;
}

class HyperLogLog {
 public:
  /// `precision` in [4, 18]; the sketch uses 2^precision byte registers.
  explicit HyperLogLog(std::size_t precision);

  void Add(double value) { AddHash(SketchHash64(SketchValueBits(value))); }
  void AddHash(std::uint64_t hash);
  /// Adds `n` values; equivalent to n Add calls (register max is
  /// order-independent), with the hash chain unrolled for ILP.
  void AddSpan(const double* values, std::size_t n);

  /// Approximate number of distinct values added.
  double Estimate() const;

  /// Element-wise register max; `other` must share this precision.
  Status Merge(const HyperLogLog& other);
  void Clear();

  std::size_t precision() const { return precision_; }
  std::size_t num_registers() const { return registers_.size(); }
  std::size_t MemoryBytes() const { return registers_.size(); }

  void SaveTo(Writer* writer) const;
  /// Restores into a sketch constructed with the same precision.
  Status RestoreFrom(Reader* reader);

 private:
  std::size_t precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace stardust

#endif  // STARDUST_SKETCH_HLL_H_
