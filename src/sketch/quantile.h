// P² online quantile estimation (Jain & Chlamtac, CACM 1985).
//
// Estimates a single quantile of a stream in O(1) space and O(1) time per
// observation with five markers whose heights are adjusted by a piecewise
// parabolic (P²) formula. Two consumers: the window advisor keeps three of
// these (q25, q50, q75) for a burst-robust location/scale estimate of each
// level's aggregate distribution, and the sketch measure subsystem wraps
// one per window bucket into a windowed quantile measure
// (sketch/measure.h).
#ifndef STARDUST_SKETCH_QUANTILE_H_
#define STARDUST_SKETCH_QUANTILE_H_

#include <array>
#include <cstdint>

#include "common/serialize.h"
#include "common/status.h"

namespace stardust {

/// Streaming estimator of the p-quantile (0 < p < 1).
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void Add(double value);
  /// Span append, state-identical to n Add calls (both inline the same
  /// per-observation update). Long spans keep the marker state in locals
  /// instead of round-tripping the object per observation.
  void AddSpan(const double* values, std::size_t n);

  std::uint64_t count() const { return count_; }
  /// Current estimate. Exact while count() <= 5; P² approximation after.
  /// Requires count() >= 1.
  double Value() const;

  /// Snapshot support: full marker state, fixed-width little-endian
  /// (common/serialize.h). A restored estimator continues bit-exactly.
  void SaveTo(Writer* writer) const;
  /// Restores into an estimator constructed with the same p.
  Status RestoreFrom(Reader* reader);

 private:
  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights q_i
  std::array<double, 5> positions_{}; // actual positions n_i
  std::array<double, 5> desired_{};   // desired positions n'_i
  std::array<double, 5> increments_{};
};

}  // namespace stardust

#endif  // STARDUST_SKETCH_QUANTILE_H_
