#include "sketch/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stardust {

P2Quantile::P2Quantile(double p) : p_(p) {
  SD_CHECK(p > 0.0 && p < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0};
  increments_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

namespace {

/// Steady-state P² update of one estimator's marker arrays for one
/// observation. Both append paths — scalar Add and span AddSpan —
/// inline this one body, so they run the exact same operation sequence
/// and stay bit-identical.
inline void P2Update(std::array<double, 5>& h, std::array<double, 5>& pos,
                     std::array<double, 5>& des,
                     const std::array<double, 5>& inc, double value) {
  // Which cell does the observation fall into? Marker heights are kept
  // sorted, so the middle case is a branchless rank count — the
  // data-dependent search loop would mispredict on almost every value.
  int k;
  if (value < h[0]) {
    h[0] = value;
    k = 0;
  } else if (value >= h[4]) {
    h[4] = std::max(h[4], value);
    k = 3;
  } else {
    k = (value >= h[1] ? 1 : 0) + (value >= h[2] ? 1 : 0) +
        (value >= h[3] ? 1 : 0);
  }

  for (int j = 1; j < 5; ++j) pos[j] += j > k ? 1.0 : 0.0;
  for (int j = 0; j < 5; ++j) des[j] += inc[j];

  // Adjust the inner markers: piecewise-parabolic when the candidate
  // stays between its neighbors, linear otherwise. At steady state the
  // desired and actual positions drift together, so adjustments are rare
  // and the guarding branch predicts well — keep it a branch.
  for (int j = 1; j <= 3; ++j) {
    const double d = des[j] - pos[j];
    if ((d >= 1.0 && pos[j + 1] - pos[j] > 1.0) ||
        (d <= -1.0 && pos[j - 1] - pos[j] < -1.0)) {
      const int dir = d >= 0.0 ? 1 : -1;
      const double candidate =
          h[j] + dir / (pos[j + 1] - pos[j - 1]) *
                     ((pos[j] - pos[j - 1] + dir) * (h[j + 1] - h[j]) /
                          (pos[j + 1] - pos[j]) +
                      (pos[j + 1] - pos[j] - dir) * (h[j] - h[j - 1]) /
                          (pos[j] - pos[j - 1]));
      if (h[j - 1] < candidate && candidate < h[j + 1]) {
        h[j] = candidate;
      } else {
        h[j] = h[j] + dir * (h[j + dir] - h[j]) / (pos[j + dir] - pos[j]);
      }
      pos[j] += dir;
    }
  }
}

}  // namespace

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
    }
    return;
  }
  ++count_;
  P2Update(heights_, positions_, desired_, increments_, value);
}

void P2Quantile::AddSpan(const double* values, std::size_t n) {
  std::size_t i = 0;
  // Warmup: the first five observations are kept verbatim.
  for (; i < n && count_ < 5; ++i) Add(values[i]);
  if (i == n) return;
  // Steady state. Marker state lives in locals for the whole span, so a
  // long run loads and stores the object once instead of per observation.
  std::array<double, 5> h = heights_;
  std::array<double, 5> pos = positions_;
  std::array<double, 5> des = desired_;
  const std::array<double, 5> inc = increments_;
  count_ += n - i;
  for (; i < n; ++i) {
    P2Update(h, pos, des, inc, values[i]);
  }
  heights_ = h;
  positions_ = pos;
  desired_ = des;
}


double P2Quantile::Value() const {
  SD_DCHECK(count_ >= 1);
  if (count_ >= 5) return heights_[2];
  // Exact small-sample quantile on the sorted prefix.
  std::array<double, 5> sorted{};
  std::copy(heights_.begin(), heights_.begin() + count_, sorted.begin());
  std::sort(sorted.begin(), sorted.begin() + count_);
  const double rank = p_ * static_cast<double>(count_ - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void P2Quantile::SaveTo(Writer* writer) const {
  writer->F64(p_);
  writer->U64(count_);
  for (double h : heights_) writer->F64(h);
  for (double n : positions_) writer->F64(n);
  for (double d : desired_) writer->F64(d);
}

Status P2Quantile::RestoreFrom(Reader* reader) {
  double p = 0.0;
  SD_RETURN_NOT_OK(reader->F64(&p));
  if (p != p_) {
    return Status::InvalidArgument(
        "P2 quantile snapshot was taken for a different quantile");
  }
  SD_RETURN_NOT_OK(reader->U64(&count_));
  for (double& h : heights_) SD_RETURN_NOT_OK(reader->F64(&h));
  for (double& n : positions_) SD_RETURN_NOT_OK(reader->F64(&n));
  for (double& d : desired_) SD_RETURN_NOT_OK(reader->F64(&d));
  return Status::OK();
}

}  // namespace stardust
