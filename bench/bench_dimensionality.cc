// Figures 6(a) and 6(b): effect of the number of coefficients f on
// correlation detection precision and time.
//
// Synthetic random-walk streams, N = 1024, W = 64, 2048 points each;
// StatStream runs at f = 2 with cell 0.1 (its performance degrades with
// f, as the paper notes, so larger f is only run for Stardust);
// Stardust sweeps f in {2, 4, 8, 16}. The distance threshold sweeps up
// to r = 1.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/statstream.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/correlation_monitor.h"
#include "stream/dataset.h"

namespace stardust {
namespace {

constexpr std::size_t kHistory = 1024;    // N
constexpr std::size_t kBasicWindow = 64;  // W

StardustConfig MonitorConfig(std::size_t f) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = f;
  config.base_window = kBasicWindow;
  config.num_levels = 5;  // N = W * 2^4
  config.history = kHistory;
  config.box_capacity = 1;
  config.update_period = kBasicWindow;
  return config;
}

void Run() {
  bench::PrintHeader("Correlation detection vs dimensionality f",
                     "Figures 6(a) and 6(b), Section 6.3.2 "
                     "(N=1024, W=64)");
  const std::size_t m = bench::FullScale() ? 1000 : 250;
  const std::size_t length = 2048;
  const Dataset data = MakeRandomWalkDataset(m, length, bench::BenchSeed());
  const std::vector<double> radii{0.25, 0.5, 0.75, 1.0};

  std::printf("%10s %8s %10s %12s %12s %12s\n", "technique", "r",
              "precision", "candidates", "true", "time(ms)");
  std::vector<double> values(m);
  for (double radius : radii) {
    // StatStream at f = 2, cell 0.1 (paper setting).
    StatStreamOptions ss_options;
    ss_options.history = kHistory;
    ss_options.basic_window = kBasicWindow;
    ss_options.coefficients = 2;
    ss_options.cell_size = 0.1;
    ss_options.radius = radius;
    auto ss = std::move(StatStream::Create(ss_options, m)).value();
    Stopwatch ss_watch;
    ss_watch.Start();
    for (std::size_t t = 0; t < length; ++t) {
      for (std::size_t i = 0; i < m; ++i) values[i] = data.streams[i][t];
      if (!ss->AppendAll(values).ok()) std::abort();
    }
    ss_watch.Stop();
    std::printf("%10s %8.2f %10.3f %12llu %12llu %12lld\n", "StatStream",
                radius, ss->stats().Precision(),
                static_cast<unsigned long long>(ss->stats().candidates),
                static_cast<unsigned long long>(ss->stats().true_pairs),
                static_cast<long long>(ss_watch.ElapsedMillis()));

    for (std::size_t f : {2u, 4u, 8u, 16u}) {
      auto sd = std::move(CorrelationMonitor::Create(MonitorConfig(f), m,
                                                     radius))
                    .value();
      Stopwatch sd_watch;
      sd_watch.Start();
      for (std::size_t t = 0; t < length; ++t) {
        for (std::size_t i = 0; i < m; ++i) values[i] = data.streams[i][t];
        if (!sd->AppendAll(values).ok()) std::abort();
      }
      sd_watch.Stop();
      std::printf("%7s f=%-2zu %6.2f %10.3f %12llu %12llu %12lld\n",
                  "Stardust", f, radius, sd->stats().Precision(),
                  static_cast<unsigned long long>(sd->stats().candidates),
                  static_cast<unsigned long long>(sd->stats().true_pairs),
                  static_cast<long long>(sd_watch.ElapsedMillis()));
    }
  }
  std::printf(
      "\nPaper shape (Figure 6): raising f sharpens Stardust's feature\n"
      "filter — precision rises and detection time falls (fewer false\n"
      "candidates to verify), e.g. paper r=1: precision 0.29 -> 0.74 and\n"
      "time 325.9s -> 135.8s going from f=2 to f=16; StatStream degrades\n"
      "with f and is dominated at thresholds beyond ~0.5.\n");
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
