// bench_net — loopback throughput and delivery latency of the network
// front door (src/net, docs/NETWORK.md).
//
// Two measurements, one JSON line each on stdout (prose goes to stderr
// so `./bench_net > BENCH_NET.json` stays parseable):
//
//  - net_ingest: a grid of producer connections x batch sizes against a
//    4-shard engine over 127.0.0.1. Each connection blocks on the
//    BatchAck round trip per frame, so frames_per_sec is the sustained
//    acked frame rate and appends_per_sec the engine-accepted value
//    rate (the acceptance bar is >= 100k appends/s at 4 shards).
//
//  - net_alert_latency: end-to-end alert delivery. A producer pulses an
//    aggregate-threshold query above/below its threshold; the time from
//    just before the crossing batch is sent until the subscriber reads
//    the Alert frame covers the full path (frame decode, TryPost, shard
//    apply, query eval, AlertBus dispatch, AlertHub sequencing, epoll
//    push, subscriber read). Reported as p50/p90/p99/max microseconds.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "stream/threshold.h"

namespace {

using namespace stardust;

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fleet core shared by both measurements: SUM aggregates so the query
/// window `agg_window` is an indexed resolution, fleet thresholds parked
/// out of range (alerts come from registered queries only).
StardustConfig FleetConfig(std::size_t base, std::size_t agg_window) {
  StardustConfig fleet;
  fleet.transform = TransformKind::kAggregate;
  fleet.aggregate = AggregateKind::kSum;
  fleet.base_window = base;
  fleet.num_levels = 1;
  while ((agg_window / base) >> fleet.num_levels) ++fleet.num_levels;
  fleet.history = std::max(4 * agg_window, base << (fleet.num_levels - 1));
  fleet.box_capacity = 4;
  fleet.update_period = 1;
  return fleet;
}

struct ServerFixture {
  std::unique_ptr<IngestEngine> engine;
  std::unique_ptr<net::NetServer> server;
};

ServerFixture StartFixture(std::size_t num_streams, std::size_t base,
                           std::size_t agg_window) {
  EngineConfig econfig;
  econfig.num_shards = 4;
  econfig.queue_capacity = 1 << 14;
  econfig.max_batch = 256;
  econfig.overload = OverloadPolicy::kBlock;
  std::vector<WindowThreshold> parked = {{base, 1e18}};

  ServerFixture fx;
  auto engine = IngestEngine::Create(FleetConfig(base, agg_window), parked,
                                     num_streams, econfig);
  if (!engine.ok()) {
    std::fprintf(stderr, "bench_net: engine: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  fx.engine = std::move(engine).value();
  auto server = net::NetServer::Start(fx.engine.get());
  if (!server.ok()) {
    std::fprintf(stderr, "bench_net: server: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  fx.server = std::move(server).value();
  return fx;
}

// ---------------------------------------------------------------------------
// net_ingest: connections x batch size grid
// ---------------------------------------------------------------------------

void RunIngestConfig(std::size_t connections, std::size_t batch_values,
                     std::size_t total_values) {
  constexpr std::size_t kStreams = 64;
  ServerFixture fx = StartFixture(kStreams, /*base=*/16, /*agg_window=*/32);
  const std::uint16_t port = fx.server->port();

  const std::size_t batches_per_conn =
      std::max<std::size_t>(1, total_values / (connections * batch_values));
  std::vector<std::uint64_t> accepted(connections, 0);
  std::vector<std::uint64_t> dropped(connections, 0);
  std::vector<std::thread> threads;
  threads.reserve(connections);

  const std::uint64_t t0 = NowNanos();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::ProducerClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        std::fprintf(stderr, "bench_net: connect: %s\n",
                     client.status().ToString().c_str());
        std::exit(1);
      }
      net::BatchMessage batch;
      batch.runs.resize(1);
      batch.runs[0].values.assign(batch_values, 1.0);
      for (std::size_t i = 0; i < batches_per_conn; ++i) {
        // Cycle the target stream so every shard sees traffic.
        batch.runs[0].stream =
            static_cast<std::uint32_t>((i * connections + c) % kStreams);
        auto ack = client.value()->Send(batch);
        if (!ack.ok()) {
          std::fprintf(stderr, "bench_net: send: %s\n",
                       ack.status().ToString().c_str());
          std::exit(1);
        }
        accepted[c] += ack.value().accepted;
        dropped[c] += ack.value().dropped;
      }
      client.value()->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = static_cast<double>(NowNanos() - t0) * 1e-9;

  std::uint64_t total_accepted = 0;
  std::uint64_t total_dropped = 0;
  for (std::size_t c = 0; c < connections; ++c) {
    total_accepted += accepted[c];
    total_dropped += dropped[c];
  }
  const std::uint64_t total_batches =
      static_cast<std::uint64_t>(batches_per_conn) * connections;
  fx.server->Stop();
  fx.engine->Stop();

  std::printf("{\"bench\":\"net_ingest\",\"shards\":4,\"connections\":%zu,"
              "\"batch_values\":%zu,\"batches\":%" PRIu64
              ",\"accepted\":%" PRIu64 ",\"dropped\":%" PRIu64
              ",\"seconds\":%.3f,\"frames_per_sec\":%.0f,"
              "\"appends_per_sec\":%.0f}\n",
              connections, batch_values, total_batches, total_accepted,
              total_dropped, seconds,
              static_cast<double>(total_batches) / seconds,
              static_cast<double>(total_accepted) / seconds);
  std::fprintf(stderr,
               "  ingest conns=%zu batch=%zu: %.0f appends/s "
               "(%.0f frames/s, %.3fs)\n",
               connections, batch_values,
               static_cast<double>(total_accepted) / seconds,
               static_cast<double>(total_batches) / seconds, seconds);
}

// ---------------------------------------------------------------------------
// net_alert_latency: pulse a threshold query, time delivery
// ---------------------------------------------------------------------------

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunAlertLatency(std::size_t rounds) {
  constexpr std::size_t kStreams = 8;
  constexpr std::size_t kWindow = 20;
  ServerFixture fx = StartFixture(kStreams, /*base=*/10, /*agg_window=*/kWindow);
  auto query = fx.engine->RegisterQuery(QuerySpec::Aggregate(kWindow, 100.0));
  if (!query.ok()) {
    std::fprintf(stderr, "bench_net: query: %s\n",
                 query.status().ToString().c_str());
    std::exit(1);
  }
  const std::uint16_t port = fx.server->port();

  auto producer = net::ProducerClient::Connect("127.0.0.1", port);
  auto subscriber =
      net::SubscriberClient::Connect("127.0.0.1", port, "bench-sub");
  if (!producer.ok() || !subscriber.ok()) {
    std::fprintf(stderr, "bench_net: client connect failed\n");
    std::exit(1);
  }

  net::BatchMessage high;
  high.runs.resize(1);
  high.runs[0].stream = 0;
  high.runs[0].values.assign(kWindow, 50.0);
  net::BatchMessage low = high;
  low.runs[0].values.assign(kWindow, 0.0);

  std::vector<double> latencies_us;
  latencies_us.reserve(rounds);
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < rounds; ++i) {
    // The query is edge-triggered: a window of 50s crosses the SUM
    // threshold once; the window of 0s that follows re-arms it.
    high.runs[0].stream = static_cast<std::uint32_t>(i % kStreams);
    low.runs[0].stream = high.runs[0].stream;
    const std::uint64_t t0 = NowNanos();
    auto ack = producer.value()->Send(high);
    if (!ack.ok()) break;
    auto alert = subscriber.value()->Next(/*timeout_ms=*/5000);
    const std::uint64_t t1 = NowNanos();
    if (!alert.ok()) {
      std::fprintf(stderr, "bench_net: round %zu: no alert: %s\n", i,
                   alert.status().ToString().c_str());
      break;
    }
    ++delivered;
    latencies_us.push_back(static_cast<double>(t1 - t0) * 1e-3);
    (void)subscriber.value()->Ack(alert.value().seq);
    if (!producer.value()->Send(low).ok()) break;
  }
  producer.value()->Close();
  subscriber.value()->Close();
  fx.server->Stop();
  fx.engine->Stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  std::printf("{\"bench\":\"net_alert_latency\",\"shards\":4,\"rounds\":%zu,"
              "\"delivered\":%zu,\"p50_us\":%.1f,\"p90_us\":%.1f,"
              "\"p99_us\":%.1f,\"max_us\":%.1f}\n",
              rounds, delivered, Percentile(latencies_us, 50.0),
              Percentile(latencies_us, 90.0), Percentile(latencies_us, 99.0),
              latencies_us.empty() ? 0.0 : latencies_us.back());
  std::fprintf(stderr,
               "  alert delivery over %zu rounds: p50=%.0fus p99=%.0fus\n",
               delivered, Percentile(latencies_us, 50.0),
               Percentile(latencies_us, 99.0));
}

}  // namespace

int main() {
  bench::PrintHeaderStderr(
      "bench_net: loopback front-door throughput and delivery latency",
      "Sec. 6 online monitoring; docs/NETWORK.md acceptance bar");

  const std::size_t total_values =
      bench::FullScale() ? (8u << 20) : (1u << 20);
  for (const std::size_t connections : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t batch_values :
         {std::size_t{16}, std::size_t{256}, std::size_t{4096}}) {
      RunIngestConfig(connections, batch_values, total_values);
    }
  }

  RunAlertLatency(bench::FullScale() ? 1000 : 200);
  return 0;
}
