// Appendix A ablation: Online I (corner enumeration) vs Online II (the
// paper's Θ(f) low/high δ-scheme) vs plain interval arithmetic.
//
// Measures (a) the average output-box volume inflation relative to the
// tightest (corner) box and (b) the per-merge cost, for Haar and D4
// filters across feature dimensionalities. For Haar all three schemes
// coincide (the low-pass taps are non-negative); for D4 the Θ(f) schemes
// trade tightness for speed exactly as Appendix A describes.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "dwt/mbr_transform.h"

namespace stardust {
namespace {

Mbr RandomBox(Rng* rng, std::size_t dims) {
  Point lo(dims), hi(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    lo[d] = rng->NextDouble(-2.0, 2.0);
    hi[d] = lo[d] + rng->NextDouble(0.0, 1.0);
  }
  return Mbr(lo, hi);
}

double MeanExtent(const Mbr& box) {
  return box.Margin() / static_cast<double>(box.dims());
}

void Run() {
  bench::PrintHeader("MBR transform schemes: Online I vs Online II",
                     "Appendix A (Lemma A.2) ablation");
  Rng rng(bench::BenchSeed());
  const int iters = 2000;
  std::printf("%8s %4s %14s %14s %16s %16s %16s\n", "filter", "f",
              "lohi/corner", "intvl/corner", "corner(us/op)",
              "lohi(us/op)", "intvl(us/op)");
  for (const WaveletFilter* filter :
       {&HaarFilter(), &Daubechies4Filter()}) {
    for (std::size_t f : {1u, 2u, 4u, 8u}) {
      const std::size_t in_dims = 2 * f;
      double corner_extent = 0.0, lohi_extent = 0.0, interval_extent = 0.0;
      Stopwatch corner_watch, lohi_watch, interval_watch;
      for (int i = 0; i < iters; ++i) {
        const Mbr box = RandomBox(&rng, in_dims);
        corner_watch.Start();
        const Mbr by_corner = TransformMbrCorners(box, *filter);
        corner_watch.Stop();
        lohi_watch.Start();
        const Mbr by_lohi = TransformMbrLoHi(box, *filter);
        lohi_watch.Stop();
        interval_watch.Start();
        const Mbr by_interval = TransformMbrInterval(box, *filter);
        interval_watch.Stop();
        corner_extent += MeanExtent(by_corner);
        lohi_extent += MeanExtent(by_lohi);
        interval_extent += MeanExtent(by_interval);
      }
      std::printf("%8s %4zu %14.4f %14.4f %16.3f %16.3f %16.3f\n",
                  filter->name.c_str(), f, lohi_extent / corner_extent,
                  interval_extent / corner_extent,
                  corner_watch.ElapsedMicros() / double(iters),
                  lohi_watch.ElapsedMicros() / double(iters),
                  interval_watch.ElapsedMicros() / double(iters));
    }
  }
  std::printf(
      "\nExpected shape: ratios are 1.0000 for Haar (δ = 0); for D4 the\n"
      "Θ(f) schemes are looser (lohi ≥ intvl ≥ 1) but their per-op cost\n"
      "stays flat in f while Online I grows as Θ(2^{2f}).\n");
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
