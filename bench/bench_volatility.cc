// Figures 4(b) and 4(c): volatility (SPREAD) monitoring on packet.dat
// (substitute).
//
// F = SPREAD = MAX - MIN, K = 100, m (the number of query windows, "NW")
// in {50, 60, 70, 80}, Stardust box capacity c in {1, 10, 100, 1000}.
// Reports precision (4b) and the total number of alarms raised (4c) for
// Stardust and SWT.
//
// The paper sets the threshold factor lambda to 0.12 on packet.dat to
// produce "many more alarms than what domain experts are interested in".
// Our synthetic packet trace has different absolute statistics, so lambda
// is calibrated (2.5) to land in the same regime: millions of alarms with
// a meaningful false-alarm gap between the techniques (see
// EXPERIMENTS.md).
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/swt.h"
#include "bench_util.h"
#include "core/aggregate_monitor.h"
#include "stream/dataset.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

constexpr std::size_t kBaseWindow = 100;  // K
constexpr double kLambda = 2.5;

StardustConfig MonitorConfig(std::size_t c) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSpread;
  config.base_window = kBaseWindow;
  config.num_levels = 7;   // b up to 80 < 128
  config.history = 8192;   // covers the largest query window (8000)
  config.box_capacity = c;
  config.update_period = 1;
  return config;
}

void Run() {
  bench::PrintHeader("Volatility detection on packet.dat (packet counts)",
                     "Figures 4(b) and 4(c), Section 6.1.2");
  // Paper: packet.dat has 360,000 points; 8K prefix trains thresholds.
  const std::size_t length = bench::FullScale() ? 360000 : 120000;
  const Dataset data = MakePacketDataset(length, bench::BenchSeed());
  const std::vector<double>& stream = data.streams[0];
  const std::vector<double> training(stream.begin(), stream.begin() + 8000);

  std::printf("%6s %16s %14s %14s %10s\n", "NW", "technique", "alarms",
              "true", "precision");
  for (std::size_t m : {50u, 60u, 70u, 80u}) {
    std::vector<std::size_t> windows;
    for (std::size_t i = 1; i <= m; ++i) windows.push_back(i * kBaseWindow);
    const auto thresholds = TrainThresholds(AggregateKind::kSpread, training,
                                            windows, kLambda);
    for (std::size_t c : {1u, 10u, 100u, 1000u}) {
      auto monitor =
          std::move(AggregateMonitor::Create(MonitorConfig(c), thresholds))
              .value();
      for (double v : stream) {
        const Status st = monitor->Append(v);
        if (!st.ok()) {
          std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
          return;
        }
      }
      const AlarmStats total = monitor->TotalStats();
      std::printf("%6zu %10s c=%-5zu %14llu %14llu %10.4f\n", m, "Stardust",
                  c, static_cast<unsigned long long>(total.candidates),
                  static_cast<unsigned long long>(total.true_alarms),
                  total.Precision());
    }
    auto swt = std::move(SwtMonitor::Create(AggregateKind::kSpread,
                                            kBaseWindow, thresholds))
                   .value();
    for (double v : stream) swt->Append(v);
    const AlarmStats total = swt->TotalStats();
    std::printf("%6zu %16s %14llu %14llu %10.4f\n", m, "SWT",
                static_cast<unsigned long long>(total.candidates),
                static_cast<unsigned long long>(total.true_alarms),
                total.Precision());
  }
  std::printf(
      "\nPaper shape: Stardust outperforms SWT at every NW; it raises far\n"
      "fewer (and far more precise) alarms — e.g. paper NW=60: Stardust\n"
      "c=100 precision 0.89 with 116,976 alarms vs SWT 0.64 with 180,224.\n");
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
