// Shared helpers for the table/figure reproduction harnesses.
#ifndef STARDUST_BENCH_BENCH_UTIL_H_
#define STARDUST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace stardust::bench {

/// True when STARDUST_FULL=1: run at the paper's full data scale instead
/// of the time-bounded default (see EXPERIMENTS.md).
inline bool FullScale() {
  const char* env = std::getenv("STARDUST_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Seed shared by all harnesses; override with STARDUST_SEED.
inline std::uint64_t BenchSeed() {
  const char* env = std::getenv("STARDUST_SEED");
  if (env == nullptr) return 20050405;  // ICDE 2005 :-)
  return std::strtoull(env, nullptr, 10);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=============================================================="
              "==========\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Seed: %llu%s\n",
              static_cast<unsigned long long>(BenchSeed()),
              FullScale() ? "  [FULL SCALE]" : "  [default scale; set "
                                               "STARDUST_FULL=1 for paper "
                                               "scale]");
  std::printf("================================================================"
              "========\n");
}

/// PrintHeader variant for harnesses whose stdout is machine-readable
/// (e.g. bench_ingest emits one JSON line per config): the banner goes to
/// stderr so `./bench_ingest > results.jsonl` stays parseable.
inline void PrintHeaderStderr(const char* title, const char* paper_ref) {
  std::fprintf(stderr,
               "\n========================================================"
               "================\n%s\nReproduces: %s\nSeed: %llu%s\n"
               "========================================================"
               "================\n",
               title, paper_ref,
               static_cast<unsigned long long>(BenchSeed()),
               FullScale() ? "  [FULL SCALE]"
                           : "  [default scale; set STARDUST_FULL=1 for "
                             "paper scale]");
}

}  // namespace stardust::bench

#endif  // STARDUST_BENCH_BENCH_UTIL_H_
