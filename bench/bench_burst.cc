// Figure 4(a): burst detection precision on burst.dat (substitute).
//
// F = SUM, K = 20, m = 50 query windows (20, 40, ..., 1000), thresholds
// trained on a 1K prefix as tau_w = mu + lambda * sigma. We sweep the
// threshold factor lambda and the Stardust box capacity c, and compare the
// precision (true alarms / alarms raised) of Stardust against SWT.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/swt.h"
#include "bench_util.h"
#include "core/aggregate_monitor.h"
#include "stream/dataset.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

constexpr std::size_t kBaseWindow = 20;  // K
constexpr std::size_t kNumWindows = 50;  // m

StardustConfig MonitorConfig(std::size_t c) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = kBaseWindow;
  config.num_levels = 6;  // b = w / K up to 50 < 64
  config.history = 2048;  // covers the largest query window (1000)
  config.box_capacity = c;
  config.update_period = 1;
  return config;
}

void Run() {
  bench::PrintHeader("Burst detection on burst.dat (event counts)",
                     "Figure 4(a), Section 6.1.1");
  // Paper: burst.dat has 9,382 points, first 1K used for training.
  const std::size_t length = 9382;
  const Dataset data = MakeBurstDataset(length, bench::BenchSeed());
  const std::vector<double>& stream = data.streams[0];
  const std::vector<double> training(stream.begin(), stream.begin() + 1000);

  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= kNumWindows; ++i) {
    windows.push_back(i * kBaseWindow);
  }

  const std::vector<std::size_t> capacities{1, 5, 25, 150};
  std::printf("%8s %14s %12s %12s %10s\n", "lambda", "technique", "alarms",
              "true", "precision");
  for (double lambda : {6.0, 8.0, 10.0, 12.0, 14.0, 16.0}) {
    const auto thresholds = TrainThresholds(AggregateKind::kSum, training,
                                            windows, lambda);
    for (std::size_t c : capacities) {
      auto monitor =
          std::move(AggregateMonitor::Create(MonitorConfig(c), thresholds))
              .value();
      for (double v : stream) {
        const Status st = monitor->Append(v);
        if (!st.ok()) {
          std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
          return;
        }
      }
      const AlarmStats total = monitor->TotalStats();
      std::printf("%8.0f %10s c=%-3zu %12llu %12llu %10.3f\n", lambda,
                  "Stardust", c,
                  static_cast<unsigned long long>(total.candidates),
                  static_cast<unsigned long long>(total.true_alarms),
                  total.Precision());
    }
    auto swt = std::move(SwtMonitor::Create(AggregateKind::kSum, kBaseWindow,
                                            thresholds))
                   .value();
    for (double v : stream) swt->Append(v);
    const AlarmStats total = swt->TotalStats();
    std::printf("%8.0f %14s %12llu %12llu %10.3f\n", lambda, "SWT",
                static_cast<unsigned long long>(total.candidates),
                static_cast<unsigned long long>(total.true_alarms),
                total.Precision());
  }
  std::printf(
      "\nPaper shape: Stardust c=1 is exact (precision 1.0); precision\n"
      "degrades gracefully with c; every Stardust capacity except the\n"
      "degenerate c=150 beats SWT, and the gap widens with lambda\n"
      "(e.g. paper: c=25 -> 0.82 vs SWT 0.57 at lambda=10).\n");
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
