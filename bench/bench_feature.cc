// Compute-once feature pipeline vs per-consumer recompute.
//
// Measures the per-batch evaluation cost of the mixed query workload
// (three aggregate windows + one correlation query) in two modes over
// identical data and shard partitions:
//
//   shared     The refactored path: one FeaturePipeline per shard keeps
//              sliding trackers for the plan's aggregate window set and
//              caches z-normalized DWT features in the FeatureStore, so
//              each batch evaluation is O(1) tracker reads and each
//              correlator round is store hits.
//   recompute  The pre-refactor path: every aggregate query re-sums its
//              raw window from the ring per batch, and every correlator
//              round re-extracts and re-z-normalizes the raw window per
//              stream.
//
// Both modes run single-threaded (shards are partitions, evaluated
// round-robin) so the numbers isolate the per-batch work rather than
// thread scheduling. One JSON line per (mode, shards) on stdout plus a
// speedup line per shard count (prose goes to stderr):
//
//   $ ./build/bench/bench_feature > BENCH_FEATURE.json
//
// STARDUST_FULL=1 scales the step count up 8x.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/aligned.h"
#include "common/kernels.h"
#include "core/feature_store.h"
#include "core/fleet_monitor.h"
#include "core/snapshot.h"
#include "core/stardust.h"
#include "engine/feature_pipeline.h"
#include "query/eval_plan.h"
#include "query/registry.h"
#include "stream/threshold.h"
#include "transform/feature.h"

namespace {

using namespace stardust;

constexpr std::size_t kStreams = 64;
constexpr std::size_t kBurstPeriod = 256;
constexpr std::size_t kBurstLen = 64;
constexpr double kLow = 1.0;
constexpr double kHigh = 9.0;
constexpr std::size_t kCorrPeriod = 16;  // correlation core update period

// Same phase-shifted square wave as bench_query: realistic aggregate
// motion and genuinely correlated neighbor streams.
double ValueAt(std::size_t stream, std::size_t t) {
  const std::size_t phase = (t + 16 * stream) % kBurstPeriod;
  return phase < kBurstLen ? kHigh : kLow;
}

StardustConfig FleetConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 16;
  config.num_levels = 5;  // windows 16..256
  config.history = 256;
  config.box_capacity = 4;
  config.update_period = 1;
  return config;
}

StardustConfig CorrelationCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = kCorrPeriod;
  config.num_levels = 2;
  config.history = 32;
  config.box_capacity = 1;
  config.update_period = kCorrPeriod;  // batch algorithm, T == W
  return config;
}

const std::vector<std::size_t>& AggregateWindows() {
  static const std::vector<std::size_t> windows{16, 64, 256};
  return windows;
}

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One shard's partition: `count` streams starting at global id `begin`
/// (contiguous partition, like the engine's stream->shard map).
struct Partition {
  std::size_t begin = 0;
  std::size_t count = 0;
};

std::vector<Partition> MakePartitions(std::size_t shards) {
  std::vector<Partition> parts(shards);
  const std::size_t base = kStreams / shards;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    parts[i].begin = begin;
    parts[i].count = base + (i < kStreams % shards ? 1 : 0);
    begin += parts[i].count;
  }
  return parts;
}

struct RunResult {
  std::uint64_t appends = 0;
  std::uint64_t maintain_ns = 0;
  std::uint64_t eval_ns = 0;
  std::uint64_t agg_evals = 0;
  std::uint64_t corr_rounds = 0;
  std::uint64_t features_served = 0;
  std::uint64_t znorm_computes = 0;
  std::uint64_t store_hits = 0;
  double checksum = 0.0;  // defeats dead-code elimination
};

/// Shared-store mode: FeaturePipeline per shard, plan-driven trackers,
/// correlator rounds served from the FeatureStore.
RunResult RunShared(std::size_t shards, std::size_t steps) {
  const std::vector<Partition> parts = MakePartitions(shards);
  const StardustConfig fleet_config = FleetConfig();
  const StardustConfig corr_config = CorrelationCoreConfig();

  QueryConfig qconfig;
  qconfig.enable_correlation = true;
  qconfig.correlation = corr_config;
  QueryRegistry registry(fleet_config, qconfig);
  for (std::size_t window : AggregateWindows()) {
    if (!registry.Register(QuerySpec::Aggregate(window, 1e18)).ok()) {
      std::abort();
    }
  }
  if (!registry.Register(QuerySpec::Correlation(0.5, 0)).ok()) std::abort();
  PlanContext ctx;
  ctx.fleet = &fleet_config;
  ctx.correlation = &corr_config;
  std::shared_ptr<const EvalPlan> plan =
      CompileEvalPlan(*registry.snapshot(), registry.version(), ctx);

  std::vector<std::unique_ptr<FleetAggregateMonitor>> fleets;
  std::vector<std::unique_ptr<FeaturePipeline>> pipelines;
  std::vector<std::vector<StreamId>> touched(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto fleet = FleetAggregateMonitor::Create(
        fleet_config, {{16, 1e18}}, parts[i].count);
    if (!fleet.ok()) std::abort();
    fleets.push_back(std::move(fleet.value()));
    auto corr = Stardust::Create(corr_config);
    if (!corr.ok()) std::abort();
    for (std::size_t s = 0; s < parts[i].count; ++s) {
      corr.value()->AddStream();
      touched[i].push_back(static_cast<StreamId>(s));
    }
    pipelines.push_back(std::make_unique<FeaturePipeline>(
        nullptr, std::move(corr.value()), parts[i].count));
    pipelines.back()->AdoptPlan(*plan, *fleets.back());
  }

  RunResult result;
  const std::size_t num_slots = plan->aggregate_windows.size();
  FeatureStore::View view;
  for (std::size_t t = 0; t < steps; ++t) {
    std::uint64_t t0 = NowNanos();
    for (std::size_t i = 0; i < shards; ++i) {
      for (std::size_t s = 0; s < parts[i].count; ++s) {
        const double value = ValueAt(parts[i].begin + s, t);
        if (!fleets[i]->Append(static_cast<StreamId>(s), value).ok()) {
          std::abort();
        }
        if (!pipelines[i]->Append(static_cast<StreamId>(s), value).ok()) {
          std::abort();
        }
        ++result.appends;
      }
      pipelines[i]->FinishBatch(touched[i]);
    }
    std::uint64_t t1 = NowNanos();
    result.maintain_ns += t1 - t0;

    // Per-batch aggregate evaluation: O(1) tracker reads.
    for (std::size_t i = 0; i < shards; ++i) {
      for (std::size_t s = 0; s < parts[i].count; ++s) {
        for (std::size_t slot = 0; slot < num_slots; ++slot) {
          if (pipelines[i]->TrackerReady(static_cast<StreamId>(s), slot)) {
            result.checksum +=
                pipelines[i]->TrackerValue(static_cast<StreamId>(s), slot);
          }
          ++result.agg_evals;
        }
      }
    }
    // Correlator round at every aligned feature time: store hits.
    if (t % kCorrPeriod == kCorrPeriod - 1) {
      ++result.corr_rounds;
      for (std::size_t i = 0; i < shards; ++i) {
        for (std::size_t s = 0; s < parts[i].count; ++s) {
          if (pipelines[i]->CorrelationFeature(0, static_cast<StreamId>(s),
                                               t, &view)) {
            result.checksum += view.znormed[0] + view.feature[0];
            ++result.features_served;
          }
        }
      }
    }
    result.eval_ns += NowNanos() - t1;
  }
  for (std::size_t i = 0; i < shards; ++i) {
    const FeaturePipeline::Counters c = pipelines[i]->counters();
    result.znorm_computes += c.znorm_computes;
    result.store_hits += c.store_hits;
  }
  return result;
}

/// Per-consumer recompute mode: the same cores and data, but every
/// aggregate query re-sums its raw window per batch and every correlator
/// round re-z-normalizes from raw history (the pre-refactor cost model).
RunResult RunRecompute(std::size_t shards, std::size_t steps) {
  const std::vector<Partition> parts = MakePartitions(shards);
  const StardustConfig fleet_config = FleetConfig();
  const StardustConfig corr_config = CorrelationCoreConfig();

  std::vector<std::unique_ptr<FleetAggregateMonitor>> fleets;
  std::vector<std::unique_ptr<Stardust>> corr_cores;
  for (std::size_t i = 0; i < shards; ++i) {
    auto fleet = FleetAggregateMonitor::Create(
        fleet_config, {{16, 1e18}}, parts[i].count);
    if (!fleet.ok()) std::abort();
    fleets.push_back(std::move(fleet.value()));
    auto corr = Stardust::Create(corr_config);
    if (!corr.ok()) std::abort();
    for (std::size_t s = 0; s < parts[i].count; ++s) {
      corr.value()->AddStream();
    }
    corr_cores.push_back(std::move(corr.value()));
  }

  RunResult result;
  std::vector<double> window_scratch;
  std::vector<double> znorm_scratch;
  for (std::size_t t = 0; t < steps; ++t) {
    std::uint64_t t0 = NowNanos();
    for (std::size_t i = 0; i < shards; ++i) {
      for (std::size_t s = 0; s < parts[i].count; ++s) {
        const double value = ValueAt(parts[i].begin + s, t);
        if (!fleets[i]->Append(static_cast<StreamId>(s), value).ok()) {
          std::abort();
        }
        if (!corr_cores[i]->Append(static_cast<StreamId>(s), value).ok()) {
          std::abort();
        }
        ++result.appends;
      }
    }
    std::uint64_t t1 = NowNanos();
    result.maintain_ns += t1 - t0;

    // Per-batch aggregate evaluation: O(window) raw re-sum per query.
    for (std::size_t i = 0; i < shards; ++i) {
      for (std::size_t s = 0; s < parts[i].count; ++s) {
        const StreamSummarizer& summarizer =
            fleets[i]->monitor(static_cast<StreamId>(s)).stardust()
                .summarizer(0);
        for (std::size_t window : AggregateWindows()) {
          if (t + 1 >= window &&
              summarizer.GetWindow(t, window, &window_scratch).ok()) {
            double sum = 0.0;
            for (double v : window_scratch) sum += v;
            result.checksum += sum;
          }
          ++result.agg_evals;
        }
      }
    }
    // Correlator round: re-extract and re-z-normalize per stream.
    if (t % kCorrPeriod == kCorrPeriod - 1) {
      ++result.corr_rounds;
      for (std::size_t i = 0; i < shards; ++i) {
        for (std::size_t s = 0; s < parts[i].count; ++s) {
          const StreamSummarizer& summarizer =
              corr_cores[i]->summarizer(static_cast<StreamId>(s));
          const FeatureBox* box = summarizer.thread(0).Find(t);
          if (box == nullptr) continue;
          const std::size_t window = corr_config.LevelWindow(0);
          if (!summarizer.GetWindow(t, window, &window_scratch).ok()) {
            continue;
          }
          znorm_scratch.resize(window);
          double mean = 0.0;
          double norm2 = 0.0;
          ZNormalizeTo(window_scratch.data(), window, znorm_scratch.data(),
                       &mean, &norm2);
          ++result.znorm_computes;
          result.checksum += znorm_scratch[0] + box->extent.lo()[0];
          ++result.features_served;
        }
      }
    }
    result.eval_ns += NowNanos() - t1;
  }
  return result;
}

/// Batched-vs-scalar maintenance at one shard of kStreams streams: the
/// same per-stream value sequences and the same batch cadence (one
/// FinishBatch per `run_len` steps — the engine's ApplyBatch shape), with
/// state updated either per value (the scalar seed path) or via the
/// columnar AppendRun kernels. Returns the maintain time plus an FNV-1a
/// digest of the serialized fleet + pipeline state so the two modes can
/// be asserted bit-identical.
struct MaintainResult {
  std::uint64_t appends = 0;
  std::uint64_t maintain_ns = 0;
  std::uint64_t state_digest = 0;
};

std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

MaintainResult RunMaintain(bool batched, std::size_t run_len,
                           std::size_t steps) {
  const StardustConfig fleet_config = FleetConfig();
  const StardustConfig corr_config = CorrelationCoreConfig();

  QueryConfig qconfig;
  qconfig.enable_correlation = true;
  qconfig.correlation = corr_config;
  QueryRegistry registry(fleet_config, qconfig);
  for (std::size_t window : AggregateWindows()) {
    if (!registry.Register(QuerySpec::Aggregate(window, 1e18)).ok()) {
      std::abort();
    }
  }
  if (!registry.Register(QuerySpec::Correlation(0.5, 0)).ok()) std::abort();
  PlanContext ctx;
  ctx.fleet = &fleet_config;
  ctx.correlation = &corr_config;
  std::shared_ptr<const EvalPlan> plan =
      CompileEvalPlan(*registry.snapshot(), registry.version(), ctx);

  auto fleet_or =
      FleetAggregateMonitor::Create(fleet_config, {{16, 1e18}}, kStreams);
  if (!fleet_or.ok()) std::abort();
  std::unique_ptr<FleetAggregateMonitor> fleet = std::move(fleet_or.value());
  auto corr = Stardust::Create(corr_config);
  if (!corr.ok()) std::abort();
  std::vector<StreamId> touched;
  for (std::size_t s = 0; s < kStreams; ++s) {
    corr.value()->AddStream();
    touched.push_back(static_cast<StreamId>(s));
  }
  FeaturePipeline pipeline(nullptr, std::move(corr.value()), kStreams);
  pipeline.AdoptPlan(*plan, *fleet);

  MaintainResult result;
  std::vector<double> run(run_len);
  for (std::size_t t = 0; t < steps; t += run_len) {
    const std::size_t len = std::min(run_len, steps - t);
    const std::uint64_t t0 = NowNanos();
    for (std::size_t s = 0; s < kStreams; ++s) {
      for (std::size_t k = 0; k < len; ++k) run[k] = ValueAt(s, t + k);
      const StreamId stream = static_cast<StreamId>(s);
      if (batched) {
        if (!fleet->AppendRun(stream, run.data(), len).ok()) std::abort();
        if (!pipeline.AppendRun(stream, run.data(), len).ok()) std::abort();
      } else {
        for (std::size_t k = 0; k < len; ++k) {
          if (!fleet->Append(stream, run[k]).ok()) std::abort();
          if (!pipeline.Append(stream, run[k]).ok()) std::abort();
        }
      }
      result.appends += len;
    }
    pipeline.FinishBatch(touched);
    result.maintain_ns += NowNanos() - t0;
  }
  result.state_digest =
      Fnv1a(SerializeFleetSnapshot(*fleet) + pipeline.Serialize());
  return result;
}

// Per-kernel dispatch-layer microbench: ns/element for every maintenance
// kernel under every backend this CPU supports, across the run lengths the
// engine actually sees (a base window, a level window, a large exact
// window). Backends are forced in-process (kernels::SetBackend); the
// startup selection is restored afterwards. A `checksum` accumulator is
// folded into every timed call so the kernel work cannot be dead-code
// eliminated.
void RunKernelMicrobench() {
  const kernels::Backend entry_backend = kernels::SelectedBackend();
  const std::size_t kLens[] = {8, 64, 512};
  constexpr int kMicroReps = 3;
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  if (kernels::MaxSupportedBackend() >= kernels::Backend::kAvx2) {
    backends.push_back(kernels::Backend::kAvx2);
  }
  if (kernels::MaxSupportedBackend() >= kernels::Backend::kAvx512) {
    backends.push_back(kernels::Backend::kAvx512);
  }
  AlignedVector<double> in(1024), out(1024), out2(1024);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(static_cast<double>(i) * 0.37) * 10.0;
  }
  double checksum = 0.0;
  struct Kernel {
    const char* name;
    // Runs the kernel once over `n` elements and returns a result value
    // folded into the checksum.
    double (*call)(const double* in, std::size_t n, double* out,
                   double* out2);
  };
  const Kernel kKernels[] = {
      {"haar_down",
       [](const double* v, std::size_t n, double* o, double*) {
         kernels::HaarDown(v, n / 2, 0.70710678118654752, o);
         return o[0];
       }},
      {"haar_step",
       [](const double* v, std::size_t n, double* o, double* o2) {
         kernels::HaarStep(v, n / 2, 0.70710678118654752, o, o2);
         return o[0] + o2[0];
       }},
      {"reduce_max",
       [](const double* v, std::size_t n, double*, double*) {
         return kernels::ReduceMax(v, n);
       }},
      {"reduce_min",
       [](const double* v, std::size_t n, double*, double*) {
         return kernels::ReduceMin(v, n);
       }},
      {"reduce_spread",
       [](const double* v, std::size_t n, double*, double*) {
         double mx, mn;
         kernels::ReduceSpread(v, n, &mx, &mn);
         return mx - mn;
       }},
      {"reduce_sum",
       [](const double* v, std::size_t n, double*, double*) {
         return kernels::ReduceSum(v, n);
       }},
      {"znorm_apply",
       [](const double* v, std::size_t n, double* o, double*) {
         kernels::ZNormApply(v, n, 0.25, 1.75, o);
         return o[n - 1];
       }},
      {"znorm_moments",
       [](const double* v, std::size_t n, double*, double*) {
         double mean, norm2;
         kernels::ZNormMoments(v, n, &mean, &norm2);
         return mean + norm2;
       }},
      {"copy",
       [](const double* v, std::size_t n, double* o, double*) {
         kernels::Copy(v, n, o);
         return o[n - 1];
       }},
  };
  for (kernels::Backend backend : backends) {
    if (!kernels::SetBackend(kernels::BackendName(backend))) std::abort();
    for (const Kernel& kernel : kKernels) {
      for (std::size_t n : kLens) {
        // Scale iterations so every (kernel, n) cell measures a similar
        // total element count (~2M), keeping cell noise comparable.
        const std::size_t iters = (1u << 21) / n;
        std::uint64_t best_ns = ~0ull;
        for (int rep = 0; rep < kMicroReps; ++rep) {
          const std::uint64_t t0 = NowNanos();
          for (std::size_t it = 0; it < iters; ++it) {
            checksum += kernel.call(in.data(), n, out.data(), out2.data());
          }
          const std::uint64_t dt = NowNanos() - t0;
          if (dt < best_ns) best_ns = dt;
        }
        const double ns_per_element =
            static_cast<double>(best_ns) /
            static_cast<double>(iters * n);
        std::printf(
            "{\"bench\":\"kernel_micro\",\"kernel\":\"%s\","
            "\"backend\":\"%s\",\"n\":%zu,\"ns_per_element\":%.3f}\n",
            kernel.name, kernels::BackendName(backend), n, ns_per_element);
      }
    }
  }
  // Restore whatever the process started under (STARDUST_KERNELS may have
  // forced a tier for the whole bench run).
  if (!kernels::SetBackend(kernels::BackendName(entry_backend))) {
    std::abort();
  }
  if (checksum == 12345.6789) std::fprintf(stderr, "(unreachable)\n");
}

void EmitLine(const char* mode, std::size_t shards, std::size_t steps,
              const RunResult& r) {
  const double seconds =
      static_cast<double>(r.maintain_ns + r.eval_ns) * 1e-9;
  const double features_per_sec =
      r.eval_ns > 0 ? static_cast<double>(r.features_served) /
                          (static_cast<double>(r.eval_ns) * 1e-9)
                    : 0.0;
  std::printf(
      "{\"bench\":\"feature\",\"mode\":\"%s\",\"shards\":%zu,"
      "\"streams\":%zu,\"steps\":%zu,\"appends\":%" PRIu64
      ",\"seconds\":%.4f,\"maintain_ns_per_append\":%.1f,"
      "\"eval_ns_per_batch\":%.0f,\"agg_evals\":%" PRIu64
      ",\"corr_rounds\":%" PRIu64 ",\"features_served\":%" PRIu64
      ",\"features_per_sec\":%.0f,\"znorm_computes\":%" PRIu64
      ",\"store_hits\":%" PRIu64 ",\"checksum\":%.3f}\n",
      mode, shards, kStreams, steps, r.appends, seconds,
      static_cast<double>(r.maintain_ns) /
          static_cast<double>(r.appends > 0 ? r.appends : 1),
      static_cast<double>(r.eval_ns) /
          static_cast<double>(steps > 0 ? steps : 1),
      r.agg_evals, r.corr_rounds, r.features_served, features_per_sec,
      r.znorm_computes, r.store_hits, r.checksum);
}

}  // namespace

int main() {
  bench::PrintHeaderStderr(
      "bench_feature: shared FeatureStore vs per-consumer recompute",
      "unified framework claim — compute features once, serve every "
      "query class (Sec. 2, docs/FEATURES.md)");

  const std::size_t steps = bench::FullScale() ? 32768 : 4096;

  // Batched columnar maintenance vs the scalar seed path, one shard of
  // kStreams streams, same batch cadence. State digests must agree: the
  // batched kernels are an optimization, not an approximation. Each mode
  // keeps the fastest of 5 runs so scheduler noise on loaded hosts
  // does not masquerade as a kernel-speed difference.
  constexpr int kReps = 5;
  const auto best_of = [steps](bool batched_mode, std::size_t run_len) {
    MaintainResult best = RunMaintain(batched_mode, run_len, steps);
    for (int rep = 1; rep < kReps; ++rep) {
      MaintainResult r = RunMaintain(batched_mode, run_len, steps);
      if (r.state_digest != best.state_digest) {
        std::fprintf(stderr, "FATAL: digest unstable across reps\n");
        std::exit(1);
      }
      if (r.maintain_ns < best.maintain_ns) best = r;
    }
    return best;
  };
  for (std::size_t run_len : {std::size_t{1}, std::size_t{8},
                              std::size_t{64}, std::size_t{256}}) {
    const MaintainResult scalar = best_of(false, run_len);
    const MaintainResult batched = best_of(true, run_len);
    if (scalar.state_digest != batched.state_digest) {
      std::fprintf(stderr,
                   "FATAL: batched state digest diverged at run=%zu\n",
                   run_len);
      return 1;
    }
    const auto per_append = [](const MaintainResult& r) {
      return static_cast<double>(r.maintain_ns) /
             static_cast<double>(r.appends > 0 ? r.appends : 1);
    };
    const double speedup = per_append(batched) > 0.0
                               ? per_append(scalar) / per_append(batched)
                               : 0.0;
    std::printf(
        "{\"bench\":\"feature_maintain\",\"run\":%zu,\"streams\":%zu,"
        "\"steps\":%zu,\"kernel_backend\":\"%s\","
        "\"scalar_maintain_ns_per_append\":%.1f,"
        "\"batched_maintain_ns_per_append\":%.1f,"
        "\"maintain_speedup\":%.2f,\"state_digest\":%" PRIu64 "}\n",
        run_len, kStreams, steps,
        kernels::BackendName(kernels::SelectedBackend()), per_append(scalar),
        per_append(batched), speedup, batched.state_digest);
    std::fprintf(stderr, "run=%zu maintain %.1f -> %.1f ns/append (%.2fx)\n",
                 run_len, per_append(scalar), per_append(batched), speedup);
  }

  RunKernelMicrobench();

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    const RunResult shared = RunShared(shards, steps);
    const RunResult recompute = RunRecompute(shards, steps);
    EmitLine("shared", shards, steps, shared);
    EmitLine("recompute", shards, steps, recompute);
    const double speedup =
        shared.eval_ns > 0
            ? static_cast<double>(recompute.eval_ns) /
                  static_cast<double>(shared.eval_ns)
            : 0.0;
    std::printf(
        "{\"bench\":\"feature_speedup\",\"shards\":%zu,"
        "\"eval_speedup\":%.2f}\n",
        shards, speedup);
    std::fprintf(stderr, "shards=%zu eval speedup %.2fx\n", shards, speedup);
  }
  return 0;
}
