// Micro-benchmarks (google-benchmark): per-item maintenance cost as a
// function of the paper's tuning knobs (Theorem 4.3), plus the substrate
// kernels (R*-tree operations, Haar transforms, sliding trackers).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/correlation_monitor.h"
#include "core/stardust.h"
#include "core/surprise_monitor.h"
#include "dwt/haar.h"
#include "dwt/incremental.h"
#include "rtree/rtree.h"
#include "stream/random_walk.h"
#include "transform/sliding_tracker.h"

namespace stardust {
namespace {

// ---------------------------------------------------------------------------
// Per-item maintenance: incremental (Θ(f) per level) vs exact recompute
// (Θ(w_j) per level, the MR-Index cost the paper improves on).
// ---------------------------------------------------------------------------

void BM_AppendIncrementalDwt(benchmark::State& state) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = static_cast<std::size_t>(state.range(0));
  config.r_max = 110.0;
  config.base_window = 64;
  config.num_levels = 5;
  config.history = 2048;
  config.box_capacity = static_cast<std::size_t>(state.range(1));
  config.update_period = 1;
  StreamSummarizer summarizer(config);
  RandomWalkSource source(1);
  for (int i = 0; i < 2048; ++i) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  for (auto _ : state) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendIncrementalDwt)
    ->ArgsProduct({{2, 4, 8, 16}, {1, 64}})
    ->ArgNames({"f", "c"});

void BM_AppendExactLevels(benchmark::State& state) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 2;
  config.r_max = 110.0;
  config.base_window = 64;
  config.num_levels = static_cast<std::size_t>(state.range(0));
  config.history = 64 << (config.num_levels - 1);
  config.box_capacity = 64;
  config.update_period = 1;
  config.exact_levels = true;  // the MR-Index configuration
  StreamSummarizer summarizer(config);
  RandomWalkSource source(2);
  for (std::size_t i = 0; i < config.history; ++i) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  for (auto _ : state) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendExactLevels)->Arg(3)->Arg(4)->Arg(5)->ArgName("levels");

void BM_AppendBatchDwt(benchmark::State& state) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 2;
  config.base_window = 64;
  config.num_levels = 5;
  config.history = 1024;
  config.box_capacity = 1;
  config.update_period = 64;
  StreamSummarizer summarizer(config);
  RandomWalkSource source(3);
  for (int i = 0; i < 1024; ++i) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  for (auto _ : state) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendBatchDwt);

void BM_AppendAggregate(benchmark::State& state) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 20;
  config.num_levels = 6;
  config.history = 2048;
  config.box_capacity = static_cast<std::size_t>(state.range(0));
  config.update_period = 1;
  StreamSummarizer summarizer(config);
  RandomWalkSource source(4);
  for (int i = 0; i < 2048; ++i) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  for (auto _ : state) {
    summarizer.Append(source.Next(), nullptr, nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendAggregate)->Arg(1)->Arg(25)->Arg(150)->ArgName("c");

// ---------------------------------------------------------------------------
// Substrate kernels.
// ---------------------------------------------------------------------------

void BM_RTreeInsertDelete(benchmark::State& state) {
  RTree tree(2, RTreeOptions{.max_entries =
                                 static_cast<std::size_t>(state.range(0))});
  Rng rng(5);
  std::vector<std::pair<Mbr, RecordId>> live;
  RecordId next = 0;
  // Warm to steady state of 4096 entries.
  while (live.size() < 4096) {
    Mbr box = Mbr::FromPoint({rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
    (void)tree.Insert(box, next);
    live.emplace_back(std::move(box), next++);
  }
  std::size_t head = 0;
  for (auto _ : state) {
    Mbr box = Mbr::FromPoint({rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
    benchmark::DoNotOptimize(tree.Insert(box, next));
    live.emplace_back(std::move(box), next++);
    benchmark::DoNotOptimize(
        tree.Delete(live[head].first, live[head].second));
    ++head;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeInsertDelete)->Arg(16)->Arg(32)->Arg(64)->ArgName("fanout");

void BM_RTreeSplitPolicy(benchmark::State& state) {
  const SplitPolicy policy = state.range(0) == 0 ? SplitPolicy::kRStar
                                                 : SplitPolicy::kQuadratic;
  Rng rng(55);
  for (auto _ : state) {
    RTree tree(2, RTreeOptions{.max_entries = 16, .split_policy = policy});
    for (RecordId id = 0; id < 2048; ++id) {
      benchmark::DoNotOptimize(tree.Insert(
          Mbr::FromPoint({rng.NextDouble(0, 100), rng.NextDouble(0, 100)}),
          id));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_RTreeSplitPolicy)->Arg(0)->Arg(1)->ArgName("policy");

void BM_RTreeRangeQuery(benchmark::State& state) {
  RTree tree(2);
  Rng rng(6);
  for (RecordId id = 0; id < static_cast<RecordId>(state.range(0)); ++id) {
    (void)tree.Insert(
        Mbr::FromPoint({rng.NextDouble(0, 100), rng.NextDouble(0, 100)}), id);
  }
  std::vector<RTreeEntry> out;
  for (auto _ : state) {
    out.clear();
    tree.SearchWithin({rng.NextDouble(0, 100), rng.NextDouble(0, 100)}, 2.0,
                      &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(1024)->Arg(8192)->Arg(65536)->ArgName("n");

void BM_HaarDwtFull(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  for (double& v : x) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarDwt(x));
  }
  state.SetBytesProcessed(state.iterations() * x.size() * sizeof(double));
}
BENCHMARK(BM_HaarDwtFull)->Arg(64)->Arg(256)->Arg(1024)->ArgName("w");

void BM_HaarMergeHalves(benchmark::State& state) {
  Rng rng(8);
  std::vector<double> left(static_cast<std::size_t>(state.range(0)));
  std::vector<double> right(left.size());
  for (double& v : left) v = rng.NextDouble();
  for (double& v : right) v = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeHalvesHaar(left, right));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HaarMergeHalves)->Arg(2)->Arg(8)->Arg(32)->ArgName("f");

void BM_SlidingTrackerPush(benchmark::State& state) {
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= static_cast<std::size_t>(state.range(0));
       ++i) {
    windows.push_back(i * 20);
  }
  SlidingAggregateTracker tracker(AggregateKind::kSpread, windows);
  Rng rng(9);
  for (auto _ : state) {
    tracker.Push(rng.NextDouble(0, 100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingTrackerPush)->Arg(10)->Arg(50)->Arg(80)->ArgName("m");

void BM_SurpriseAppend(benchmark::State& state) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 8;
  config.r_max = 110.0;
  config.base_window = 32;
  config.num_levels = 3;
  config.history = 4096;
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  auto monitor =
      std::move(SurpriseMonitor::Create(config, 1, 0.02)).value();
  RandomWalkSource source(20);
  for (int i = 0; i < 4096; ++i) {
    (void)monitor->Append(0, source.Next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor->Append(0, source.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SurpriseAppend);

void BM_CorrelationRound(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 16;
  config.num_levels = 5;
  config.history = 256;
  config.box_capacity = 1;
  config.update_period = 16;
  auto monitor =
      std::move(CorrelationMonitor::Create(config, m, 0.1)).value();
  std::vector<RandomWalkSource> sources;
  for (std::size_t i = 0; i < m; ++i) sources.emplace_back(30 + i);
  std::vector<double> values(m);
  for (int t = 0; t < 256; ++t) {
    for (std::size_t i = 0; i < m; ++i) values[i] = sources[i].Next();
    (void)monitor->AppendAll(values);
  }
  for (auto _ : state) {
    // One basic window = one maintenance + detection round.
    for (int t = 0; t < 16; ++t) {
      for (std::size_t i = 0; i < m; ++i) values[i] = sources[i].Next();
      benchmark::DoNotOptimize(monitor->AppendAll(values));
    }
  }
  state.SetItemsProcessed(state.iterations() * 16 * m);
}
BENCHMARK(BM_CorrelationRound)->Arg(64)->Arg(256)->ArgName("streams");

void BM_AggregateInterval(benchmark::State& state) {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 20;
  config.num_levels = 6;
  config.history = 2048;
  config.box_capacity = 25;
  config.update_period = 1;
  auto core = std::move(Stardust::Create(config)).value();
  const StreamId s = core->AddStream();
  RandomWalkSource source(10);
  for (int i = 0; i < 2048; ++i) (void)core->Append(s, source.Next());
  const std::size_t window = static_cast<std::size_t>(state.range(0)) * 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core->AggregateInterval(s, window));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AggregateInterval)->Arg(1)->Arg(13)->Arg(50)->ArgName("b");

}  // namespace
}  // namespace stardust
