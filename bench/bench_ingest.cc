// Ingestion throughput: single-threaded FleetAggregateMonitor baseline vs
// the sharded IngestEngine at 1/2/4/8 shards. Producers post round-robin
// over the fleet under kBlock (no data loss), so the measured rate is the
// end-to-end sustained append throughput. One JSON line per configuration
// on stdout (prose goes to stderr), ready for plotting:
//
//   $ ./build/bench/bench_ingest
//   {"bench":"ingest","mode":"direct","shards":0,...}
//   {"bench":"ingest","mode":"engine","shards":1,...}
//   ...
//
// STARDUST_FULL=1 scales the workload up ~8x.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "stream/bursty_source.h"
#include "stream/threshold.h"

namespace {

using namespace stardust;

StardustConfig StreamConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 16;
  config.num_levels = 5;  // windows up to 16 * 2^4 = 256
  config.history = 256;
  config.box_capacity = 4;
  config.update_period = 1;
  return config;
}

struct Workload {
  std::size_t streams = 0;
  std::vector<double> values;  // shared value tape, reused per stream
};

double RunDirect(const Workload& load,
                 const std::vector<WindowThreshold>& thresholds,
                 std::uint64_t* appended) {
  auto fleet = std::move(FleetAggregateMonitor::Create(
                             StreamConfig(), thresholds, load.streams))
                   .value();
  Stopwatch watch;
  watch.Start();
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < load.values.size(); ++i) {
    const StreamId stream = static_cast<StreamId>(i % load.streams);
    if (!fleet->Append(stream, load.values[i]).ok()) std::abort();
    ++n;
  }
  watch.Stop();
  *appended = n;
  return watch.ElapsedSeconds();
}

double RunEngine(const Workload& load,
                 const std::vector<WindowThreshold>& thresholds,
                 std::size_t shards, std::size_t producers, bool pin,
                 std::uint64_t* appended, std::uint64_t* dropped,
                 std::string* metrics_json) {
  EngineConfig econfig;
  econfig.num_shards = shards;
  econfig.queue_capacity = 4096;
  econfig.max_producers = producers;
  econfig.overload = OverloadPolicy::kBlock;
  econfig.pin_shards = pin;
  auto engine = std::move(IngestEngine::Create(StreamConfig(), thresholds,
                                               load.streams, econfig))
                    .value();
  const std::size_t per_producer = load.values.size() / producers;
  Stopwatch watch;
  watch.Start();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Producer p owns an equal slice of the tape and spreads it over
      // the fleet round-robin, offset so producers hit distinct shards.
      const std::size_t begin = p * per_producer;
      for (std::size_t i = 0; i < per_producer; ++i) {
        const StreamId stream =
            static_cast<StreamId>((begin + i) % load.streams);
        if (!engine->Post(stream, load.values[begin + i]).ok()) {
          std::abort();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  if (!engine->Flush().ok()) std::abort();
  watch.Stop();
  *appended = engine->metrics().appended.load();
  *dropped = engine->metrics().dropped_newest.load() +
             engine->metrics().dropped_oldest.load();
  *metrics_json = engine->MetricsJson();
  if (!engine->Stop().ok()) std::abort();
  return watch.ElapsedSeconds();
}

// Hot-tenant skew: ~90% of the traffic lands on the streams the
// modulo-hash default all places on shard 0, so the fixed layout
// serializes the hot set behind one worker. The deterministic tape
// interleaves nine hot picks with one cold pick, round-robin within
// each set, so both the fixed and the rebalanced run replay the exact
// same sequence.
std::vector<StreamId> SkewedStreamTape(std::size_t total,
                                       std::size_t streams,
                                       std::size_t shards) {
  std::vector<StreamId> hot;
  std::vector<StreamId> cold;
  for (StreamId s = 0; s < streams; ++s) {
    (s % shards == 0 ? hot : cold).push_back(s);
  }
  std::vector<StreamId> tape(total);
  std::size_t h = 0;
  std::size_t c = 0;
  for (std::size_t i = 0; i < total; ++i) {
    tape[i] = (i % 10 != 9) ? hot[h++ % hot.size()]
                            : cold[c++ % cold.size()];
  }
  return tape;
}

double RunSkewed(const Workload& load, const std::vector<StreamId>& tape,
                 const std::vector<WindowThreshold>& thresholds,
                 std::size_t shards, std::size_t producers, bool rebalance,
                 std::uint64_t* appended, std::uint64_t* migrations) {
  EngineConfig econfig;
  econfig.num_shards = shards;
  econfig.queue_capacity = 4096;
  econfig.max_producers = producers;
  econfig.overload = OverloadPolicy::kBlock;
  if (rebalance) {
    econfig.rebalance_period_ms = 10;
    econfig.rebalance_min_delta = 4096;
  }
  auto engine = std::move(IngestEngine::Create(StreamConfig(), thresholds,
                                               load.streams, econfig))
                    .value();
  const std::size_t per_producer = tape.size() / producers;
  Stopwatch watch;
  watch.Start();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::size_t begin = p * per_producer;
      for (std::size_t i = 0; i < per_producer; ++i) {
        const std::size_t slot = begin + i;
        const double value = load.values[slot % load.values.size()];
        if (!engine->Post(tape[slot], value).ok()) std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (!engine->Flush().ok()) std::abort();
  watch.Stop();
  *appended = engine->metrics().appended.load();
  *migrations = engine->metrics().migrations.load();
  if (!engine->Stop().ok()) std::abort();
  return watch.ElapsedSeconds();
}

void EmitSkewLine(const char* mode, std::size_t shards,
                  std::size_t producers, std::uint64_t appended,
                  std::uint64_t migrations, double seconds,
                  double fixed_rate) {
  const double rate =
      seconds > 0.0 ? static_cast<double>(appended) / seconds : 0.0;
  std::printf("{\"bench\":\"ingest\",\"mode\":\"%s\",\"shards\":%zu,"
              "\"producers\":%zu,\"appended\":%" PRIu64
              ",\"migrations\":%" PRIu64 ",\"seconds\":%.4f,"
              "\"appends_per_sec\":%.0f,\"recovery_vs_fixed\":%.2f}\n",
              mode, shards, producers, appended, migrations, seconds, rate,
              fixed_rate > 0.0 ? rate / fixed_rate : 0.0);
  std::fflush(stdout);
}

void EmitLine(const char* mode, std::size_t shards, std::size_t producers,
              bool pinned, std::uint64_t appended, std::uint64_t dropped,
              double seconds, double baseline_rate) {
  const double rate =
      seconds > 0.0 ? static_cast<double>(appended) / seconds : 0.0;
  std::printf("{\"bench\":\"ingest\",\"mode\":\"%s\",\"shards\":%zu,"
              "\"producers\":%zu,\"pinned\":%s,\"appended\":%" PRIu64
              ",\"dropped\":%" PRIu64 ",\"seconds\":%.4f,"
              "\"appends_per_sec\":%.0f,\"speedup_vs_direct\":%.2f}\n",
              mode, shards, producers, pinned ? "true" : "false", appended,
              dropped, seconds, rate,
              baseline_rate > 0.0 ? rate / baseline_rate : 0.0);
  std::fflush(stdout);
}

}  // namespace

int main() {
  bench::PrintHeaderStderr(
      "Ingestion engine throughput (sharded vs single-threaded)",
      "north-star scaling: Section 2.1 deployment at fleet scale");

  Workload load;
  load.streams = 64;
  const std::size_t total =
      bench::FullScale() ? 8 * 1024 * 1024 : 1024 * 1024;
  BurstySource source(bench::BenchSeed());
  load.values = source.Take(total);

  const std::vector<std::size_t> window_sizes{16, 64, 256};
  const auto thresholds = TrainThresholds(
      AggregateKind::kSum,
      std::vector<double>(load.values.begin(),
                          load.values.begin() + 65536),
      window_sizes, 3.0);

  std::uint64_t appended = 0;
  const double direct_seconds = RunDirect(load, thresholds, &appended);
  const double direct_rate =
      static_cast<double>(appended) / direct_seconds;
  EmitLine("direct", 0, 1, false, appended, 0, direct_seconds, direct_rate);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::fprintf(stderr, "hardware threads: %u\n", hw);
  // Each shard count runs unpinned then pinned (EngineConfig::pin_shards),
  // so adjacent lines isolate the affinity effect at fixed parallelism.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    const std::size_t producers = std::min<std::size_t>(shards, 4);
    for (const bool pin : {false, true}) {
      std::uint64_t engine_appended = 0;
      std::uint64_t dropped = 0;
      std::string metrics_json;
      const double seconds =
          RunEngine(load, thresholds, shards, producers, pin,
                    &engine_appended, &dropped, &metrics_json);
      EmitLine("engine", shards, producers, pin, engine_appended, dropped,
               seconds, direct_rate);
      std::fprintf(stderr, "engine metrics (%zu shards, %s): %s\n", shards,
                   pin ? "pinned" : "unpinned", metrics_json.c_str());
    }
  }

  // Hot-tenant skew: the same engine at 4 shards, fed the 90/10 skewed
  // tape that lands all hot streams on shard 0 under the modulo-hash
  // default. "zipf-fixed" keeps the rebalancer off (the placement
  // bottleneck); "zipf-rebalanced" turns it on and the load-driven
  // migrations spread the hot set, recovering the lost parallelism
  // (recovery_vs_fixed is the throughput ratio; target: BENCH_INGEST.json).
  {
    const std::size_t skew_shards = 4;
    const std::size_t skew_producers = 4;
    const std::vector<StreamId> tape = SkewedStreamTape(
        2 * load.values.size(), load.streams, skew_shards);
    double fixed_rate = 0.0;
    for (const bool rebalance : {false, true}) {
      std::uint64_t skew_appended = 0;
      std::uint64_t migrations = 0;
      const double seconds =
          RunSkewed(load, tape, thresholds, skew_shards, skew_producers,
                    rebalance, &skew_appended, &migrations);
      const double rate =
          seconds > 0.0 ? static_cast<double>(skew_appended) / seconds : 0.0;
      if (!rebalance) fixed_rate = rate;
      EmitSkewLine(rebalance ? "zipf-rebalanced" : "zipf-fixed",
                   skew_shards, skew_producers, skew_appended, migrations,
                   seconds, fixed_rate);
    }
  }
  return 0;
}
