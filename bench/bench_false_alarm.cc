// Section 5.1 ablation: the effective monitoring ratio of Stardust's
// binary window decomposition vs SWT's dyadic covering window.
//
// SWT monitors a window w = bW through a level window of size T·w with
// 1 <= T < 2; Stardust's decomposition effectively monitors through
// bW + log2(b)·(c - 1), i.e. T' = 1 + log2(b)(c-1)/(bW)  (Equation 7).
// Smaller ratio -> smaller false alarm rate (Equation 6). The analytic
// table below is paired with an empirical measurement of candidate alarm
// counts on the bursty stream, which must order the same way.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/swt.h"
#include "bench_util.h"
#include "core/aggregate_monitor.h"
#include "stream/dataset.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

void AnalyticTable() {
  const double w_base = 64.0;  // W
  const double c = 64.0;       // box capacity (paper's example c = W = 64)
  std::printf("Analytic effective monitoring ratio (W = c = 64):\n");
  std::printf("%6s %12s %12s %12s\n", "b", "T' (Eq. 7)", "T (SWT)",
              "advantage");
  for (int b : {2, 3, 5, 8, 12, 16, 24, 32, 48, 64}) {
    const double t_prime =
        1.0 + std::log2(static_cast<double>(b)) * (c - 1.0) /
                  (static_cast<double>(b) * w_base);
    // SWT monitors via the next dyadic window: T = 2^ceil(log2 b) / b.
    const double t_swt =
        std::pow(2.0, std::ceil(std::log2(static_cast<double>(b)))) /
        static_cast<double>(b);
    std::printf("%6d %12.4f %12.4f %12.4f\n", b, t_prime, t_swt,
                t_swt - t_prime);
  }
  std::printf("Paper's example: b = 12 -> T' = 1.2987 vs T = 1.3333.\n\n");
}

void EmpiricalCheck() {
  std::printf(
      "Empirical candidate alarms on the bursty stream (SUM, K=20,\n"
      "m=12 windows, lambda=3): Stardust candidates grow with c and\n"
      "stay below SWT's.\n");
  const std::size_t base = 20, m = 12;
  const Dataset data = MakeBurstDataset(20000, bench::BenchSeed());
  const std::vector<double>& stream = data.streams[0];
  const std::vector<double> training(stream.begin(), stream.begin() + 4000);
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= m; ++i) windows.push_back(i * base);
  const auto thresholds =
      TrainThresholds(AggregateKind::kSum, training, windows, 3.0);

  std::printf("%16s %12s %12s %10s\n", "technique", "alarms", "true",
              "precision");
  for (std::size_t c : {1u, 4u, 16u, 64u}) {
    StardustConfig config;
    config.transform = TransformKind::kAggregate;
    config.aggregate = AggregateKind::kSum;
    config.base_window = base;
    config.num_levels = 5;
    config.history = 1024;
    config.box_capacity = c;
    config.update_period = 1;
    auto monitor =
        std::move(AggregateMonitor::Create(config, thresholds)).value();
    for (double v : stream) {
      if (!monitor->Append(v).ok()) std::abort();
    }
    const AlarmStats total = monitor->TotalStats();
    std::printf("%10s c=%-3zu %12llu %12llu %10.3f\n", "Stardust", c,
                static_cast<unsigned long long>(total.candidates),
                static_cast<unsigned long long>(total.true_alarms),
                total.Precision());
  }
  auto swt =
      std::move(SwtMonitor::Create(AggregateKind::kSum, base, thresholds))
          .value();
  for (double v : stream) swt->Append(v);
  const AlarmStats total = swt->TotalStats();
  std::printf("%16s %12llu %12llu %10.3f\n", "SWT",
              static_cast<unsigned long long>(total.candidates),
              static_cast<unsigned long long>(total.true_alarms),
              total.Precision());
}

void Run() {
  bench::PrintHeader("False-alarm analysis of the window decomposition",
                     "Section 5.1, Equations 6-7 (ablation)");
  AnalyticTable();
  EmpiricalCheck();
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
