// Figure 5: average precision of variable-length pattern queries on the
// Host Load dataset (substitute), N = 1024, W = 64, M = 25, c = 64, f = 2.
//
// Four techniques, exactly the paper's panel:
//   - Stardust online (incremental extent features, Algorithm 3),
//   - Stardust batch  (T = W exact features, Algorithm 4),
//   - MR-Index        (exact per-level features, Algorithm 3's search),
//   - GeneralMatch    (single-resolution dual windowing).
// Queries are uniformly random lengths in [192, 1024] (multiples of W),
// drawn as random-walk-perturbed subsequences of the data so they live in
// the data's value regime (see the workload comment below). We sweep the
// query radius, reporting average selectivity, average precision, and
// total query response time per technique.
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/generalmatch.h"
#include "baselines/mrindex.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/pattern_query.h"
#include "stream/dataset.h"
#include "common/rng.h"
#include "transform/feature.h"

namespace stardust {
namespace {

constexpr std::size_t kBaseWindow = 64;   // W
constexpr std::size_t kNumLevels = 5;     // windows 64 .. 1024 (= N)
constexpr std::size_t kBoxCapacity = 64;  // c
constexpr std::size_t kCoefficients = 2;  // f

StardustConfig OnlineConfig(const Dataset& data) {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = kCoefficients;
  config.r_max = data.r_max;
  config.base_window = kBaseWindow;
  config.num_levels = kNumLevels;
  config.history = data.length();  // keep all data verifiable offline
  config.box_capacity = kBoxCapacity;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

std::unique_ptr<Stardust> Feed(const StardustConfig& config,
                               const Dataset& data) {
  auto core = std::move(Stardust::Create(config)).value();
  for (std::size_t i = 0; i < data.num_streams(); ++i) {
    const StreamId id = core->AddStream();
    for (double v : data.streams[i]) {
      if (!core->Append(id, v).ok()) std::abort();
    }
  }
  return core;
}

/// All normalized distances of one query against every window position,
/// for deriving ground truth at several radii in one pass.
std::vector<std::vector<double>> AllDistances(
    const Dataset& data, const std::vector<double>& query) {
  std::vector<std::vector<double>> out(data.num_streams());
  const std::vector<double> qn =
      NormalizeUnitSphere(query, data.r_max);
  std::vector<double> window;
  for (std::size_t s = 0; s < data.num_streams(); ++s) {
    const auto& stream = data.streams[s];
    if (stream.size() < query.size()) continue;
    out[s].reserve(stream.size() - query.size() + 1);
    for (std::size_t start = 0; start + query.size() <= stream.size();
         ++start) {
      window.assign(stream.begin() + start,
                    stream.begin() + start + query.size());
      const std::vector<double> wn =
          NormalizeUnitSphere(window, data.r_max);
      out[s].push_back(std::sqrt(Dist2(qn, wn)));
    }
  }
  return out;
}

struct TechniqueStats {
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  std::uint64_t queries = 0;
  std::int64_t micros = 0;

  void Add(const PatternResult& result, std::size_t true_matches,
           std::int64_t us) {
    precision_sum += result.Precision();
    recall_sum += true_matches == 0
                      ? 1.0
                      : static_cast<double>(result.matches.size()) /
                            static_cast<double>(true_matches);
    ++queries;
    micros += us;
  }
};

void Run() {
  bench::PrintHeader(
      "Variable-length pattern queries on Host Load traces",
      "Figure 5, Section 6.2.1 (N=1024, W=64, M=25, c=64, f=2)");
  const std::size_t m = 25;
  const std::size_t length = 3000;
  const Dataset data = MakeHostLoadDataset(m, length, bench::BenchSeed());

  // Build the four competitors.
  StardustConfig online_config = OnlineConfig(data);
  StardustConfig batch_config = online_config;
  batch_config.box_capacity = 1;
  batch_config.update_period = kBaseWindow;
  auto online_core = Feed(online_config, data);
  auto batch_core = Feed(batch_config, data);
  PatternQueryEngine online(*online_core);
  PatternQueryEngine batch(*batch_core);

  MrIndexOptions mr_options;
  mr_options.base_window = kBaseWindow;
  mr_options.num_levels = kNumLevels;
  mr_options.box_capacity = kBoxCapacity;
  mr_options.coefficients = kCoefficients;
  mr_options.history = data.length();
  mr_options.r_max = data.r_max;
  auto mr = std::move(MrIndex::Build(data, mr_options)).value();

  GeneralMatchOptions gm_options;
  // Largest power-of-two window serving the minimum query length 192 with
  // strictly disjoint data windows (needs |Q| >= 2w - 1).
  gm_options.window = 64;
  gm_options.coefficients = kCoefficients;
  gm_options.r_max = data.r_max;
  auto gm = std::move(GeneralMatch::Build(data, gm_options)).value();

  // Query workload: uniformly random lengths 192, 256, ..., 1024. The
  // paper's random-walk query generator produces sequences in the scale
  // of its (rescaled) datasets; our host-load substitute lives on a
  // different scale, so queries are noisy subsequences of the data —
  // random-walk-perturbed — keeping selectivities in the same regime.
  std::vector<std::size_t> lengths;
  for (std::size_t l = 192; l <= 1024; l += 64) lengths.push_back(l);
  const std::size_t num_queries = bench::FullScale() ? 100 : 30;
  std::vector<std::vector<double>> queries;
  {
    Rng rng(bench::BenchSeed() + 1);
    for (std::size_t q = 0; q < num_queries; ++q) {
      const std::size_t len = lengths[rng.NextUint64(lengths.size())];
      const std::size_t stream = rng.NextUint64(m);
      const std::size_t start =
          rng.NextUint64(data.length() - len + 1);
      std::vector<double> query(data.streams[stream].begin() + start,
                                data.streams[stream].begin() + start + len);
      double drift = 0.0;
      for (double& v : query) {
        drift += 0.002 * data.r_max * (rng.NextDouble() - 0.5);
        v = std::max(0.0, v + drift);
      }
      queries.push_back(std::move(query));
    }
  }

  const std::vector<double> radii{0.005, 0.01, 0.02, 0.04, 0.08};
  // stats[radius][technique]; ground-truth distances computed once per
  // query and shared by every radius.
  std::vector<std::array<TechniqueStats, 4>> stats(radii.size());
  std::vector<double> selectivity_sum(radii.size(), 0.0);
  for (const auto& query : queries) {
    const auto distances = AllDistances(data, query);
    for (std::size_t ri = 0; ri < radii.size(); ++ri) {
      const double radius = radii[ri];
      std::size_t true_matches = 0, positions = 0;
      for (const auto& row : distances) {
        positions += row.size();
        for (double d : row) {
          if (d <= radius) ++true_matches;
        }
      }
      selectivity_sum[ri] += positions == 0
                                 ? 0.0
                                 : static_cast<double>(true_matches) /
                                       static_cast<double>(positions);
      Stopwatch watch;
      const auto timed = [&](auto&& call) {
        watch.Reset();
        watch.Start();
        auto result = call();
        watch.Stop();
        return result;
      };
      auto r1 = timed([&] { return online.QueryOnline(query, radius); });
      stats[ri][0].Add(r1.value(), true_matches, watch.ElapsedMicros());
      auto r2 = timed([&] { return batch.QueryBatch(query, radius); });
      stats[ri][1].Add(r2.value(), true_matches, watch.ElapsedMicros());
      auto r3 = timed([&] { return mr->Query(query, radius); });
      stats[ri][2].Add(r3.value(), true_matches, watch.ElapsedMicros());
      auto r4 = timed([&] { return gm->Query(query, radius); });
      stats[ri][3].Add(r4.value(), true_matches, watch.ElapsedMicros());
    }
  }
  std::printf("%8s %16s %10s %10s %10s %12s\n", "radius", "technique",
              "precision", "recall", "select.", "time(ms)");
  const char* names[4] = {"Stardust-online", "Stardust-batch", "MR-Index",
                          "GeneralMatch"};
  for (std::size_t ri = 0; ri < radii.size(); ++ri) {
    for (int k = 0; k < 4; ++k) {
      const TechniqueStats& s = stats[ri][k];
      std::printf("%8.3f %16s %10.3f %10.3f %10.5f %12.2f\n", radii[ri],
                  names[k], s.precision_sum / s.queries,
                  s.recall_sum / s.queries, selectivity_sum[ri] / s.queries,
                  s.micros / 1000.0);
    }
  }
  std::printf(
      "\nPaper shape: online Stardust is less precise than MR-Index (the\n"
      "cost of extent-merged features) and recall is 1.0 everywhere\n"
      "(sound filters + exact verification) — both reproduced. Deviation:\n"
      "our GeneralMatch, with full multi-piece refinement over its many\n"
      "fine disjoint pieces, is the most precise overall rather than only\n"
      "at high selectivity; see EXPERIMENTS.md.\n");
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
