// Continuous-query subsystem throughput: the sharded IngestEngine with
// live queries registered on the bus, across shard counts and query
// mixes. Every stream carries a phase-shifted square wave so aggregate
// edges fire repeatedly, the waves correlate pairwise, and the pattern
// cores do real per-tuple summarization work. One JSON line per
// (mix, shards) configuration on stdout (prose goes to stderr):
//
//   $ ./build/bench/bench_query
//   {"bench":"query","mix":"aggregate","shards":1,...}
//   {"bench":"query","mix":"mixed","shards":1,...}
//   ...
//
// Reported per config: sustained appends/sec under kBlock (no data
// loss), alert-bus published/delivered/dropped counters, and the
// publish-to-sink delivery latency p50/p99 from the bus histogram.
// STARDUST_FULL=1 scales the workload up ~8x.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/engine.h"
#include "query/query_spec.h"
#include "query/sinks.h"
#include "stream/threshold.h"

namespace {

using namespace stardust;

constexpr std::size_t kStreams = 64;
constexpr std::size_t kBurstPeriod = 256;  // square-wave period per stream
constexpr std::size_t kBurstLen = 64;      // high phase within each period
constexpr double kLow = 1.0;
constexpr double kHigh = 9.0;

// Phase-shifted square wave: every stream bursts once per period, and
// streams with nearby ids overlap enough to correlate.
double ValueAt(std::size_t stream, std::size_t t) {
  const std::size_t phase = (t + 16 * stream) % kBurstPeriod;
  return phase < kBurstLen ? kHigh : kLow;
}

StardustConfig FleetConfig() {
  StardustConfig config;
  config.transform = TransformKind::kAggregate;
  config.aggregate = AggregateKind::kSum;
  config.base_window = 16;
  config.num_levels = 5;  // windows 16..256
  config.history = 256;
  config.box_capacity = 4;
  config.update_period = 1;
  return config;
}

StardustConfig PatternCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kUnitSphere;
  config.coefficients = 4;
  config.r_max = 16.0;
  config.base_window = 8;
  config.num_levels = 2;
  config.history = 256;
  config.box_capacity = 1;
  config.update_period = 1;
  config.index_features = true;
  return config;
}

StardustConfig CorrelationCoreConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = 4;
  config.base_window = 16;
  config.num_levels = 2;
  config.history = 32;
  config.box_capacity = 1;
  config.update_period = 16;  // batch algorithm, T == W
  return config;
}

struct Mix {
  const char* name;
  bool enable_patterns;
  bool enable_correlation;
  std::vector<QuerySpec> specs;
};

std::vector<Mix> MakeMixes() {
  // Thresholds sit halfway between the quiet-phase and burst-phase sums
  // for each window, so every burst produces one edge-triggered alert
  // per (query, stream).
  std::vector<Mix> mixes;
  Mix aggregate_only{"aggregate", false, false, {}};
  for (const auto& [window, threshold] :
       std::vector<std::pair<std::size_t, double>>{
           {16, 80.0}, {32, 160.0}, {64, 320.0},
           {128, 384.0}, {256, 512.0}, {16, 120.0}}) {
    aggregate_only.specs.push_back(QuerySpec::Aggregate(window, threshold));
  }
  mixes.push_back(std::move(aggregate_only));

  Mix mixed{"mixed", true, true, {}};
  mixed.specs.push_back(QuerySpec::Aggregate(16, 80.0));
  mixed.specs.push_back(QuerySpec::Aggregate(64, 320.0));
  mixed.specs.push_back(QuerySpec::Aggregate(256, 512.0));
  std::vector<double> edge_pattern;
  for (std::size_t i = 0; i < 16; ++i) {
    edge_pattern.push_back(i < 8 ? kLow : kHigh);  // the burst onset shape
  }
  mixed.specs.push_back(QuerySpec::Pattern(edge_pattern, 0.1));
  std::vector<double> ramp_pattern;
  for (std::size_t i = 0; i < 16; ++i) {
    ramp_pattern.push_back(kLow + (kHigh - kLow) * i / 15.0);
  }
  mixed.specs.push_back(QuerySpec::Pattern(ramp_pattern, 0.1));
  mixed.specs.push_back(QuerySpec::Correlation(0.5));
  mixes.push_back(std::move(mixed));
  return mixes;
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t appended = 0;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t correlator_rounds = 0;
};

RunResult RunConfig(const Mix& mix, std::size_t shards,
                    std::size_t producers, std::size_t total) {
  EngineConfig econfig;
  econfig.num_shards = shards;
  econfig.queue_capacity = 4096;
  econfig.max_producers = producers;
  econfig.overload = OverloadPolicy::kBlock;
  // Evaluate queries at base-window granularity so edge-triggered
  // crossings inside a burst are observed rather than stepped over.
  econfig.max_batch = 32;
  econfig.query.enable_patterns = mix.enable_patterns;
  econfig.query.pattern = PatternCoreConfig();
  econfig.query.enable_correlation = mix.enable_correlation;
  econfig.query.correlation = CorrelationCoreConfig();
  econfig.query.correlator_period_ms = 5;
  econfig.query.alert_capacity = 4096;
  econfig.query.alert_overflow = OverloadPolicy::kBlock;

  const std::vector<WindowThreshold> fleet_thresholds{{16, 1e18}};
  auto engine = std::move(IngestEngine::Create(FleetConfig(),
                                               fleet_thresholds, kStreams,
                                               econfig))
                    .value();
  std::atomic<std::uint64_t> sink_count{0};
  engine->alerts().AddSink(std::make_shared<CallbackSink>(
      [&sink_count](const Alert&) {
        sink_count.fetch_add(1, std::memory_order_relaxed);
      }));
  for (const QuerySpec& spec : mix.specs) {
    if (!engine->RegisterQuery(spec).ok()) std::abort();
  }

  const std::size_t per_producer = total / producers;
  Stopwatch watch;
  watch.Start();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::size_t begin = p * per_producer;
      for (std::size_t i = 0; i < per_producer; ++i) {
        const std::size_t global = begin + i;
        const StreamId stream = static_cast<StreamId>(global % kStreams);
        const double value = ValueAt(stream, global / kStreams);
        if (!engine->Post(stream, value).ok()) std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (!engine->Flush().ok()) std::abort();
  watch.Stop();

  RunResult result;
  result.seconds = watch.ElapsedSeconds();
  result.appended = engine->metrics().appended.load();
  const AlertBus& bus = engine->alerts();
  result.published = bus.published();
  result.delivered = bus.delivered();
  result.dropped = bus.dropped_newest() + bus.dropped_oldest();
  result.p50_ns = bus.delivery_latency().PercentileNanos(0.50);
  result.p99_ns = bus.delivery_latency().PercentileNanos(0.99);
  result.correlator_rounds = engine->metrics().correlator_rounds.load();
  if (!engine->Stop().ok()) std::abort();
  if (sink_count.load() != result.delivered) std::abort();
  return result;
}

void EmitLine(const Mix& mix, std::size_t shards, std::size_t producers,
              const RunResult& r) {
  const double rate = r.seconds > 0.0
                          ? static_cast<double>(r.appended) / r.seconds
                          : 0.0;
  std::printf(
      "{\"bench\":\"query\",\"mix\":\"%s\",\"shards\":%zu,"
      "\"producers\":%zu,\"queries\":%zu,\"appended\":%" PRIu64
      ",\"seconds\":%.4f,\"appends_per_sec\":%.0f,"
      "\"alerts_published\":%" PRIu64 ",\"alerts_delivered\":%" PRIu64
      ",\"alerts_dropped\":%" PRIu64 ",\"delivery_p50_ns\":%" PRIu64
      ",\"delivery_p99_ns\":%" PRIu64 ",\"correlator_rounds\":%" PRIu64
      "}\n",
      mix.name, shards, producers, mix.specs.size(), r.appended, r.seconds,
      rate, r.published, r.delivered, r.dropped, r.p50_ns, r.p99_ns,
      r.correlator_rounds);
  std::fflush(stdout);
}

}  // namespace

int main() {
  bench::PrintHeaderStderr(
      "Continuous-query subsystem throughput (query mix x shard count)",
      "north-star serving: Sections 4-5 queries over live ingestion");

  const std::size_t total =
      bench::FullScale() ? 2 * 1024 * 1024 : 256 * 1024;
  for (const Mix& mix : MakeMixes()) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const std::size_t producers = std::min<std::size_t>(shards, 2);
      const RunResult result = RunConfig(mix, shards, producers, total);
      EmitLine(mix, shards, producers, result);
    }
  }
  return 0;
}
