// The paper's headline tunability claim (Section 1.1, Theorem 4.3): "the
// index structure has tunable parameters to trade accuracy for speed and
// space ... by varying the update rate and the number of coefficients".
//
// One table per knob on the bursty stream:
//  - box capacity c: summary boxes retained vs monitoring precision vs
//    per-item time;
//  - update schedule: uniform T = 1 vs dyadic (SWAT) T_j = 2^j summary
//    space (the O(log N) configuration), with exactness preserved.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/aggregate_monitor.h"
#include "core/summarizer.h"
#include "stream/dataset.h"
#include "stream/threshold.h"

namespace stardust {
namespace {

void CapacitySweep() {
  const std::size_t base = 20, m = 12;
  const Dataset data = MakeBurstDataset(30000, bench::BenchSeed());
  const std::vector<double>& stream = data.streams[0];
  const std::vector<double> training(stream.begin(), stream.begin() + 4000);
  std::vector<std::size_t> windows;
  for (std::size_t i = 1; i <= m; ++i) windows.push_back(i * base);
  const auto thresholds =
      TrainThresholds(AggregateKind::kSum, training, windows, 3.0);

  std::printf("Box capacity c (SUM monitoring, %zu windows, N = 1024):\n",
              m);
  std::printf("%8s %14s %12s %14s %14s\n", "c", "boxes kept", "precision",
              "ns/item", "alarms");
  for (std::size_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    StardustConfig config;
    config.transform = TransformKind::kAggregate;
    config.aggregate = AggregateKind::kSum;
    config.base_window = base;
    config.num_levels = 5;
    config.history = 1024;
    config.box_capacity = c;
    config.update_period = 1;
    auto monitor =
        std::move(AggregateMonitor::Create(config, thresholds)).value();
    Stopwatch watch;
    watch.Start();
    for (double v : stream) {
      if (!monitor->Append(v).ok()) std::abort();
    }
    watch.Stop();
    const AlarmStats total = monitor->TotalStats();
    const StreamSummarizer& summarizer =
        monitor->stardust().summarizer(0);
    std::printf("%8zu %14zu %12.3f %14.1f %14llu\n", c,
                summarizer.TotalBoxCount(), total.Precision(),
                1e9 * watch.ElapsedSeconds() /
                    static_cast<double>(stream.size()),
                static_cast<unsigned long long>(total.candidates));
  }
  std::printf("\n");
}

void ScheduleSweep() {
  std::printf("Update schedule (SUM features, W = 8, 8 levels, varying "
              "history):\n");
  std::printf("%10s %10s %16s %16s\n", "history", "schedule", "boxes kept",
              "boxes/levels");
  const Dataset data = MakeBurstDataset(40000, bench::BenchSeed() + 1);
  for (std::size_t history : {1024u, 4096u, 16384u}) {
    for (UpdateSchedule schedule :
         {UpdateSchedule::kUniform, UpdateSchedule::kDyadic}) {
      StardustConfig config;
      config.transform = TransformKind::kAggregate;
      config.aggregate = AggregateKind::kSum;
      config.base_window = 8;
      config.num_levels = 8;  // windows 8..1024
      config.history = history;
      config.box_capacity = 1;
      config.update_period = 1;
      config.update_schedule = schedule;
      StreamSummarizer summarizer(config);
      for (double v : data.streams[0]) {
        summarizer.Append(v, nullptr, nullptr);
      }
      const std::size_t boxes = summarizer.TotalBoxCount();
      std::printf("%10zu %10s %16zu %16.1f\n", history,
                  schedule == UpdateSchedule::kUniform ? "uniform"
                                                       : "dyadic",
                  boxes,
                  static_cast<double>(boxes) /
                      static_cast<double>(config.num_levels));
    }
  }
  std::printf(
      "\nExpected shape: uniform space grows ~levels × history; the\n"
      "dyadic (SWAT) schedule stays ~2 × history regardless of levels —\n"
      "the O(log N) summary of the authors' earlier system.\n");
}

void Run() {
  bench::PrintHeader("Accuracy / speed / space trade-off ablation",
                     "Section 1.1 + Theorem 4.3 (tunable parameters)");
  CapacitySweep();
  ScheduleSweep();
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
