// Sketch measure maintenance cost: batched AppendRun vs tuple-at-a-time.
//
// Drives each sketch kind (approximate distinct, heavy hitters, windowed
// quantile) the way the per-shard pipeline does — one measure per stream,
// tuples arriving tick-interleaved across all streams — in two modes over
// identical data:
//
//   scalar   tuple-at-a-time in arrival order: every tick touches every
//            stream's measure once (one virtual Append per tuple), so the
//            working set cycles through all streams' sketch state
//   batched  the columnar path: `run` ticks are buffered, regrouped into
//            per-stream runs, and applied with one AppendRun per run, so
//            one stream's state stays hot for the whole run
//
// Each stream sees the same values in the same order in both modes, and
// AppendRun is state-identical to n scalar Appends, so both modes end in
// identical sketch state — the estimate digest printed per line proves
// it. One JSON line per (kind, run length) on stdout with ns/append,
// bytes/stream, and the batched speedup; prose to stderr:
//
//   $ ./build/bench/bench_sketch > BENCH_SKETCH.json
//
// STARDUST_FULL=1 scales the step count up 8x.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "sketch/measure.h"

namespace {

using namespace stardust;

constexpr std::size_t kStreams = 64;

SketchConfig ConfigFor(SketchKind kind) {
  SketchConfig config;
  config.kind = kind;
  config.window = 1024;
  config.buckets = 4;
  config.hll_precision = 12;
  config.epsilon = 0.01;
  config.depth = 4;
  config.phi = 0.05;
  config.candidates = 32;
  config.q = 0.9;
  return config;
}

struct ModeResult {
  double ns_per_append = 0.0;
  double estimate_digest = 0.0;
  std::size_t bytes_per_stream = 0;
};

/// Feeds `steps` ticks of `kStreams` streams, tuple-at-a-time in arrival
/// order (tick-interleaved) or columnar-batched in per-stream runs of
/// `run` ticks. Each stream sees the same per-stream value sequence in
/// both modes.
ModeResult RunMode(SketchKind kind, std::size_t steps, std::size_t run,
                   bool batched) {
  const SketchConfig config = ConfigFor(kind);
  std::vector<std::unique_ptr<SketchMeasure>> measures;
  for (std::size_t s = 0; s < kStreams; ++s) {
    measures.push_back(CreateSketchMeasure(config));
  }
  // Stream-major value matrix: values[s * steps + t] is stream s at tick
  // t — integer-ish codes with a skewed hot set, the shape all three
  // sketches care about. Generated up front so the timed loop is pure
  // maintenance.
  Rng rng(bench::BenchSeed());
  std::vector<double> values(kStreams * steps);
  for (double& v : values) {
    const double roll = rng.NextDouble(0.0, 1.0);
    v = roll < 0.3 ? std::floor(rng.NextDouble(0.0, 4.0))
                   : std::floor(rng.NextDouble(0.0, 4096.0));
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t appends = 0;
  for (std::size_t at = 0; at < steps; at += run) {
    const std::size_t n = std::min(run, steps - at);
    if (batched) {
      // Columnar: the batch is regrouped per stream, one AppendRun per
      // stream covering the whole batch of ticks.
      for (std::size_t s = 0; s < kStreams; ++s) {
        measures[s]->AppendRun(values.data() + s * steps + at, n);
      }
    } else {
      // Arrival order: tick by tick across every stream.
      for (std::size_t t = at; t < at + n; ++t) {
        for (std::size_t s = 0; s < kStreams; ++s) {
          measures[s]->Append(values[s * steps + t]);
        }
      }
    }
    appends += n * kStreams;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  ModeResult result;
  result.ns_per_append =
      seconds * 1e9 / static_cast<double>(appends == 0 ? 1 : appends);
  for (auto& measure : measures) {
    result.estimate_digest += measure->Estimate();
    result.bytes_per_stream = measure->MemoryBytes();
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeaderStderr(
      "Sketch maintenance: batched AppendRun vs tuple-at-a-time",
      "sketch measures over the Section 2.1 fleet deployment "
      "(src/sketch, docs/DSL.md)");
  const std::size_t steps = bench::FullScale() ? 1u << 19 : 1u << 16;

  const SketchKind kinds[] = {SketchKind::kDistinct,
                              SketchKind::kHeavyHitters,
                              SketchKind::kQuantile};
  const std::size_t runs[] = {1, 8, 64, 256};
  double geomean[sizeof(runs) / sizeof(runs[0])];
  for (double& g : geomean) g = 1.0;
  for (const SketchKind kind : kinds) {
    for (std::size_t ri = 0; ri < sizeof(runs) / sizeof(runs[0]); ++ri) {
      const std::size_t run = runs[ri];
      const ModeResult scalar = RunMode(kind, steps, run, false);
      const ModeResult batched = RunMode(kind, steps, run, true);
      const double speedup =
          batched.ns_per_append == 0.0
              ? 0.0
              : scalar.ns_per_append / batched.ns_per_append;
      if (scalar.estimate_digest != batched.estimate_digest) {
        std::fprintf(stderr,
                     "DIGEST MISMATCH kind=%s run=%zu %.6f != %.6f\n",
                     SketchKindName(kind), run, scalar.estimate_digest,
                     batched.estimate_digest);
        return 1;
      }
      std::printf(
          "{\"bench\":\"sketch\",\"kind\":\"%s\",\"run\":%zu,"
          "\"streams\":%zu,\"steps\":%zu,"
          "\"scalar_ns_per_append\":%.1f,"
          "\"batched_ns_per_append\":%.1f,"
          "\"speedup\":%.2f,\"bytes_per_stream\":%zu,"
          "\"estimate_digest\":%.3f}\n",
          SketchKindName(kind), run, kStreams, steps,
          scalar.ns_per_append, batched.ns_per_append, speedup,
          batched.bytes_per_stream, batched.estimate_digest);
      std::fprintf(stderr,
                   "  %-13s run %3zu: scalar %7.1f ns  batched %7.1f ns  "
                   "(%.2fx)\n",
                   SketchKindName(kind), run, scalar.ns_per_append,
                   batched.ns_per_append, speedup);
      geomean[ri] *= speedup;
    }
  }
  // Geometric mean across the three kinds per run length — the standard
  // aggregate for speedup ratios. The union-mergeable sketches (HLL,
  // CountMin) gain the most from columnar regrouping; the P² quantile is
  // compute-bound per observation, so batching only amortizes dispatch
  // and state residency there.
  const std::size_t num_kinds = sizeof(kinds) / sizeof(kinds[0]);
  for (std::size_t ri = 0; ri < sizeof(runs) / sizeof(runs[0]); ++ri) {
    const double g = std::pow(geomean[ri], 1.0 / num_kinds);
    std::printf(
        "{\"bench\":\"sketch_summary\",\"run\":%zu,\"streams\":%zu,"
        "\"steps\":%zu,\"geomean_speedup\":%.2f}\n",
        runs[ri], kStreams, steps, g);
    std::fprintf(stderr, "  geomean       run %3zu: %.2fx\n", runs[ri], g);
  }
  return 0;
}
