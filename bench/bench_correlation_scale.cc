// Table 1: total time (ms) spent on correlation detection for an
// increasing number of streams, Stardust vs StatStream.
//
// Synthetic random-walk streams, N = 256, W = 16, f = 2; the StatStream
// grid cell is 0.01 as in the paper; the correlation (distance) threshold
// r sweeps {0.01, 0.02, 0.04, 0.08}. Each stream is warmed up with N
// values and then observed for 256 arrivals; the reported time covers
// summary maintenance plus correlation detection over the observed range,
// as in the paper.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/statstream.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/correlation_monitor.h"
#include "stream/dataset.h"

namespace stardust {
namespace {

constexpr std::size_t kHistory = 256;      // N
constexpr std::size_t kBasicWindow = 16;   // W
constexpr std::size_t kCoefficients = 2;   // f
constexpr std::size_t kArrivals = 256;     // observed arrivals per stream

StardustConfig MonitorConfig() {
  StardustConfig config;
  config.transform = TransformKind::kDwt;
  config.normalization = Normalization::kZNorm;
  config.coefficients = kCoefficients;
  config.base_window = kBasicWindow;
  config.num_levels = 5;  // N = W * 2^4
  config.history = kHistory;
  config.box_capacity = 1;
  config.update_period = kBasicWindow;
  return config;
}

void Run() {
  bench::PrintHeader("Correlation detection scalability (random walks)",
                     "Table 1, Section 6.3.1 (N=256, W=16, f=2)");
  std::vector<std::size_t> stream_counts{64, 128, 256, 512, 1024};
  if (bench::FullScale()) {
    stream_counts = {256, 512, 1024, 2048, 4096, 8192};
  }
  const std::vector<double> radii{0.01, 0.02, 0.04, 0.08};

  std::printf("%9s", "M");
  for (double r : radii) {
    std::printf("   SS(r=%.2f) SD(r=%.2f)", r, r);
  }
  std::printf("\n");
  for (std::size_t m : stream_counts) {
    const Dataset data =
        MakeRandomWalkDataset(m, kHistory + kArrivals, bench::BenchSeed());
    std::printf("%9zu", m);
    for (double radius : radii) {
      // --- StatStream ---
      StatStreamOptions ss_options;
      ss_options.history = kHistory;
      ss_options.basic_window = kBasicWindow;
      ss_options.coefficients = kCoefficients;
      ss_options.cell_size = 0.01;  // paper's cell radius
      ss_options.radius = radius;
      auto ss = std::move(StatStream::Create(ss_options, m)).value();
      std::vector<double> values(m);
      Stopwatch ss_watch;
      ss_watch.Start();
      for (std::size_t t = 0; t < data.length(); ++t) {
        for (std::size_t i = 0; i < m; ++i) values[i] = data.streams[i][t];
        if (!ss->AppendAll(values).ok()) std::abort();
      }
      ss_watch.Stop();

      // --- Stardust ---
      auto sd = std::move(CorrelationMonitor::Create(MonitorConfig(), m,
                                                     radius))
                    .value();
      Stopwatch sd_watch;
      sd_watch.Start();
      for (std::size_t t = 0; t < data.length(); ++t) {
        for (std::size_t i = 0; i < m; ++i) values[i] = data.streams[i][t];
        if (!sd->AppendAll(values).ok()) std::abort();
      }
      sd_watch.Stop();

      std::printf(" %11lld %10lld",
                  static_cast<long long>(ss_watch.ElapsedMillis()),
                  static_cast<long long>(sd_watch.ElapsedMillis()));
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape (Table 1): StatStream's cost grows sharply with the\n"
      "radius (a grid with cell 0.01 probes (2*ceil(r/0.01)+1)^f cells\n"
      "per stream — ~10x from r=0.01 to r=0.08 here) while Stardust is\n"
      "flat in r: the mechanism behind the paper's crossover. The\n"
      "absolute crossover does not appear at this scale because our\n"
      "reimplemented StatStream (flat hash grid, cached verification) is\n"
      "far stronger than the 2002 original; see EXPERIMENTS.md.\n");
}

}  // namespace
}  // namespace stardust

int main() {
  stardust::Run();
  return 0;
}
